"""The event log: typed records in a bounded ring buffer.

Every record is an :class:`Event` — kind, cycle, source, payload.
Kinds are dot-namespaced strings (the module-level ``K_*`` constants
are the full taxonomy); sources name the emitting component
(``"pair0"``, ``"core3"``, ``"l2"``).  Payloads are flat JSON-ready
dicts so export needs no per-kind knowledge.

The buffer is a ``deque(maxlen=capacity)``: appending past capacity
drops the *oldest* record (and counts it), so a long run keeps the tail
of its history — the part that explains how it ended — at bounded
memory.  ``emitted``/``dropped`` make truncation visible instead of
silent.

:class:`Telemetry` is the front door components hold a reference to
(or ``None`` when telemetry is off — the zero-cost-when-off contract is
that disarmed hot paths test one attribute against ``None`` and touch
nothing else).  It pre-computes the level flags ``events_on`` and
``full`` once so emitting sites never string-compare levels, and feeds
every emission to the metrics sampler even when the record itself is
below the storage threshold (the ``metrics`` level keeps time series
without buffering events).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.metrics import MetricsSampler

# -- event taxonomy ---------------------------------------------------------
# Output comparison.
K_FP_COMPARE = "fingerprint.compare"  # events
K_FP_MISMATCH = "fingerprint.mismatch"  # events
K_FP_CLOSE = "fingerprint.close"  # full
# Partial protection policies (interval-sampled / unprotected / dynamic
# pairs only; full and little-mute gates never emit these).
K_FP_SKIP = "fingerprint.skip"  # events: interval closed unchecked
K_PROTECTION_OFF = "protection.off"  # events: dynamic policy paused checking
K_PROTECTION_ON = "protection.on"  # events: dynamic policy resumed checking
# The re-execution protocol.
K_RECOVERY_START = "recovery.start"  # events
K_RECOVERY_ROLLBACK = "recovery.rollback"  # events
K_RECOVERY_RESUME = "recovery.resume"  # events
K_RECOVERY_FAILURE = "recovery.failure"  # events
# Relaxed input replication.
K_SYNC_REQUEST = "sync.request"  # events
K_PHANTOM_READ = "phantom.read"  # events
# Replay fast path.
K_MIRROR_OPEN = "mirror.open"  # events
K_MIRROR_CLOSE = "mirror.close"  # events
K_MIRROR_MATERIALIZE = "mirror.materialize"  # events
# Interrupt replication.
K_INTERRUPT_POST = "interrupt.post"  # events
# Cache controller diagnostics.
K_CACHE_EVICT = "cache.evict"  # full
K_CACHE_WRITEBACK_DROP = "cache.writeback_drop"  # full
# Directory backend traffic (repro.memory.directory).
K_DIR_GETS = "dir.gets"  # full: GetS serviced at a home bank
K_DIR_GETM = "dir.getm"  # full: GetM serviced at a home bank
K_DIR_INVAL = "dir.inval"  # full: one holder's copy invalidated
K_DIR_WRITEBACK = "dir.writeback"  # full: dirty eviction folded to memory
K_DIR_GRANT = "dir.grant"  # full: home-bank arbiter grant (WRR slot)
# Fault injection.
K_FAULT_INJECT = "fault.inject"  # events
K_FAULT_ABSORB = "fault.absorb"  # events: a faulted entry entered a check interval

#: Kinds that describe the *simulation strategy* rather than the
#: simulated machine.  Mirror windows exist only under replay execution
#: (dual execution steps the mute for real), so differential
#: replay-vs-dual event comparisons exclude them — everything else
#: matches record for record, payloads included: the vocal gate keeps
#: hashing fingerprints inside a mirror window, so even in-window
#: ``fingerprint.compare`` records carry the same CRC values dual
#: execution would; see tests/sim/test_telemetry.py.
STRATEGY_KINDS = frozenset(
    {K_MIRROR_OPEN, K_MIRROR_CLOSE, K_MIRROR_MATERIALIZE}
)


@dataclass(slots=True)
class Event:
    """One telemetry record."""

    kind: str
    cycle: int
    source: str
    args: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        out = {"kind": self.kind, "cycle": self.cycle, "source": self.source}
        out.update(self.args)
        return out


class EventLog:
    """Bounded ring buffer of :class:`Event` records."""

    __slots__ = ("_buffer", "capacity", "emitted", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("event-log capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self.emitted = 0  # total records offered
        self.dropped = 0  # oldest records displaced by the ring

    def append(self, event: Event) -> None:
        self.emitted += 1
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buffer)

    def snapshot(self) -> list[Event]:
        """The buffered records, oldest first."""
        return list(self._buffer)

    def counts(self) -> Counter:
        """Buffered-record histogram by kind (diagnostics, summaries)."""
        return Counter(event.kind for event in self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class Telemetry:
    """The armed-telemetry front door components emit through.

    A simulated system either holds one ``Telemetry`` (telemetry armed)
    or ``None`` (off) in every component's ``obs`` slot; nothing in the
    simulator branches on the level strings directly.  ``last_cycle``
    tracks the most recent emission/sample cycle so emitters without a
    natural timestamp (cache-array evictions happen inside request
    processing, several frames below anything holding ``now``) can
    stamp records accurately to within the current step.
    """

    __slots__ = ("level", "events_on", "full", "log", "metrics", "last_cycle")

    def __init__(
        self,
        level: str = "events",
        capacity: int = 65_536,
        fingerprint_bits: int = 16,
        metrics_interval: int = 1_024,
    ) -> None:
        from repro.sim.options import TRACE_LEVELS

        if level not in TRACE_LEVELS or level == "off":
            raise ValueError(
                f"telemetry level must be one of {TRACE_LEVELS[1:]}, got {level!r}"
            )
        rank = TRACE_LEVELS.index(level)
        self.level = level
        self.events_on = rank >= TRACE_LEVELS.index("events")
        self.full = rank >= TRACE_LEVELS.index("full")
        self.log = EventLog(capacity)
        self.metrics = MetricsSampler(
            interval=metrics_interval, fingerprint_bits=fingerprint_bits
        )
        self.last_cycle = 0

    def emit(self, kind: str, cycle: int | None, source: str, **args: Any) -> None:
        """Record one event (and feed the metrics counters).

        ``cycle=None`` stamps the record with :attr:`last_cycle` — the
        cycle of the in-flight step — for emitters below the timing
        layer.
        """
        if cycle is None:
            cycle = self.last_cycle
        else:
            self.last_cycle = cycle
        self.metrics.observe(kind, cycle, source)
        if self.events_on:
            self.log.append(Event(kind, cycle, source, args))
