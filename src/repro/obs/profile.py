"""Wall-time accounting for the bench harness.

A :class:`Profiler` accumulates wall seconds under dot-namespaced
section names (``"sweep.fig5"``, ``"compare.telemetry"``); `repro
bench` wraps each phase of its work in :meth:`Profiler.section` and
surfaces the totals in the ``profile`` block of ``BENCH_<date>.json``,
so a regression hunt can tell *which component* of a bench run got
slower, not just that the throughput number moved.

Re-entering the same section accumulates (useful for per-item timing
inside a loop).  The profiler is wall-clock only and lives entirely in
the harness layer — it never touches the simulator, so it has no
bearing on the bit-identity contracts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Profiler:
    """Accumulates wall time by section name."""

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a section."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def snapshot(self) -> dict[str, float]:
        """Section totals, rounded for stable JSON."""
        return {name: round(seconds, 6) for name, seconds in sorted(self.totals.items())}

    def render(self) -> str:
        if not self.totals:
            return ""
        width = max(len(name) for name in self.totals)
        lines = [f"{'section':<{width}}  {'wall s':>9}  {'calls':>6}"]
        for name in sorted(self.totals):
            lines.append(
                f"{name:<{width}}  {self.totals[name]:>9.3f}  {self.counts[name]:>6}"
            )
        return "\n".join(lines)
