"""Telemetry exporters: JSONL event logs and Chrome ``trace_event`` JSON.

Two renderings of one armed :class:`~repro.obs.events.Telemetry`:

* :func:`write_jsonl` — one JSON object per line: every buffered event
  (oldest first), then the metrics rows (``"kind": "metrics.sample"``),
  then one trailer summarizing the run.  ``grep``- and ``jq``-friendly;
  the format the differential tests diff.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON object format (load in ``chrome://tracing`` or
  Perfetto).  One simulated cycle is rendered as one microsecond.
  Instant events carry the taxonomy kinds; recovery episodes
  (``recovery.start`` → ``recovery.resume``) and mirror windows
  (``mirror.open`` → ``mirror.close``) become duration ("X") slices;
  metrics rows become counter ("C") tracks (IPC, fingerprint
  bandwidth, sync rate).

Both formats are pure functions of the telemetry object — exporting
never touches the simulator.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.obs.events import (
    Event,
    K_MIRROR_CLOSE,
    K_MIRROR_OPEN,
    K_RECOVERY_RESUME,
    K_RECOVERY_START,
    Telemetry,
)

#: Kind pairs folded into Chrome duration slices: open kind -> (close
#: kind, slice name).  Pairing is per-source and strictly sequential.
_DURATION_PAIRS = {
    K_RECOVERY_START: (K_RECOVERY_RESUME, "recovery"),
    K_MIRROR_OPEN: (K_MIRROR_CLOSE, "mirror-window"),
}


def event_lines(telemetry: Telemetry) -> list[dict[str, Any]]:
    """Every JSONL record, in emission order, as dicts."""
    lines: list[dict[str, Any]] = [event.to_dict() for event in telemetry.log]
    for row in telemetry.metrics.rows:
        record = {"kind": "metrics.sample", "source": "metrics"}
        record.update(row.to_dict())
        lines.append(record)
    lines.append(
        {
            "kind": "summary",
            "source": "obs",
            "level": telemetry.level,
            "events_emitted": telemetry.log.emitted,
            "events_dropped": telemetry.log.dropped,
            "events_buffered": len(telemetry.log),
            "metrics_rows": len(telemetry.metrics.rows),
            "recovery_latency_histogram": telemetry.metrics.latency_histogram(),
        }
    )
    return lines


def write_jsonl(telemetry: Telemetry, handle: IO[str]) -> int:
    """Write the JSONL rendering; returns the number of lines."""
    lines = event_lines(telemetry)
    for record in lines:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
    return len(lines)


def _thread_ids(events: list[Event]) -> dict[str, int]:
    """Stable source -> tid mapping (sorted so reruns agree)."""
    return {source: tid for tid, source in enumerate(sorted({e.source for e in events}))}


def chrome_trace(telemetry: Telemetry, process_name: str = "reunion-sim") -> dict:
    """The Chrome trace_event "JSON object format" rendering."""
    events = telemetry.log.snapshot()
    tids = _thread_ids(events)
    trace: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for source, tid in tids.items():
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": source},
            }
        )

    #: (source, open kind) -> pending open event, for duration pairing.
    open_slices: dict[tuple[str, str], Event] = {}
    for event in events:
        tid = tids[event.source]
        if event.kind in _DURATION_PAIRS:
            open_slices[(event.source, event.kind)] = event
            continue
        closed = False
        for open_kind, (close_kind, slice_name) in _DURATION_PAIRS.items():
            if event.kind != close_kind:
                continue
            start = open_slices.pop((event.source, open_kind), None)
            if start is None:
                break  # unmatched close (start fell off the ring): instant
            args = dict(start.args)
            args.update(event.args)
            trace.append(
                {
                    "name": slice_name,
                    "cat": "sim",
                    "ph": "X",
                    "ts": start.cycle,
                    "dur": max(event.cycle - start.cycle, 1),
                    "pid": 0,
                    "tid": tid,
                    "args": args,
                }
            )
            closed = True
            break
        if closed:
            continue
        trace.append(
            {
                "name": event.kind,
                "cat": "sim",
                "ph": "i",
                "ts": event.cycle,
                "pid": 0,
                "tid": tid,
                "s": "t",
                "args": event.args,
            }
        )
    # Still-open slices (run ended mid-episode) render as instants.
    for (source, open_kind), start in open_slices.items():
        trace.append(
            {
                "name": open_kind,
                "cat": "sim",
                "ph": "i",
                "ts": start.cycle,
                "pid": 0,
                "tid": tids[source],
                "s": "t",
                "args": start.args,
            }
        )
    for row in telemetry.metrics.rows:
        trace.append(
            {
                "name": "metrics",
                "ph": "C",
                "ts": row.cycle,
                "pid": 0,
                "tid": 0,
                "args": {
                    "ipc": row.ipc,
                    "fp_bandwidth_bits_per_cycle": row.fp_bandwidth_bits_per_cycle,
                    "sync_per_kcycle": row.sync_per_kcycle,
                },
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry: Telemetry, handle: IO[str], process_name: str = "reunion-sim"
) -> int:
    """Write the Chrome trace; returns the number of trace events."""
    payload = chrome_trace(telemetry, process_name)
    json.dump(payload, handle, sort_keys=True)
    handle.write("\n")
    return len(payload["traceEvents"])


def summarize(telemetry: Telemetry) -> str:
    """A terminal-friendly digest of an armed run's telemetry."""
    counts = telemetry.log.counts()
    lines = [
        f"telemetry level={telemetry.level} "
        f"events={telemetry.log.emitted} (buffered {len(telemetry.log)}, "
        f"dropped {telemetry.log.dropped}) metrics_rows={len(telemetry.metrics.rows)}"
    ]
    for kind in sorted(counts):
        lines.append(f"  {kind:<24}{counts[kind]:>8}")
    histogram = telemetry.metrics.latency_histogram()
    if histogram:
        rendered = ", ".join(
            f"{bucket}: {count}" for bucket, count in sorted(histogram.items())
        )
        lines.append(f"  recovery latency (cycles) {rendered}")
    return "\n".join(lines)
