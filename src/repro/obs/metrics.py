"""Per-interval time series sampled while a system runs.

The simulation loop calls :meth:`MetricsSampler.sample` whenever ``now``
crosses the next sampling boundary (every ``interval`` cycles, aligned
to multiples of the interval so rows from different runs line up), and
the :class:`~repro.obs.events.Telemetry` front door routes every event
emission through :meth:`MetricsSampler.observe` first — so the sampler
sees fingerprint comparisons, synchronizing requests and recoveries
even at the ``metrics`` level, where no event records are buffered.

Each :class:`MetricsRow` is a *delta* over the preceding row's window:
IPC, serializing-request rate (per kilocycle), fingerprint-comparison
bandwidth (bits per cycle, the Section 4.3 link-budget quantity), and
recovery count.  Recovery latency — cycles from ``recovery.start`` to
``recovery.resume`` — accumulates separately into a log2-bucketed
histogram, the same shape SDC studies report detection latency in.

The sampler only ever *reads* the system; it never mutates simulator
state, which is what keeps armed runs bit-identical to disarmed ones.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cmp import CMPSystem


@dataclass(slots=True)
class MetricsRow:
    """One sampling window's deltas."""

    cycle: int  # window end (exclusive)
    cycles: int  # window length
    instructions: int  # user instructions retired in the window
    ipc: float
    sync_per_kcycle: float  # synchronizing-request rate
    fp_compares: int
    fp_bandwidth_bits_per_cycle: float  # fingerprint traffic both ways
    recoveries: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


class MetricsSampler:
    """Accumulates event counts and cuts them into time-series rows."""

    __slots__ = (
        "interval",
        "fingerprint_bits",
        "next_sample_at",
        "rows",
        "recovery_latencies",
        "_compares",
        "_syncs",
        "_recoveries",
        "_recovery_started",
        "_last_cycle",
        "_last_instructions",
        "_last_compares",
        "_last_syncs",
        "_last_recoveries",
    )

    def __init__(self, interval: int = 1_024, fingerprint_bits: int = 16) -> None:
        if interval < 1:
            raise ValueError("metrics interval must be >= 1")
        self.interval = interval
        self.fingerprint_bits = fingerprint_bits
        self.next_sample_at = interval
        self.rows: list[MetricsRow] = []
        #: Completed recovery latencies (start -> resume), in cycles.
        self.recovery_latencies: list[int] = []
        # Running totals, fed by observe().
        self._compares = 0
        self._syncs = 0
        self._recoveries = 0
        #: source -> cycle of the in-flight recovery's start event.
        self._recovery_started: dict[str, int] = {}
        # Totals at the last row cut.
        self._last_cycle = 0
        self._last_instructions = 0
        self._last_compares = 0
        self._last_syncs = 0
        self._last_recoveries = 0

    # -- event side ---------------------------------------------------------
    def observe(self, kind: str, cycle: int, source: str = "") -> None:
        """Fold one event into the running counters."""
        if kind == "fingerprint.compare":
            self._compares += 1
        elif kind == "sync.request":
            self._syncs += 1
        elif kind == "recovery.start":
            self._recoveries += 1
            self._recovery_started[source] = cycle
        elif kind == "recovery.resume":
            start = self._recovery_started.pop(source, None)
            if start is not None:
                self.recovery_latencies.append(cycle - start)

    # -- sampling side ------------------------------------------------------
    def sample(self, system: "CMPSystem", now: int) -> None:
        """Cut a row covering (last row's end, ``now``]."""
        window = now - self._last_cycle
        if window <= 0:
            return
        instructions = system.user_instructions()
        d_instr = instructions - self._last_instructions
        d_compares = self._compares - self._last_compares
        d_syncs = self._syncs - self._last_syncs
        d_recoveries = self._recoveries - self._last_recoveries
        self.rows.append(
            MetricsRow(
                cycle=now,
                cycles=window,
                instructions=d_instr,
                ipc=d_instr / window,
                sync_per_kcycle=1_000 * d_syncs / window,
                fp_compares=d_compares,
                # Both cores send their fingerprint (the "swap"), so the
                # link carries two fingerprints per comparison.
                fp_bandwidth_bits_per_cycle=2 * self.fingerprint_bits * d_compares / window,
                recoveries=d_recoveries,
            )
        )
        self._last_cycle = now
        self._last_instructions = instructions
        self._last_compares = self._compares
        self._last_syncs = self._syncs
        self._last_recoveries = self._recoveries
        # Align boundaries to interval multiples so rows are comparable
        # across runs regardless of where a skip landed.
        self.next_sample_at = now - (now % self.interval) + self.interval

    def latency_histogram(self) -> dict[str, int]:
        """Recovery latencies in log2 buckets (``"16-31" -> count``)."""
        buckets: dict[str, int] = {}
        for latency in self.recovery_latencies:
            if latency <= 0:
                label = "0"
            else:
                low = 1 << (latency.bit_length() - 1)
                label = f"{low}-{2 * low - 1}"
            buckets[label] = buckets.get(label, 0) + 1
        return buckets
