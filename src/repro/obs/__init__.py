"""repro.obs — structured telemetry for simulation runs.

Reunion's correctness story lives in rare events — fingerprint
mismatches, input incoherence, synchronizing requests, re-execution
phases, mirror-window closures — that aggregate end-of-run
:class:`~repro.sim.stats.Stats` flatten away.  This package records
them, when armed, as typed event streams and per-interval time series:

* :mod:`repro.obs.events` — a bounded ring-buffered event log plus the
  :class:`Telemetry` front door components emit through;
* :mod:`repro.obs.metrics` — per-interval time series (IPC,
  serializing-request rate, fingerprint bandwidth, recovery-latency
  histogram);
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` emitters
  backing the ``repro trace`` CLI subcommand;
* :mod:`repro.obs.profile` — wall-time accounting for ``repro bench``.

The cardinal rule is **zero cost when off**: telemetry is armed by
``SimOptions(trace=...)``, and a disarmed system holds ``obs = None``
everywhere — hot paths pay one ``is not None`` test, allocate nothing,
and stay bit-identical (enforced by ``tests/sim/test_telemetry.py`` and
the ``repro bench`` telemetry comparison).
"""

from repro.obs.events import Event, EventLog, Telemetry
from repro.obs.metrics import MetricsRow, MetricsSampler
from repro.obs.profile import Profiler

__all__ = [
    "Event",
    "EventLog",
    "MetricsRow",
    "MetricsSampler",
    "Profiler",
    "Telemetry",
]
