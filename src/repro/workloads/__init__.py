"""Workloads: the paper's Table 2 application suite, reproduced.

Seven commercial workloads (statistically parameterized synthetic
generators) and four scientific kernels (real data structures, real
sharing patterns).  ``suite()`` returns all eleven in Figure 5's order.
"""

from repro.workloads.base import ITLBSchedule, Workload, hashed_schedule
from repro.workloads.commercial import (
    APACHE,
    COMMERCIAL_PROFILES,
    DB2_DSS_Q1,
    DB2_DSS_Q2,
    DB2_DSS_Q17,
    DB2_OLTP,
    ORACLE_OLTP,
    ZEUS,
    commercial_suite,
)
from repro.workloads.scientific import Em3d, Moldyn, Ocean, Sparse, scientific_suite
from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile


def suite() -> list[Workload]:
    """All eleven workloads: Web, OLTP, DSS, then Scientific."""
    return [*commercial_suite(), *scientific_suite()]


def by_name(name: str) -> Workload:
    """Look a workload up by its Table 2 name (case-insensitive)."""
    for workload in suite():
        if workload.name.lower() == name.lower():
            return workload
    raise KeyError(f"unknown workload {name!r}")


__all__ = [
    "APACHE",
    "COMMERCIAL_PROFILES",
    "DB2_DSS_Q1",
    "DB2_DSS_Q17",
    "DB2_DSS_Q2",
    "DB2_OLTP",
    "Em3d",
    "ITLBSchedule",
    "Moldyn",
    "ORACLE_OLTP",
    "Ocean",
    "Sparse",
    "SyntheticWorkload",
    "Workload",
    "WorkloadProfile",
    "ZEUS",
    "by_name",
    "commercial_suite",
    "hashed_schedule",
    "scientific_suite",
    "suite",
]
