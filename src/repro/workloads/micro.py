"""Microbenchmarks: targeted stressors for specific machine behaviours.

These are not part of the paper's Table 2 suite; they exist to isolate
one mechanism at a time — the way an architect would probe a design:

* :class:`PointerChase` — a dependent load chain through a randomized
  linked list: pure memory latency, no MLP.  Sensitive to check-stage
  retirement delay, insensitive to comparison bandwidth.
* :class:`Stream` — a sequential read-modify-write sweep: bandwidth and
  MLP bound, the workload most hurt by ROB occupancy.
* :class:`LockContention` — every core hammers fetch-add on a handful of
  shared locks: the worst case for Reunion's pair-synchronized atomics
  and for serializing stalls generally.
* :class:`FalseSharing` — cores write disjoint words of the same cache
  lines: an invalidation storm that maximizes input-incoherence
  opportunities for the mute caches.
* :class:`ComputeKernel` — a dense ALU/branch loop with no memory
  accesses at all: the pure-compute pole of the workload space, where
  redundant execution's cost is all pipeline simulation (the best case
  for the replay fast path's mirror window, the worst for cycle
  skipping).
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.workloads.base import Workload

MICRO_BASE = 0x0D00_0000
MICRO_SHARED = 0x0E00_0000


class PointerChase(Workload):
    """Chase a randomized singly-linked list: one load depends on the last."""

    name = "pointer-chase"
    category = "Micro"

    def __init__(self, nodes: int = 512, chases_per_iteration: int = 64) -> None:
        self.nodes = nodes
        self.chases = chases_per_iteration

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        rng = random.Random(0xC4A5E ^ seed)
        programs = []
        for core in range(n_logical):
            base = MICRO_BASE + core * 0x0010_0000
            order = list(range(self.nodes))
            rng.shuffle(order)
            image = {}
            for position, node in enumerate(order):
                succ = order[(position + 1) % self.nodes]
                image[base + node * 8] = base + succ * 8
            builder = ProgramBuilder(name=f"pointer-chase/cpu{core}")
            builder.reg(1, base + order[0] * 8)
            builder.label("loop")
            for _ in range(self.chases):
                builder.load(1, 1)  # r1 <- M[r1]: the chain
            builder.jump("loop")
            program = builder.build()
            program.memory_image.update(image)
            programs.append(program)
        return programs


class Stream(Workload):
    """Sequential sweep: load, add, store, advance — maximal MLP."""

    name = "stream"
    category = "Micro"

    def __init__(self, footprint_bytes: int = 64 * 1024, unroll: int = 32) -> None:
        self.footprint = footprint_bytes
        self.unroll = unroll

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        programs = []
        mask = (self.footprint - 1) & ~0x7
        for core in range(n_logical):
            base = MICRO_BASE + core * 0x0010_0000
            builder = ProgramBuilder(name=f"stream/cpu{core}")
            builder.reg(1, base)
            builder.reg(2, 0)  # offset
            builder.label("loop")
            builder.add(3, 1, 2)
            for i in range(self.unroll):
                builder.load(4 + (i % 4), 3, i * 8)
                builder.addi(4 + (i % 4), 4 + (i % 4), 1)
                builder.store(4 + (i % 4), 3, i * 8)
            builder.addi(2, 2, self.unroll * 8)
            builder.alu(Op.ANDI, 2, 2, imm=mask)
            builder.jump("loop")
            programs.append(builder.build())
        return programs


class LockContention(Workload):
    """All cores fetch-add the same few locks, then spin briefly."""

    name = "lock-contention"
    category = "Micro"

    def __init__(self, locks: int = 2, work_between: int = 16) -> None:
        self.locks = locks
        self.work = work_between

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        programs = []
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"lock-contention/cpu{core}")
            builder.reg(2, 1)
            builder.label("loop")
            for lock in range(self.locks):
                builder.movi(1, MICRO_SHARED + lock * 64)
                builder.atomic(3, 1, 2)  # fetch-add the lock word
                for i in range(self.work):
                    builder.add(4 + (i % 4), 4 + (i % 4), 3)
            builder.jump("loop")
            programs.append(builder.build())
        return programs


class FalseSharing(Workload):
    """Each core writes its own word of shared lines: invalidation storm."""

    name = "false-sharing"
    category = "Micro"

    def __init__(self, lines: int = 8, writes_per_line: int = 4) -> None:
        self.lines = lines
        self.writes = writes_per_line

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        programs = []
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"false-sharing/cpu{core}")
            word = core % 8  # each core's private word within every line
            builder.reg(2, 0)
            builder.label("loop")
            builder.addi(2, 2, 1)
            for line in range(self.lines):
                builder.movi(1, MICRO_SHARED + line * 64 + word * 8)
                for _ in range(self.writes):
                    builder.store(2, 1)
                    builder.load(3, 1)
            builder.jump("loop")
            programs.append(builder.build())
        return programs


class ComputeKernel(Workload):
    """Dependent ALU work and data-dependent branches; zero memory traffic.

    Every instruction is register-to-register, so a Reunion pair's cores
    never interact with the memory system: the workload isolates the raw
    cost of simulating redundant pipelines (and is therefore the
    benchmark artifact for the mute-mirror fast path).
    """

    name = "compute-kernel"
    category = "Micro"

    def __init__(self, unroll: int = 12) -> None:
        self.unroll = unroll

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        programs = []
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"compute-kernel/cpu{core}")
            builder.reg(1, 3)
            builder.reg(2, (seed * 2654435761 + core * 40503 + 1) & 0xFFFF)
            builder.label("loop")
            builder.addi(6, 6, 1)
            builder.alu(Op.ANDI, 7, 6, imm=3)
            builder.beq(7, 0, "mix")  # taken every 4th trip: predictor work
            for i in range(self.unroll):
                builder.add(3 + (i % 3), 3 + (i % 3), 1 + (i % 2))
            builder.jump("loop")
            builder.label("mix")
            for i in range(self.unroll):
                builder.alu(Op.MUL, 3 + (i % 3), 3 + (i % 3), rs2=2)
                builder.alu(Op.ANDI, 3 + (i % 3), 3 + (i % 3), imm=0xFFFFFF)
            builder.jump("loop")
            programs.append(builder.build())
        return programs


def micro_suite() -> list[Workload]:
    return [PointerChase(), Stream(), LockContention(), FalseSharing(), ComputeKernel()]
