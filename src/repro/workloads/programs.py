"""Hand-written multiprocessor kernels: locks, barriers, message passing.

The paper's motivating example for input incoherence is "ordinary code
such as spin-lock routines" (Section 2.3).  This module provides those
routines as reusable program generators, both as library content for
users of the simulator and as the sharpest correctness tests of the
Reunion machinery: mutual exclusion must hold *through* recoveries,
synchronizing requests, and phantom-fed mute caches.

Memory map (shared across participants):

* ``LOCK_ADDR`` — the spin lock / ticket words
* ``COUNTER_ADDR`` — the datum the critical sections protect
* ``BARRIER_ADDR`` — sense-reversing barrier state
* ``MAILBOX_ADDR`` — producer/consumer mailbox (flag + payload)
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import Program

LOCK_ADDR = 0x0F00_0000
COUNTER_ADDR = 0x0F00_0040
BARRIER_ADDR = 0x0F00_0080
MAILBOX_ADDR = 0x0F00_00C0


def spinlock_increment(core: int, n_cores: int, increments: int) -> Program:
    """Acquire a CAS spin lock, bump a shared counter, release; repeat.

    With ``n_cores`` participants each performing ``increments`` rounds,
    mutual exclusion demands the counter end exactly at
    ``n_cores * increments``.
    """
    builder = ProgramBuilder(name=f"spinlock/cpu{core}")
    builder.reg(1, LOCK_ADDR)
    builder.reg(2, COUNTER_ADDR)
    builder.movi(10, increments)
    builder.label("round")
    # -- acquire: cas lock 0 -> 1, spin while held ------------------------
    builder.label("acquire")
    builder.cas(3, 1, 0, 1)
    builder.bne(3, 0, "acquire")
    # -- critical section: non-atomic read-modify-write -------------------
    builder.load(4, 2)
    builder.addi(4, 4, 1)
    builder.store(4, 2)
    # -- release: membar then store 0 -------------------------------------
    builder.membar()
    builder.store(0, 1)
    builder.addi(10, 10, -1)
    builder.bne(10, 0, "round")
    builder.halt()
    return builder.build()


def ticket_lock_increment(core: int, n_cores: int, increments: int) -> Program:
    """A FIFO ticket lock protecting the same shared counter.

    ``atomic`` (fetch-and-add) takes a ticket; the core spins until the
    now-serving word reaches it — the classic fair lock, and a constant
    stream of racy spin loads for the mute cache to go stale on.
    """
    next_ticket = LOCK_ADDR
    now_serving = LOCK_ADDR + 8
    builder = ProgramBuilder(name=f"ticket/cpu{core}")
    builder.reg(1, next_ticket)
    builder.reg(2, now_serving)
    builder.reg(3, COUNTER_ADDR)
    builder.reg(9, 1)
    builder.movi(10, increments)
    builder.label("round")
    builder.atomic(4, 1, 9)  # my ticket
    builder.label("spin")
    builder.load(5, 2)
    builder.bne(5, 4, "spin")
    builder.load(6, 3)  # critical section
    builder.addi(6, 6, 1)
    builder.store(6, 3)
    builder.membar()
    builder.addi(5, 5, 1)  # pass the lock
    builder.store(5, 2)
    builder.addi(10, 10, -1)
    builder.bne(10, 0, "round")
    builder.halt()
    return builder.build()


def sense_barrier(core: int, n_cores: int, rounds: int) -> Program:
    """A sense-reversing centralized barrier.

    Each round: fetch-and-add the arrival count; the last arrival resets
    the count and flips the sense word; everyone else spins on the sense.
    Register r20 accumulates the round count so tests can verify every
    participant completed every round.
    """
    count_addr = BARRIER_ADDR
    sense_addr = BARRIER_ADDR + 8
    builder = ProgramBuilder(name=f"barrier/cpu{core}")
    builder.reg(1, count_addr)
    builder.reg(2, sense_addr)
    builder.reg(9, 1)
    builder.movi(10, rounds)
    builder.movi(11, 0)  # local sense
    builder.label("round")
    builder.alu(Op.XORI, 11, 11, imm=1)  # flip local sense
    builder.atomic(4, 1, 9)  # arrive
    builder.addi(4, 4, 1)  # my arrival number
    builder.movi(5, n_cores)
    builder.bne(4, 5, "spin")
    # Last arrival: reset the count and publish the new sense.
    builder.store(0, 1)
    builder.membar()
    builder.store(11, 2)
    builder.jump("depart")
    builder.label("spin")
    builder.load(6, 2)
    builder.bne(6, 11, "spin")
    builder.label("depart")
    builder.addi(20, 20, 1)  # rounds completed
    builder.addi(10, 10, -1)
    builder.bne(10, 0, "round")
    builder.halt()
    return builder.build()


def producer(items: int) -> Program:
    """Publish ``items`` values through a flag-guarded mailbox."""
    flag = MAILBOX_ADDR
    slot = MAILBOX_ADDR + 8
    builder = ProgramBuilder(name="producer")
    builder.reg(1, flag)
    builder.reg(2, slot)
    builder.movi(10, items)
    builder.movi(11, 1)  # next value: 1, 2, ...
    builder.label("round")
    builder.label("wait_empty")
    builder.load(3, 1)
    builder.bne(3, 0, "wait_empty")
    builder.store(11, 2)  # payload first
    builder.membar()
    builder.store(11, 1)  # then raise the (nonzero) flag
    builder.addi(11, 11, 1)
    builder.addi(10, 10, -1)
    builder.bne(10, 0, "round")
    builder.halt()
    return builder.build()


def consumer(items: int) -> Program:
    """Drain the mailbox; r20 accumulates the received values."""
    flag = MAILBOX_ADDR
    slot = MAILBOX_ADDR + 8
    builder = ProgramBuilder(name="consumer")
    builder.reg(1, flag)
    builder.reg(2, slot)
    builder.movi(10, items)
    builder.label("round")
    builder.label("wait_full")
    builder.load(3, 1)
    builder.beq(3, 0, "wait_full")
    builder.load(4, 2)
    builder.add(20, 20, 4)  # consume
    builder.membar()
    builder.store(0, 1)  # mark empty
    builder.addi(10, 10, -1)
    builder.bne(10, 0, "round")
    builder.halt()
    return builder.build()
