"""Scientific workloads: em3d, moldyn, ocean, sparse (Table 2).

Unlike the statistically-generated commercial suite, these are real
kernels: each builds its actual data structure (an irregular bipartite
graph, a molecule neighbor list, a 2-D grid, a CSR sparse matrix), then
emits straight-line code whose loads and stores walk that structure.
The sharing patterns that produce input incoherence are therefore the
apps' genuine ones:

* **em3d** — irregular graph updates; 15% of edges cross partitions
  (matching the paper's "15% remote").  Its working set is swept through
  a region larger than the shared cache, reproducing the paper's note
  that em3d's working set exceeds the L2 (Figure 7(a) discussion).
* **moldyn** — pairwise force interactions over a neighbor list; remote
  neighbors are position reads of molecules owned by other cores.
* **ocean** — 5-point stencil over a row-partitioned grid; each sweep
  reads boundary rows owned by adjacent cores.
* **sparse** — CSR sparse matrix-vector product; the x vector is shared
  and re-written by its owners each iteration.

Each outer iteration ends with a lightweight synchronization point (an
atomic fetch-add on a shared counter plus a memory barrier), giving the
kernels their characteristic low-but-nonzero serializing rate.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.workloads.base import Workload

SCI_BASE = 0x0A00_0000  # node values / positions / grid / vectors
SCI_AUX = 0x0B00_0000  # forces / y vector / matrix values
SYNC_ADDR = 0x0C00_0000  # barrier-style shared counter

_R_ROT = 3
_R_ADDR = 28
_R_ADDR2 = 27
_R_ACC = 10
_R_TMP = 11
_R_TMP2 = 12
_R_SELF = 13
_R_ONE = 24
_R_SYNC = 25


_R_ITER = 26
_R_ITER_TMP = 23


def _emit_sync_point(builder: ProgramBuilder, every: int = 4) -> None:
    """Synchronization point: atomic counter + membar, every N iterations.

    Real scientific codes amortize barriers over large grids; these scaled
    kernels sync every few sweeps so their serializing-instruction rate
    stays characteristically low (well under commercial workloads).
    """
    label = f"skip_sync_{builder.here}"
    builder.addi(_R_ITER, _R_ITER, 1)
    builder.alu(Op.ANDI, _R_ITER_TMP, _R_ITER, imm=every - 1)
    builder.bne(_R_ITER_TMP, 0, label)
    builder.movi(_R_SYNC, SYNC_ADDR)
    builder.atomic(_R_TMP, _R_SYNC, _R_ONE)
    builder.membar()
    builder.label(label)


def _load_abs(builder: ProgramBuilder, reg: int, addr: int, rot: bool = False) -> None:
    """Load from an absolute address, optionally shifted by the rotation."""
    builder.movi(_R_ADDR, addr)
    if rot:
        builder.add(_R_ADDR, _R_ADDR, _R_ROT)
    builder.load(reg, _R_ADDR)


def _store_abs(builder: ProgramBuilder, reg: int, addr: int, rot: bool = False) -> None:
    builder.movi(_R_ADDR2, addr)
    if rot:
        builder.add(_R_ADDR2, _R_ADDR2, _R_ROT)
    builder.store(reg, _R_ADDR2)


class Em3d(Workload):
    """Irregular bipartite graph relaxation with remote edges."""

    name = "em3d"
    category = "Scientific"

    def __init__(
        self,
        nodes_per_core: int = 48,
        degree: int = 3,
        remote_fraction: float = 0.15,
        sweep_bytes: int = 256 * 1024,
    ) -> None:
        self.nodes_per_core = nodes_per_core
        self.degree = degree
        self.remote_fraction = remote_fraction
        self.sweep_bytes = sweep_bytes

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        rng = random.Random(0xE3D ^ seed)
        n_total = self.nodes_per_core * n_logical
        # Graph: node -> list of neighbor node ids; ~15% cross partitions.
        neighbors: list[list[int]] = []
        for node in range(n_total):
            part = node // self.nodes_per_core
            nbrs = []
            for _ in range(self.degree):
                if rng.random() < self.remote_fraction and n_logical > 1:
                    other = rng.randrange(n_logical - 1)
                    if other >= part:
                        other += 1
                    nbrs.append(
                        other * self.nodes_per_core + rng.randrange(self.nodes_per_core)
                    )
                else:
                    nbrs.append(
                        part * self.nodes_per_core + rng.randrange(self.nodes_per_core)
                    )
            neighbors.append(nbrs)

        programs = []
        sweep_mask = (self.sweep_bytes - 1) & ~0x7
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"em3d/cpu{core}")
            builder.reg(_R_ONE, 1)
            builder.label("loop")
            # Sweep the node arrays through a region larger than the L2:
            # em3d's working set exceeds the shared cache in the paper.
            builder.addi(_R_ROT, _R_ROT, 8 * 97)
            builder.alu(Op.ANDI, _R_ROT, _R_ROT, imm=sweep_mask)
            lo = core * self.nodes_per_core
            for node in range(lo, lo + self.nodes_per_core):
                builder.movi(_R_ACC, 0)
                for nbr in neighbors[node]:
                    _load_abs(builder, _R_TMP, SCI_BASE + nbr * 8, rot=True)
                    builder.add(_R_ACC, _R_ACC, _R_TMP)
                builder.alu(Op.SRL, _R_ACC, _R_ACC, _R_ONE)  # damping
                _store_abs(builder, _R_ACC, SCI_BASE + node * 8, rot=True)
            _emit_sync_point(builder)
            builder.jump("loop")
            program = builder.build()
            program.memory_image.update(
                {SCI_BASE + i * 8: (i * 7 + 1) & 0xFFFF for i in range(n_total)}
            )
            programs.append(program)
        return programs


class Moldyn(Workload):
    """Molecular dynamics: pairwise forces over a neighbor list."""

    name = "moldyn"
    category = "Scientific"

    def __init__(
        self,
        molecules_per_core: int = 56,
        neighbors: int = 4,
        remote_fraction: float = 0.15,
    ) -> None:
        self.molecules_per_core = molecules_per_core
        self.neighbors = neighbors
        self.remote_fraction = remote_fraction

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        rng = random.Random(0x301D ^ seed)
        per_core = self.molecules_per_core
        n_total = per_core * n_logical
        # Cutoff-radius locality: most neighbors share the molecule's
        # spatial partition; the rest sit just across the boundary in an
        # adjacent partition (the real moldyn communication pattern).
        nbr_list: list[list[int]] = []
        for i in range(n_total):
            part = i // per_core
            nbrs = []
            for _ in range(min(self.neighbors, n_total - 1)):
                if n_logical > 1 and rng.random() < self.remote_fraction:
                    adjacent = (part + rng.choice([-1, 1])) % n_logical
                    nbrs.append(adjacent * per_core + rng.randrange(per_core))
                else:
                    candidate = part * per_core + rng.randrange(per_core)
                    if candidate == i:
                        candidate = part * per_core + (i + 1 - part * per_core) % per_core
                    nbrs.append(candidate)
            nbr_list.append(nbrs)
        programs = []
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"moldyn/cpu{core}")
            builder.reg(_R_ONE, 1)
            builder.movi(20, 4)  # force damping shift
            builder.label("loop")
            lo = core * self.molecules_per_core
            # Force phase: read own and neighbor positions.
            for mol in range(lo, lo + self.molecules_per_core):
                _load_abs(builder, _R_SELF, SCI_BASE + mol * 8)
                builder.movi(_R_ACC, 0)
                for nbr in nbr_list[mol]:
                    _load_abs(builder, _R_TMP, SCI_BASE + nbr * 8)
                    builder.alu(Op.SUB, _R_TMP2, _R_SELF, _R_TMP)
                    builder.alu(Op.MUL, _R_TMP2, _R_TMP2, _R_TMP2)
                    builder.add(_R_ACC, _R_ACC, _R_TMP2)
                _store_abs(builder, _R_ACC, SCI_AUX + mol * 8)
            # Update phase every other sweep: positions (the shared data
            # other partitions read) change at half the force-phase rate,
            # as in a leapfrog integrator's slower position timescale.
            skip_update = f"skip_update_{core}"
            builder.addi(22, 22, 1)  # dedicated update-phase counter
            builder.alu(Op.ANDI, 19, 22, imm=1)
            builder.bne(19, 0, skip_update)
            for mol in range(lo, lo + self.molecules_per_core):
                _load_abs(builder, _R_TMP, SCI_AUX + mol * 8)
                builder.alu(Op.SRL, _R_TMP, _R_TMP, 20)
                _load_abs(builder, _R_SELF, SCI_BASE + mol * 8)
                builder.add(_R_SELF, _R_SELF, _R_TMP)
                builder.alu(Op.ANDI, _R_SELF, _R_SELF, imm=0xFFFF)
                _store_abs(builder, _R_SELF, SCI_BASE + mol * 8)
            builder.label(skip_update)
            _emit_sync_point(builder)
            builder.jump("loop")
            program = builder.build()
            program.memory_image.update(
                {SCI_BASE + i * 8: (i * 13 + 3) & 0xFFF for i in range(n_total)}
            )
            programs.append(program)
        return programs


class Ocean(Workload):
    """5-point stencil relaxation over a row-partitioned grid."""

    name = "ocean"
    category = "Scientific"

    def __init__(self, rows_per_core: int = 5, cols: int = 16) -> None:
        self.rows_per_core = rows_per_core
        self.cols = cols

    def _addr(self, row: int, col: int) -> int:
        return SCI_BASE + (row * self.cols + col) * 8

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        total_rows = self.rows_per_core * n_logical + 2  # halo rows
        programs = []
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"ocean/cpu{core}")
            builder.reg(_R_ONE, 1)
            builder.movi(21, 2)  # >> 2 = divide by 4
            builder.label("loop")
            row_lo = 1 + core * self.rows_per_core
            for row in range(row_lo, row_lo + self.rows_per_core):
                for col in range(1, self.cols - 1):
                    _load_abs(builder, _R_ACC, self._addr(row - 1, col))
                    _load_abs(builder, _R_TMP, self._addr(row + 1, col))
                    builder.add(_R_ACC, _R_ACC, _R_TMP)
                    _load_abs(builder, _R_TMP, self._addr(row, col - 1))
                    builder.add(_R_ACC, _R_ACC, _R_TMP)
                    _load_abs(builder, _R_TMP, self._addr(row, col + 1))
                    builder.add(_R_ACC, _R_ACC, _R_TMP)
                    builder.alu(Op.SRL, _R_ACC, _R_ACC, 21)
                    _store_abs(builder, _R_ACC, self._addr(row, col))
            _emit_sync_point(builder)
            builder.jump("loop")
            program = builder.build()
            program.memory_image.update(
                {
                    self._addr(r, c): ((r * 31 + c * 7) & 0xFFF)
                    for r in range(total_rows)
                    for c in range(self.cols)
                }
            )
            programs.append(program)
        return programs


class Sparse(Workload):
    """CSR sparse matrix-vector product with a shared x vector."""

    name = "sparse"
    category = "Scientific"

    def __init__(self, n: int = 96, nnz_per_row: int = 4) -> None:
        self.n = n
        self.nnz_per_row = nnz_per_row

    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        rng = random.Random(0x5BA2 ^ seed)
        cols = [
            sorted(rng.sample(range(self.n), self.nnz_per_row)) for _ in range(self.n)
        ]
        rows_per_core = self.n // n_logical
        x_base = SCI_BASE
        val_base = SCI_AUX
        y_base = SCI_AUX + 0x0010_0000
        programs = []
        for core in range(n_logical):
            builder = ProgramBuilder(name=f"sparse/cpu{core}")
            builder.reg(_R_ONE, 1)
            builder.movi(21, 8)  # scaling shift for the x update
            builder.label("loop")
            row_lo = core * rows_per_core
            for row in range(row_lo, row_lo + rows_per_core):
                builder.movi(_R_ACC, 0)
                for k, col in enumerate(cols[row]):
                    nnz_index = row * self.nnz_per_row + k
                    _load_abs(builder, _R_TMP, val_base + nnz_index * 8)
                    _load_abs(builder, _R_TMP2, x_base + col * 8)
                    builder.alu(Op.MUL, _R_TMP, _R_TMP, _R_TMP2)
                    builder.add(_R_ACC, _R_ACC, _R_TMP)
                _store_abs(builder, _R_ACC, y_base + row * 8)
            # x <- y >> 8 for owned rows: the shared vector other cores
            # read (the incoherence source).  Updated every fourth sweep,
            # mirroring how a real-size x spreads its writes thinly over
            # time relative to the reads of any one cache line.
            skip_update = f"skip_update_{core}"
            builder.addi(22, 22, 1)
            builder.alu(Op.ANDI, 19, 22, imm=3)
            builder.bne(19, 0, skip_update)
            for row in range(row_lo, row_lo + rows_per_core):
                _load_abs(builder, _R_TMP, y_base + row * 8)
                builder.alu(Op.SRL, _R_TMP, _R_TMP, 21)
                builder.alu(Op.ANDI, _R_TMP, _R_TMP, imm=0xFFFF)
                _store_abs(builder, _R_TMP, x_base + row * 8)
            builder.label(skip_update)
            _emit_sync_point(builder)
            builder.jump("loop")
            program = builder.build()
            image = {x_base + i * 8: (i * 3 + 1) & 0xFF for i in range(self.n)}
            image.update(
                {
                    val_base + i * 8: (i * 5 + 2) & 0xFF
                    for i in range(self.n * self.nnz_per_row)
                }
            )
            program.memory_image.update(image)
            programs.append(program)
        return programs


def scientific_suite() -> list[Workload]:
    """The four scientific workloads, in the paper's Figure 5 order."""
    return [Em3d(), Moldyn(), Ocean(), Sparse()]
