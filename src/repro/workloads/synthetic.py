"""Parameterized synthetic workload generator.

The paper evaluates full-system commercial workloads (TPC-C on DB2 and
Oracle, TPC-H queries, SPECweb on Apache and Zeus).  Running those is
impossible inside a toy ISA, but their *evaluation-relevant character*
is statistical, and the paper itself tells us which statistics matter:

* instruction mix and memory footprint (L1/L2 pressure, MLP),
* serializing-instruction frequency — traps, memory barriers, atomics
  (Section 5.2: the dominant penalty for commercial workloads),
* TLB miss rate (Section 5.5, Table 3),
* shared-data write rate — the source of input incoherence (Table 3).

:class:`SyntheticWorkload` emits, per logical processor, an infinite
loop whose body is drawn from a seeded distribution over those knobs.
Values flow through the real simulated memory system, so data races and
stale mute-cache lines produce *real* input incoherence.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.workloads.base import ITLBSchedule, Workload, hashed_schedule

#: Memory map: per-core private heaps, one shared heap, one lock table.
PRIVATE_BASE = 0x0100_0000
PRIVATE_STRIDE = 0x0100_0000
SHARED_BASE = 0x0800_0000
LOCK_BASE = 0x0900_0000

# Register roles inside generated code.
_R_PRIV_BASE = 1
_R_SHARED_BASE = 2
_R_ROT = 3
_R_PRIV_PTR = 4
_R_SHARED_ROT = 5
_R_SHARED_PTR = 6
_R_LCG = 8
_R_LCG_MULT = 9
_DATA_REGS = list(range(10, 18))
_R_SCRATCH = 20
_R_LOCK = 22
_R_ONE = 24


@dataclass(frozen=True)
class WorkloadProfile:
    """The statistical character of one application (Table 2 analogue)."""

    name: str
    category: str  # Web / OLTP / DSS / Scientific
    body_size: int = 1000  # static instructions per loop body
    pct_load: float = 0.22
    pct_store: float = 0.08
    pct_branch: float = 0.12
    pct_mul: float = 0.04
    footprint_bytes: int = 32 * 1024  # private working set per core
    sequential: bool = False  # streaming (DSS scan) vs random access
    shared_load_per_k: float = 3.0  # shared-heap reads per 1000 instrs
    shared_store_per_k: float = 0.3  # shared-heap writes (race source)
    trap_per_k: float = 1.5
    membar_per_k: float = 1.0
    atomic_per_k: float = 0.4
    itlb_miss_per_k: float = 2.0  # synthetic instruction-TLB misses
    branch_entropy: float = 0.15  # fraction of branches that are random
    shared_bytes: int = 2 * 1024

    def rates_per_instr(self) -> dict[str, float]:
        return {
            "shared_load": self.shared_load_per_k / 1000,
            "shared_store": self.shared_store_per_k / 1000,
            "trap": self.trap_per_k / 1000,
            "membar": self.membar_per_k / 1000,
            "atomic": self.atomic_per_k / 1000,
        }


class SyntheticWorkload(Workload):
    """Generates one infinite-loop program per logical processor."""

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        self.name = profile.name
        self.category = profile.category

    # -- program generation --------------------------------------------------
    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        return [
            self._generate(core, n_logical, seed) for core in range(n_logical)
        ]

    def itlb_schedules(self, n_logical: int, seed: int = 0) -> list[ITLBSchedule | None]:
        return [
            hashed_schedule(self.profile.itlb_miss_per_k, seed * 1000 + core)
            for core in range(n_logical)
        ]

    def _generate(self, core: int, n_logical: int, seed: int) -> Program:
        profile = self.profile
        rng = random.Random(
            (seed << 16) ^ (core << 4) ^ (zlib.crc32(profile.name.encode()) & 0xFFFF)
        )
        builder = ProgramBuilder(name=f"{profile.name}/cpu{core}")

        private_base = PRIVATE_BASE + core * PRIVATE_STRIDE
        rot_mask = (profile.footprint_bytes - 1) & ~0x7
        shared_mask = (profile.shared_bytes - 1) & ~0x7
        # Streaming workloads advance one line per iteration; random-access
        # workloads jump by a large odd stride, touching new pages freely.
        stride = 64 if profile.sequential else 8 * 4093

        builder.reg(_R_PRIV_BASE, private_base)
        builder.reg(_R_SHARED_BASE, SHARED_BASE)
        builder.reg(_R_LCG, rng.getrandbits(32) | 1)
        builder.reg(_R_LCG_MULT, 6364136223846793005)
        builder.reg(_R_ONE, 1)

        builder.label("loop")
        # Rotate the private and shared windows so successive iterations
        # cover the whole footprint.
        builder.addi(_R_ROT, _R_ROT, stride)
        builder.alu(Op.ANDI, _R_ROT, _R_ROT, imm=rot_mask)
        builder.add(_R_PRIV_PTR, _R_PRIV_BASE, _R_ROT)
        builder.addi(_R_SHARED_ROT, _R_SHARED_ROT, 8 * 61)
        builder.alu(Op.ANDI, _R_SHARED_ROT, _R_SHARED_ROT, imm=shared_mask)
        builder.add(_R_SHARED_PTR, _R_SHARED_BASE, _R_SHARED_ROT)
        # Advance the LCG that feeds unpredictable branches.
        builder.alu(Op.MUL, _R_LCG, _R_LCG, _R_LCG_MULT)
        builder.addi(_R_LCG, _R_LCG, 1442695040888963407 & 0xFFFF)

        self._emit_body(builder, rng, profile)
        builder.jump("loop")
        return builder.build()

    @staticmethod
    def _count(rate_per_instr: float, body_size: int, rng: random.Random) -> int:
        """Expected occurrences in one body, probabilistically rounded."""
        expected = rate_per_instr * body_size
        base = int(expected)
        return base + (1 if rng.random() < expected - base else 0)

    def _emit_body(self, builder: ProgramBuilder, rng: random.Random, profile: WorkloadProfile) -> None:
        """Emit one loop body with deterministic per-body event counts.

        Rare events (serializing instructions, shared-heap traffic) are
        placed at shuffled positions with counts matching the profile's
        rates exactly, rather than sampled per-slot: per-body variance in
        serializing frequency would otherwise dominate the small-window
        measurements this reproduction runs.
        """
        rates = profile.rates_per_instr()
        body = profile.body_size
        slots: list[str] = []
        for kind in ("trap", "membar", "atomic", "shared_load", "shared_store"):
            slots.extend([kind] * self._count(rates[kind], body, rng))
        slots.extend(["plain"] * (body - len(slots)))
        rng.shuffle(slots)

        data_cursor = 0
        label_counter = 0
        window = 2048  # offsets within the rotating private pointer
        shared_window = 512  # hot shared region: where the races live

        def data_reg() -> int:
            nonlocal data_cursor
            reg = _DATA_REGS[data_cursor % len(_DATA_REGS)]
            data_cursor += 1
            return reg

        for kind in slots:
            if kind == "trap":
                builder.trap()
            elif kind == "membar":
                builder.membar()
            elif kind == "atomic":
                lock = LOCK_BASE + 64 * rng.randrange(8)
                builder.movi(_R_LOCK, lock)
                builder.atomic(_R_SCRATCH, _R_LOCK, _R_ONE)
            elif kind == "shared_load":
                builder.load(data_reg(), _R_SHARED_PTR, rng.randrange(0, shared_window, 8))
            elif kind == "shared_store":
                # Half the shared stores publish the (always-changing) LCG
                # value: shared data genuinely changes, so a stale mute
                # copy is a *value* difference — observable incoherence.
                src = _R_LCG if rng.random() < 0.5 else _DATA_REGS[rng.randrange(len(_DATA_REGS))]
                builder.store(src, _R_SHARED_PTR, rng.randrange(0, shared_window, 8))
            else:
                roll = rng.random()
                if roll < profile.pct_load:
                    builder.load(data_reg(), _R_PRIV_PTR, rng.randrange(0, window, 8))
                elif roll < profile.pct_load + profile.pct_store:
                    src = _DATA_REGS[rng.randrange(len(_DATA_REGS))]
                    builder.store(src, _R_PRIV_PTR, rng.randrange(0, window, 8))
                elif roll < profile.pct_load + profile.pct_store + profile.pct_branch:
                    label = f"skip{label_counter}"
                    label_counter += 1
                    if rng.random() < profile.branch_entropy:
                        # Data-dependent, effectively random branch.
                        builder.alu(Op.ANDI, _R_SCRATCH, _R_LCG, imm=1)
                        builder.beq(_R_SCRATCH, 0, label)
                    else:
                        # Never-taken branch: predictable after warm-up.
                        builder.bne(_R_ONE, _R_ONE, label)
                    builder.alu(
                        Op.ADD,
                        _DATA_REGS[rng.randrange(len(_DATA_REGS))],
                        _DATA_REGS[rng.randrange(len(_DATA_REGS))],
                        _DATA_REGS[rng.randrange(len(_DATA_REGS))],
                    )
                    builder.label(label)
                elif roll < (
                    profile.pct_load + profile.pct_store + profile.pct_branch + profile.pct_mul
                ):
                    a, b = rng.sample(_DATA_REGS, 2)
                    builder.alu(Op.MUL, data_reg(), a, b)
                else:
                    a, b = rng.sample(_DATA_REGS, 2)
                    if rng.random() < 0.2:
                        a = _R_LCG  # keep real values churning through the dataflow
                    op = rng.choice([Op.ADD, Op.SUB, Op.XOR, Op.OR, Op.AND])
                    builder.alu(op, data_reg(), a, b)
