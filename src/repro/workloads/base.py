"""Workload interface: programs plus TLB character per logical processor."""

from __future__ import annotations

import abc
from typing import Callable

from repro.isa.program import Program

#: Pure function of retired user-instruction index -> "ITLB miss here".
ITLBSchedule = Callable[[int], bool]


class Workload(abc.ABC):
    """One application from the evaluation suite (Table 2).

    A workload supplies one program per logical processor plus an
    optional synthetic instruction-TLB miss schedule modelling the large
    instruction footprints of commercial applications (this simulator's
    toy kernels cannot reproduce instruction-side footprints natively).
    Programs must be deterministic in ``seed`` — matched-pair sampling
    relies on the base and test systems running identical code.
    """

    #: Human-readable name, e.g. "DB2 OLTP".
    name: str = "workload"
    #: Figure 5 grouping: "Web", "OLTP", "DSS", or "Scientific".
    category: str = "Uncategorized"

    @abc.abstractmethod
    def programs(self, n_logical: int, seed: int = 0) -> list[Program]:
        """Build the per-logical-processor programs."""

    def itlb_schedules(self, n_logical: int, seed: int = 0) -> list[ITLBSchedule | None]:
        """Synthetic ITLB miss schedules; default none."""
        return [None] * n_logical

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


#: Memoized decision tables keyed by (threshold, mix).  The schedule is a
#: pure function of its parameters, and every core of every run in a
#: campaign with the same (rate, seed) shares one table — the vocal and
#: mute of a pair, and repeated warmup/measure phases, hit the same
#: indices, so the 64-bit mix hash runs once per index process-wide.
_SCHED_TABLES: dict[tuple[int, int], bytearray] = {}
_SCHED_BLOCK = 4096


def hashed_schedule(rate_per_kinstr: float, seed: int) -> ITLBSchedule | None:
    """A deterministic pseudo-random schedule firing at a given rate.

    The decision is a pure hash of the retired-instruction index, so the
    vocal and mute cores of a pair trigger at identical program points —
    a requirement for keeping their retired instruction streams aligned.
    """
    if rate_per_kinstr <= 0:
        return None
    threshold = int(rate_per_kinstr / 1000.0 * (1 << 32))
    mix = 0x9E3779B97F4A7C15 ^ (seed * 0xBF58476D1CE4E5B9)
    table = _SCHED_TABLES.setdefault((threshold, mix), bytearray())

    def schedule(index: int) -> bool:
        if index >= len(table):
            # Fill forward in blocks: one bigint hash per index, ever.
            start = len(table)
            for i in range(start, index + _SCHED_BLOCK):
                h = (i * 0x94D049BB133111EB) ^ mix
                h ^= h >> 31
                h = (h * 0xD6E8FEB86659FD93) & ((1 << 64) - 1)
                table.append((h >> 32) < threshold)
        return table[index]

    # The retire stage indexes the table directly when it can (calling
    # back in only to extend it) — see OoOCore._flat_retire_one.
    schedule.table = table
    return schedule
