"""Commercial workload profiles (Table 2's web, OLTP, and DSS suites).

Each profile is calibrated to reproduce the *relative* character the
paper reports rather than absolute full-system statistics:

* OLTP (DB2, Oracle): random accesses over a footprint far beyond L1,
  frequent traps/membars/atomics (locking, syscalls), the highest TLB
  miss rates (Table 3: 2.5-3.3K per 1M instructions);
* Web (Apache, Zeus): similar shape, slightly milder rates;
* DSS (TPC-H Q1/Q2/Q17): Q1 is a streaming scan with few serializing
  events and the lowest TLB rate (206/1M); Q2 is join-dominated and
  random; Q17 is balanced.

Scaling note: rates are per-instruction-calibrated to the paper's Table 3
*ordering* — absolute incoherence counts in this reproduction are higher
than the paper's because simulated windows are ~1000x shorter and the
shared heap is proportionally hotter; EXPERIMENTS.md quantifies this.
"""

from __future__ import annotations

from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile

APACHE = WorkloadProfile(
    name="Apache",
    category="Web",
    footprint_bytes=16 * 1024,
    pct_load=0.24,
    pct_store=0.09,
    pct_branch=0.14,
    trap_per_k=1.4,
    membar_per_k=0.9,
    atomic_per_k=0.4,
    itlb_miss_per_k=1.0,
    shared_load_per_k=3.0,
    shared_store_per_k=0.25,
    branch_entropy=0.12,
)

ZEUS = WorkloadProfile(
    name="Zeus",
    category="Web",
    footprint_bytes=16 * 1024,
    pct_load=0.23,
    pct_store=0.08,
    pct_branch=0.13,
    trap_per_k=1.2,
    membar_per_k=0.8,
    atomic_per_k=0.3,
    itlb_miss_per_k=0.8,
    shared_load_per_k=2.5,
    shared_store_per_k=0.10,
    branch_entropy=0.10,
)

DB2_OLTP = WorkloadProfile(
    name="DB2 OLTP",
    category="OLTP",
    footprint_bytes=96 * 1024,
    pct_load=0.26,
    pct_store=0.10,
    pct_branch=0.14,
    trap_per_k=1.8,
    membar_per_k=1.4,
    atomic_per_k=0.8,
    itlb_miss_per_k=1.3,
    shared_load_per_k=4.0,
    shared_store_per_k=0.25,
    branch_entropy=0.16,
)

ORACLE_OLTP = WorkloadProfile(
    name="Oracle OLTP",
    category="OLTP",
    footprint_bytes=96 * 1024,
    pct_load=0.25,
    pct_store=0.11,
    pct_branch=0.14,
    trap_per_k=2.2,
    membar_per_k=1.6,
    atomic_per_k=1.0,
    itlb_miss_per_k=1.7,
    shared_load_per_k=4.5,
    shared_store_per_k=0.22,
    branch_entropy=0.16,
)

DB2_DSS_Q1 = WorkloadProfile(
    name="DB2 DSS Q1",
    category="DSS",
    footprint_bytes=192 * 1024,
    sequential=True,
    pct_load=0.30,
    pct_store=0.04,
    pct_branch=0.10,
    trap_per_k=0.15,
    membar_per_k=0.15,
    atomic_per_k=0.05,
    itlb_miss_per_k=0.08,
    shared_load_per_k=5.0,  # shared scan buffers: the paper's Q1 outlier
    shared_store_per_k=0.45,
    branch_entropy=0.05,
)

DB2_DSS_Q2 = WorkloadProfile(
    name="DB2 DSS Q2",
    category="DSS",
    footprint_bytes=24 * 1024,
    pct_load=0.28,
    pct_store=0.07,
    pct_branch=0.13,
    trap_per_k=0.7,
    membar_per_k=0.6,
    atomic_per_k=0.3,
    itlb_miss_per_k=0.5,
    shared_load_per_k=3.0,
    shared_store_per_k=0.20,
    branch_entropy=0.14,
)

DB2_DSS_Q17 = WorkloadProfile(
    name="DB2 DSS Q17",
    category="DSS",
    footprint_bytes=28 * 1024,
    pct_load=0.27,
    pct_store=0.08,
    pct_branch=0.13,
    trap_per_k=0.8,
    membar_per_k=0.7,
    atomic_per_k=0.4,
    itlb_miss_per_k=0.55,
    shared_load_per_k=3.0,
    shared_store_per_k=0.22,
    branch_entropy=0.14,
)

COMMERCIAL_PROFILES = [
    APACHE,
    ZEUS,
    DB2_OLTP,
    ORACLE_OLTP,
    DB2_DSS_Q1,
    DB2_DSS_Q2,
    DB2_DSS_Q17,
]


def commercial_suite() -> list[SyntheticWorkload]:
    """All seven commercial workloads, in the paper's Figure 5 order."""
    return [SyntheticWorkload(profile) for profile in COMMERCIAL_PROFILES]
