"""Architectural register file.

The register file holds the *safe state* of a core (Definition 4 of the
paper): values only enter it at retirement, after output comparison in
redundant modes.  It therefore supports cheap snapshot/restore, used by
precise-exception rollback, and wholesale copy, used by phase two of the
re-execution protocol (the vocal copies its ARF to the mute).
"""

from __future__ import annotations

from repro.isa.instructions import NUM_REGS

#: All register values are 64-bit unsigned; arithmetic wraps.
WORD_MASK = (1 << 64) - 1


class RegisterFile:
    """A bank of :data:`NUM_REGS` 64-bit registers with ``r0`` wired to zero."""

    __slots__ = ("_regs",)

    def __init__(self, values: list[int] | None = None) -> None:
        if values is None:
            self._regs = [0] * NUM_REGS
        else:
            if len(values) != NUM_REGS:
                raise ValueError(f"expected {NUM_REGS} values, got {len(values)}")
            self._regs = [v & WORD_MASK for v in values]
            self._regs[0] = 0

    def read(self, index: int) -> int:
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index != 0:
            self._regs[index] = value & WORD_MASK

    def snapshot(self) -> list[int]:
        """Return a copy of the register values (for rollback)."""
        return list(self._regs)

    def restore(self, snapshot: list[int]) -> None:
        """Restore register values from a snapshot taken earlier."""
        if len(snapshot) != NUM_REGS:
            raise ValueError("snapshot has wrong length")
        self._regs = list(snapshot)
        self._regs[0] = 0

    def copy_from(self, other: "RegisterFile") -> None:
        """Overwrite this file with ``other``'s values.

        This is the mute-register-initialization mechanism of Definition 9:
        phase two of the re-execution protocol copies the vocal ARF into
        the mute ARF.
        """
        self._regs = list(other._regs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._regs == other._regs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {i: v for i, v in enumerate(self._regs) if v}
        return f"RegisterFile({nonzero})"
