"""Programmatic program construction for workload generators.

The text assembler is convenient for humans; workload generators emit
thousands of instructions and want a fluent, label-based API instead.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program


class ProgramBuilder:
    """Builds a :class:`Program` incrementally with forward-label support."""

    def __init__(self, name: str = "program") -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []  # (instruction index, label)
        self._memory_image: dict[int, int] = {}
        self._initial_regs: dict[int, int] = {}
        self._entry: int | str = 0

    # -- structure -----------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def entry(self, label: str) -> "ProgramBuilder":
        self._entry = label
        return self

    def word(self, addr: int, value: int) -> "ProgramBuilder":
        """Place an initial memory word at byte address ``addr``."""
        self._memory_image[addr] = value
        return self

    def reg(self, index: int, value: int) -> "ProgramBuilder":
        """Set an initial architectural register value."""
        self._initial_regs[index] = value
        return self

    def emit(self, inst: Instruction, target_label: str | None = None) -> "ProgramBuilder":
        if target_label is not None:
            self._fixups.append((len(self._instructions), target_label))
        self._instructions.append(inst)
        return self

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # -- instruction helpers --------------------------------------------
    def alu(self, op: Op, rd: int, rs1: int = 0, rs2: int = 0, imm: int = 0):
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm))

    def movi(self, rd: int, imm: int):
        return self.emit(Instruction(Op.MOVI, rd=rd, imm=imm))

    def addi(self, rd: int, rs1: int, imm: int):
        return self.emit(Instruction(Op.ADDI, rd=rd, rs1=rs1, imm=imm))

    def add(self, rd: int, rs1: int, rs2: int):
        return self.emit(Instruction(Op.ADD, rd=rd, rs1=rs1, rs2=rs2))

    def load(self, rd: int, base: int, off: int = 0):
        return self.emit(Instruction(Op.LOAD, rd=rd, rs1=base, imm=off))

    def store(self, src: int, base: int, off: int = 0):
        return self.emit(Instruction(Op.STORE, rs2=src, rs1=base, imm=off))

    def atomic(self, rd: int, base: int, addend: int, off: int = 0):
        return self.emit(Instruction(Op.ATOMIC, rd=rd, rs1=base, rs2=addend, imm=off))

    def cas(self, rd: int, base: int, expect: int, new_imm: int):
        return self.emit(Instruction(Op.CAS, rd=rd, rs1=base, rs2=expect, imm=new_imm))

    def branch(self, op: Op, rs1: int, rs2: int, label: str):
        return self.emit(Instruction(op, rs1=rs1, rs2=rs2), target_label=label)

    def beq(self, rs1: int, rs2: int, label: str):
        return self.branch(Op.BEQ, rs1, rs2, label)

    def bne(self, rs1: int, rs2: int, label: str):
        return self.branch(Op.BNE, rs1, rs2, label)

    def blt(self, rs1: int, rs2: int, label: str):
        return self.branch(Op.BLT, rs1, rs2, label)

    def bge(self, rs1: int, rs2: int, label: str):
        return self.branch(Op.BGE, rs1, rs2, label)

    def jump(self, label: str):
        return self.emit(Instruction(Op.JUMP), target_label=label)

    def membar(self):
        return self.emit(Instruction(Op.MEMBAR))

    def trap(self):
        return self.emit(Instruction(Op.TRAP))

    def mmuop(self):
        return self.emit(Instruction(Op.MMUOP))

    def nop(self):
        return self.emit(Instruction(Op.NOP))

    def halt(self):
        return self.emit(Instruction(Op.HALT))

    # -- finalization ----------------------------------------------------
    def build(self) -> Program:
        instructions = list(self._instructions)
        for index, label in self._fixups:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r}")
            old = instructions[index]
            instructions[index] = Instruction(
                old.op,
                rd=old.rd,
                rs1=old.rs1,
                rs2=old.rs2,
                imm=old.imm,
                target=self._labels[label],
            )
        entry = self._entry
        if isinstance(entry, str):
            if entry not in self._labels:
                raise ValueError(f"undefined entry label {entry!r}")
            entry = self._labels[entry]
        return Program(
            instructions=instructions,
            entry=entry,
            memory_image=dict(self._memory_image),
            initial_regs=dict(self._initial_regs),
            name=self._name,
        )
