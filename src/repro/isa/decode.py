"""Pre-decoded instruction tables: the structure-of-arrays front end.

The timing model decodes each static instruction millions of times.  The
:class:`~repro.isa.instructions.Instruction` flags (PR 2) removed the
enum set-membership cost, but the hot loop still chases one attribute
per predicate per dynamic instruction.  This module decodes a
:class:`~repro.isa.program.Program` *once* into flat parallel arrays —
one int bitmask plus the register/immediate/target fields per static
instruction — so fetch and dispatch index tables instead of touching
``Instruction`` objects.

The bitmask (``F_*`` bits) is the single source of truth for the
structure-of-arrays hot loop (``REPRO_HOTLOOP=soa``, the default; see
``repro.pipeline.ooo_core``).  :func:`flags_of` derives the mask from an
``Instruction``'s own precomputed flags, so a decode row can never
disagree with the object it summarizes — ``tests/isa/test_decode.py``
pins the equivalence over every opcode and field combination.

Two bits are *dynamic*, not static properties of the opcode:

* ``F_SER`` folds in the consistency model: under sequential
  consistency every store serializes retirement (Section 5.5), so the
  mask depends on ``sc_mode`` and tables are cached per mode.
* ``F_WINDOW_END`` marks the instructions whose fetch ends a mirror
  window (memory, serializing, HALT — see ``repro.core.mirror``).

Tables are cached on the (mutable) ``Program`` instance, keyed by
``sc_mode``; every core running the same program shares one table set.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program

# -- classification bits (stable; the SoA loop tests these with `&`) --------
F_ALU = 1 << 0
F_MEM = 1 << 1
F_LOAD = 1 << 2
F_STORE = 1 << 3  # plain Op.STORE only: the store-buffer occupants.
#: Atomics (ATOMIC/CAS) also write memory (``inst.is_store`` is True for
#: them) but never enter the store buffer and always serialize — the SoA
#: loop routes them through the serializing path via F_SER, so F_STORE
#: deliberately excludes them to match the object loop's ``op is
#: Op.STORE`` checks exactly.
F_ATOMIC = 1 << 4
F_BRANCH = 1 << 5  # conditional branches only
F_JUMP = 1 << 6
F_CONTROL = 1 << 7  # branch | jump | halt
F_HALT = 1 << 8
F_SER = 1 << 9  # serializing *in this consistency mode*
F_WRITES = 1 << 10
F_IMM_FORM = 1 << 11
F_MUL = 1 << 12
F_WINDOW_END = 1 << 13  # fetching this ends a mirror window
F_NEEDS1 = 1 << 14  # dispatch must capture rs1
F_NEEDS2 = 1 << 15  # dispatch must capture rs2


def flags_of(inst: Instruction, sc_mode: bool) -> int:
    """The F_* bitmask of one instruction under one consistency mode.

    Derived from the ``Instruction``'s own precomputed flags — the same
    predicates ``_dispatch_one`` historically evaluated per dynamic
    instruction — so the mask and the object view cannot diverge.
    """
    op = inst.op
    flags = 0
    if inst.is_alu:
        flags |= F_ALU
    if inst.is_mem:
        flags |= F_MEM
    if inst.is_load:
        flags |= F_LOAD
    if op is Op.STORE:
        flags |= F_STORE
    if inst.is_atomic:
        flags |= F_ATOMIC
    if inst.is_branch:
        flags |= F_BRANCH
    if op is Op.JUMP:
        flags |= F_JUMP
    if inst.is_control:
        flags |= F_CONTROL
    if op is Op.HALT:
        flags |= F_HALT
    if inst.is_serializing or (sc_mode and inst.is_store):
        flags |= F_SER
    if inst.writes_reg:
        flags |= F_WRITES
    if inst.imm_form:
        flags |= F_IMM_FORM
    if op is Op.MUL:
        flags |= F_MUL
    if inst.is_mem or inst.is_serializing or op is Op.HALT:
        flags |= F_WINDOW_END
    # Operand-capture predicates, verbatim from the dispatch stage.
    if inst.rs1 != 0 and (inst.is_alu or inst.is_mem or inst.is_branch):
        flags |= F_NEEDS1
    if inst.rs2 != 0 and (
        (inst.is_alu and not inst.imm_form)
        or inst.is_branch
        or op is Op.STORE
        or op is Op.ATOMIC
        or op is Op.CAS
    ):
        flags |= F_NEEDS2
    return flags


class DecodedProgram:
    """Flat parallel arrays over a program's static instructions.

    Row ``pc`` (for ``0 <= pc < n``) describes ``instructions[pc]``; row
    ``n`` is the out-of-range HALT that :meth:`Program.fetch` substitutes
    for wild PCs, so ``row = pc if 0 <= pc < n else n`` is branch-cheap
    and total.  All arrays are plain Python lists of ints (or
    ``Instruction`` references in :attr:`inst`): list indexing beats
    numpy scalar access for single-row reads, and the hot loop reads one
    row at a time.
    """

    __slots__ = (
        "n", "flags", "rs1", "rs2", "rd", "imm", "target", "inst",
        "kern", "btake",
    )

    def __init__(self, program: Program, sc_mode: bool) -> None:
        from repro.isa.semantics import ALU_KERNELS, BRANCH_KERNELS

        rows = list(program.instructions)
        rows.append(program.fetch(len(rows)))  # the out-of-range HALT
        self.n = len(rows) - 1
        self.flags = [flags_of(inst, sc_mode) for inst in rows]
        self.rs1 = [inst.rs1 for inst in rows]
        self.rs2 = [inst.rs2 for inst in rows]
        self.rd = [inst.rd for inst in rows]
        self.imm = [inst.imm for inst in rows]
        self.target = [inst.target for inst in rows]
        self.inst = rows
        # Pre-bound execute kernels (see repro.isa.semantics): one
        # ``kernel(a, b)`` closure per ALU row with the immediate baked
        # in, one shared resolver per branch row; None elsewhere.
        self.kern = [
            ALU_KERNELS[inst.op](inst.imm) if inst.is_alu else None
            for inst in rows
        ]
        self.btake = [BRANCH_KERNELS.get(inst.op) for inst in rows]


def decode_program(program: Program, sc_mode: bool) -> DecodedProgram:
    """Return the (cached) decoded tables for ``program`` under ``sc_mode``.

    The cache lives on the ``Program`` instance itself, so all cores of
    a system — and repeated systems over the same program object — share
    one table set per consistency mode.
    """
    cache = getattr(program, "_decoded_cache", None)
    if cache is None:
        cache = {}
        program._decoded_cache = cache  # type: ignore[attr-defined]
    decoded = cache.get(sc_mode)
    if decoded is None:
        decoded = DecodedProgram(program, sc_mode)
        cache[sc_mode] = decoded
    return decoded
