"""Program container: code, entry point, and an initial memory image."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import WORD_MASK


@dataclass
class Program:
    """A static program plus the data it runs over.

    Attributes
    ----------
    instructions:
        The code, indexed by instruction index (the program counter).
    entry:
        Instruction index at which execution starts.
    memory_image:
        Initial contents of main memory: word-aligned byte address -> value.
        Cores in a system share one memory, so images from the programs of
        all cores are merged when the system is built (later images win on
        conflicts, which workloads avoid by construction).
    initial_regs:
        Optional initial architectural register values (index -> value).
    name:
        Human-readable label used in statistics and reports.
    """

    instructions: list[Instruction]
    entry: int = 0
    memory_image: dict[int, int] = field(default_factory=dict)
    initial_regs: dict[int, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("program has no instructions")
        if not 0 <= self.entry < len(self.instructions):
            raise ValueError(f"entry {self.entry} out of range")
        for index, inst in enumerate(self.instructions):
            if inst.is_control and inst.op is not Op.HALT:
                if not 0 <= inst.target < len(self.instructions):
                    raise ValueError(
                        f"instruction {index} ({inst}) targets {inst.target}, "
                        f"outside program of length {len(self.instructions)}"
                    )
        for addr in self.memory_image:
            if addr % 8:
                raise ValueError(f"memory image address {addr:#x} not word aligned")
        self.memory_image = {
            addr: value & WORD_MASK for addr, value in self.memory_image.items()
        }

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at ``pc``.

        A PC that runs past the end of the program (e.g. a mute core sent
        down a wild path by input incoherence) sees a HALT rather than an
        exception, so the checking machinery — not the simulator — catches
        the divergence.
        """
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return _OUT_OF_RANGE_HALT


_OUT_OF_RANGE_HALT = Instruction(Op.HALT)
