"""Toy RISC ISA: instructions, registers, semantics, assembler, programs."""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import NUM_REGS, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import WORD_MASK, RegisterFile

__all__ = [
    "AssemblerError",
    "Instruction",
    "NUM_REGS",
    "Op",
    "Program",
    "ProgramBuilder",
    "RegisterFile",
    "WORD_MASK",
    "assemble",
]
