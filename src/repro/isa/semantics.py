"""Value-accurate execution semantics for the toy ISA.

These helpers are *pure*: the out-of-order timing model calls them at
execute time with whatever operand values it has in hand (forwarded from
the ROB, read from the ARF, or returned by the memory system).  Keeping
semantics value-accurate — rather than statistically modelled — is what
lets input incoherence in this reproduction be a *real* event: a mute core
that loads a stale value computes genuinely different results, takes
genuinely different branches, and produces a genuinely different
fingerprint, exactly as in Figure 1 of the paper.
"""

from __future__ import annotations

from repro.isa.opcodes import Op
from repro.isa.registers import WORD_MASK

#: Sign bit used for signed comparisons on 64-bit values.
_SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    value &= WORD_MASK
    return value - (1 << 64) if value & _SIGN_BIT else value


def alu_result(op: Op, a: int, b: int, imm: int) -> int:
    """Compute the result of an ALU operation.

    ``a`` is the rs1 value, ``b`` the rs2 value; immediate forms ignore
    ``b``.  All arithmetic wraps at 64 bits.
    """
    if op is Op.ADD:
        return (a + b) & WORD_MASK
    if op is Op.SUB:
        return (a - b) & WORD_MASK
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    if op is Op.SLL:
        return (a << (b & 63)) & WORD_MASK
    if op is Op.SRL:
        return (a >> (b & 63)) & WORD_MASK
    if op is Op.MUL:
        return (a * b) & WORD_MASK
    if op is Op.SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Op.ADDI:
        return (a + imm) & WORD_MASK
    if op is Op.ANDI:
        return a & (imm & WORD_MASK)
    if op is Op.ORI:
        return a | (imm & WORD_MASK)
    if op is Op.XORI:
        return a ^ (imm & WORD_MASK)
    if op is Op.MOVI:
        return imm & WORD_MASK
    raise ValueError(f"{op} is not an ALU operation")


def _slt(a: int, b: int) -> int:
    return 1 if to_signed(a) < to_signed(b) else 0


#: Per-op ALU kernel factories: ``factory(imm) -> kernel(a, b)``.  Each
#: kernel is bit-identical to :func:`alu_result` for its op (pinned by
#: tests/isa/test_decode.py) but skips the op-dispatch chain and the
#: ``Instruction`` attribute loads — the decode tables bind one closure
#: per static instruction so execute is a single indirect call.
ALU_KERNELS = {
    Op.ADD: lambda imm: lambda a, b: (a + b) & WORD_MASK,
    Op.SUB: lambda imm: lambda a, b: (a - b) & WORD_MASK,
    Op.AND: lambda imm: lambda a, b: a & b,
    Op.OR: lambda imm: lambda a, b: a | b,
    Op.XOR: lambda imm: lambda a, b: a ^ b,
    Op.SLL: lambda imm: lambda a, b: (a << (b & 63)) & WORD_MASK,
    Op.SRL: lambda imm: lambda a, b: (a >> (b & 63)) & WORD_MASK,
    Op.MUL: lambda imm: lambda a, b: (a * b) & WORD_MASK,
    Op.SLT: lambda imm: _slt,
    Op.ADDI: lambda imm: lambda a, b, _i=imm: (a + _i) & WORD_MASK,
    Op.ANDI: lambda imm: lambda a, b, _i=imm & WORD_MASK: a & _i,
    Op.ORI: lambda imm: lambda a, b, _i=imm & WORD_MASK: a | _i,
    Op.XORI: lambda imm: lambda a, b, _i=imm & WORD_MASK: a ^ _i,
    Op.MOVI: lambda imm: lambda a, b, _v=imm & WORD_MASK: _v,
}

#: Per-op branch-resolution kernels, bit-identical to :func:`branch_taken`.
BRANCH_KERNELS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Op.BGE: lambda a, b: to_signed(a) >= to_signed(b),
}


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Resolve a conditional branch on real operand values."""
    if op is Op.BEQ:
        return a == b
    if op is Op.BNE:
        return a != b
    if op is Op.BLT:
        return to_signed(a) < to_signed(b)
    if op is Op.BGE:
        return to_signed(a) >= to_signed(b)
    raise ValueError(f"{op} is not a conditional branch")


def effective_address(rs1_value: int, imm: int) -> int:
    """Compute a memory operand's effective byte address (word aligned)."""
    return ((rs1_value + imm) & WORD_MASK) & ~0x7


def atomic_result(op: Op, old: int, rs2_value: int, imm: int) -> tuple[int, int | None]:
    """Compute an atomic read-modify-write.

    Returns ``(rd_value, new_memory_value)``; ``new_memory_value`` is
    ``None`` when the atomic does not write (failed CAS).

    * ``ATOMIC`` is fetch-and-add: rd gets the old value, memory gets
      ``old + rs2``.
    * ``CAS`` compares memory against rs2 and stores ``imm`` on success;
      rd always gets the old value.
    """
    if op is Op.ATOMIC:
        return old, (old + rs2_value) & WORD_MASK
    if op is Op.CAS:
        if old == (rs2_value & WORD_MASK):
            return old, imm & WORD_MASK
        return old, None
    raise ValueError(f"{op} is not an atomic operation")
