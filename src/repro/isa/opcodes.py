"""Opcode definitions for the toy RISC ISA used by the Reunion reproduction.

The paper evaluates Reunion on UltraSPARC III binaries under full-system
simulation.  This reproduction substitutes a small, regular RISC ISA that
keeps the features the evaluation actually exercises:

* ALU operations (register-register and register-immediate),
* word loads and stores through the cache hierarchy,
* conditional branches resolved on real register values (so input
  incoherence can redirect control flow, as in Figure 1 of the paper),
* the full set of *serializing* instructions the paper calls out in
  Section 4.4: traps, memory barriers, atomic memory operations, and
  non-idempotent memory accesses (modelled as MMU operations, matching the
  UltraSPARC III software TLB-miss handler).
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Operation codes of the toy ISA.

    Members carry no behaviour; classification helpers live in
    :mod:`repro.isa.instructions` and execution semantics in
    :mod:`repro.isa.semantics`.
    """

    # ALU, register-register.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"  # shift left logical
    SRL = "srl"  # shift right logical
    MUL = "mul"
    SLT = "slt"  # set if less-than (signed)

    # ALU, register-immediate.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    MOVI = "movi"  # rd <- imm

    # Memory operations (word-granular, through the cache hierarchy).
    LOAD = "load"  # rd <- M[rs1 + imm]
    STORE = "store"  # M[rs1 + imm] <- rs2
    ATOMIC = "atomic"  # rd <- M[rs1 + imm]; M[rs1 + imm] <- rd + rs2 (fetch-add)
    CAS = "cas"  # compare-and-swap: if M[a]==rs2 then M[a]<-imm; rd<-old

    # Control flow.  Targets are instruction indices.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JUMP = "jump"
    HALT = "halt"

    # Serializing, non-memory.
    MEMBAR = "membar"  # memory barrier
    TRAP = "trap"  # system trap (e.g. TLB handler entry/exit)
    MMUOP = "mmuop"  # non-idempotent access to the MMU (uncacheable)

    NOP = "nop"


#: ALU operations taking two register sources.
REG_REG_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.MUL, Op.SLT}
)

#: ALU operations taking one register source and an immediate.
REG_IMM_OPS = frozenset({Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.MOVI})

#: Conditional branches (compare rs1 against rs2).
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})

#: Memory operations that read from the memory system.
MEM_READ_OPS = frozenset({Op.LOAD, Op.ATOMIC, Op.CAS})

#: Memory operations that write to the memory system.
MEM_WRITE_OPS = frozenset({Op.STORE, Op.ATOMIC, Op.CAS})

#: Instructions with serializing semantics (Section 4.4 of the paper):
#: they stall retirement for a full comparison latency in any redundant
#: checking microarchitecture.
SERIALIZING_OPS = frozenset({Op.TRAP, Op.MEMBAR, Op.ATOMIC, Op.CAS, Op.MMUOP})
