"""A small two-pass text assembler for the toy ISA.

The assembler exists for tests, examples, and hand-written kernels (e.g.
the spin-lock from the paper's motivating example).  Workload generators
use the programmatic :class:`repro.isa.builder.ProgramBuilder` instead.

Syntax (one instruction per line, ``;`` or ``#`` start comments)::

    .entry start          ; optional, defaults to first instruction
    .word 0x1000 42       ; initialize memory word at byte address 0x1000
    .reg r5 0x1000        ; initial register value

    start:
        movi  r1, 0x1000
        load  r2, [r1+8]
        store r2, [r1]
        add   r3, r1, r2
        addi  r3, r3, 4
        slt   r4, r2, r3
        beq   r2, r0, done
        atomic r4, [r1+0], r5
        cas   r4, [r1], r2, 7
        membar
        trap
        mmuop
        jump  start
    done:
        halt
"""

from __future__ import annotations

import re

from repro.isa.instructions import NUM_REGS, Instruction
from repro.isa.opcodes import BRANCH_OPS, REG_IMM_OPS, REG_REG_OPS, Op
from repro.isa.program import Program


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with the offending line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_OPERAND_RE = re.compile(r"^\[\s*(r\d+)\s*(?:([+-])\s*(\w+)\s*)?\]$")

_MNEMONICS = {op.value: op for op in Op}


def _parse_reg(token: str, line_no: int) -> int:
    if not token.startswith("r"):
        raise AssemblerError(line_no, f"expected register, got {token!r}")
    try:
        index = int(token[1:])
    except ValueError:
        raise AssemblerError(line_no, f"bad register {token!r}") from None
    if not 0 <= index < NUM_REGS:
        raise AssemblerError(line_no, f"register {token!r} out of range")
    return index


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(line_no, f"expected integer, got {token!r}") from None


def _parse_mem(token: str, line_no: int) -> tuple[int, int]:
    """Parse a ``[rN+imm]`` operand into (rs1, imm)."""
    match = _MEM_OPERAND_RE.match(token)
    if not match:
        raise AssemblerError(line_no, f"bad memory operand {token!r}")
    base = _parse_reg(match.group(1), line_no)
    imm = 0
    if match.group(3) is not None:
        imm = _parse_int(match.group(3), line_no)
        if match.group(2) == "-":
            imm = -imm
    return base, imm


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    lines = source.splitlines()

    # Pass 1: strip comments, collect labels and directives, count instrs.
    labels: dict[str, int] = {}
    entry_label: str | None = None
    memory_image: dict[int, int] = {}
    initial_regs: dict[int, int] = {}
    parsed: list[tuple[int, str, str]] = []  # (line_no, mnemonic, rest)

    index = 0
    for line_no, raw in enumerate(lines, start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise AssemblerError(line_no, f"duplicate label {label!r}")
            labels[label] = index
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".entry":
                if len(parts) != 2:
                    raise AssemblerError(line_no, ".entry takes one label")
                entry_label = parts[1]
            elif directive == ".word":
                if len(parts) != 3:
                    raise AssemblerError(line_no, ".word takes address and value")
                memory_image[_parse_int(parts[1], line_no)] = _parse_int(
                    parts[2], line_no
                )
            elif directive == ".reg":
                if len(parts) != 3:
                    raise AssemblerError(line_no, ".reg takes register and value")
                initial_regs[_parse_reg(parts[1], line_no)] = _parse_int(
                    parts[2], line_no
                )
            else:
                raise AssemblerError(line_no, f"unknown directive {directive!r}")
            continue
        mnemonic, _, rest = line.partition(" ")
        if mnemonic not in _MNEMONICS:
            raise AssemblerError(line_no, f"unknown mnemonic {mnemonic!r}")
        parsed.append((line_no, mnemonic, rest))
        index += 1

    # Pass 2: encode instructions with resolved targets.
    def resolve(token: str, line_no: int) -> int:
        if token in labels:
            return labels[token]
        return _parse_int(token, line_no)

    instructions: list[Instruction] = []
    for line_no, mnemonic, rest in parsed:
        op = _MNEMONICS[mnemonic]
        ops = _split_operands(rest)
        try:
            instructions.append(_encode(op, ops, line_no, resolve))
        except AssemblerError:
            raise
        except (ValueError, IndexError) as exc:
            raise AssemblerError(line_no, str(exc)) from exc

    if not instructions:
        raise AssemblerError(0, "no instructions")
    entry = 0
    if entry_label is not None:
        if entry_label not in labels:
            raise AssemblerError(0, f"unknown entry label {entry_label!r}")
        entry = labels[entry_label]
    return Program(
        instructions=instructions,
        entry=entry,
        memory_image=memory_image,
        initial_regs=initial_regs,
        name=name,
    )


def _encode(op: Op, ops: list[str], line_no: int, resolve) -> Instruction:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblerError(
                line_no, f"{op.value} expects {count} operands, got {len(ops)}"
            )

    if op in REG_REG_OPS:
        need(3)
        return Instruction(
            op,
            rd=_parse_reg(ops[0], line_no),
            rs1=_parse_reg(ops[1], line_no),
            rs2=_parse_reg(ops[2], line_no),
        )
    if op is Op.MOVI:
        need(2)
        return Instruction(op, rd=_parse_reg(ops[0], line_no), imm=_parse_int(ops[1], line_no))
    if op in REG_IMM_OPS:
        need(3)
        return Instruction(
            op,
            rd=_parse_reg(ops[0], line_no),
            rs1=_parse_reg(ops[1], line_no),
            imm=_parse_int(ops[2], line_no),
        )
    if op is Op.LOAD:
        need(2)
        base, imm = _parse_mem(ops[1], line_no)
        return Instruction(op, rd=_parse_reg(ops[0], line_no), rs1=base, imm=imm)
    if op is Op.STORE:
        need(2)
        base, imm = _parse_mem(ops[1], line_no)
        return Instruction(op, rs2=_parse_reg(ops[0], line_no), rs1=base, imm=imm)
    if op is Op.ATOMIC:
        need(3)
        base, imm = _parse_mem(ops[1], line_no)
        return Instruction(
            op,
            rd=_parse_reg(ops[0], line_no),
            rs1=base,
            imm=imm,
            rs2=_parse_reg(ops[2], line_no),
        )
    if op is Op.CAS:
        need(4)
        base, imm = _parse_mem(ops[1], line_no)
        if imm:
            raise AssemblerError(line_no, "cas address must have no offset")
        return Instruction(
            op,
            rd=_parse_reg(ops[0], line_no),
            rs1=base,
            rs2=_parse_reg(ops[2], line_no),
            imm=_parse_int(ops[3], line_no),
        )
    if op in BRANCH_OPS:
        need(3)
        return Instruction(
            op,
            rs1=_parse_reg(ops[0], line_no),
            rs2=_parse_reg(ops[1], line_no),
            target=resolve(ops[2], line_no),
        )
    if op is Op.JUMP:
        need(1)
        return Instruction(op, target=resolve(ops[0], line_no))
    # Zero-operand instructions.
    need(0)
    return Instruction(op)
