"""Instruction representation for the toy ISA.

Instructions are immutable records.  The timing model (``repro.pipeline``)
annotates *dynamic* instances separately; the static instruction never
changes, so one :class:`Instruction` object can be shared by both cores of
a logical processor pair and by every dynamic execution of a loop body.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import (
    BRANCH_OPS,
    MEM_READ_OPS,
    MEM_WRITE_OPS,
    REG_IMM_OPS,
    REG_REG_OPS,
    SERIALIZING_OPS,
    Op,
)

#: Number of architectural integer registers.  ``r0`` is hard-wired to zero,
#: as in SPARC/MIPS.
NUM_REGS = 32


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single static instruction.

    Fields not used by a given opcode are left at zero.  Memory operands
    compute their effective address as ``R[rs1] + imm`` (byte address,
    word aligned).  Branch/jump targets are absolute instruction indices
    into the program, resolved by the assembler.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"{name}={reg} out of range [0, {NUM_REGS})")

    # -- classification ------------------------------------------------
    @property
    def is_alu(self) -> bool:
        return self.op in REG_REG_OPS or self.op in REG_IMM_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_READ_OPS or self.op in MEM_WRITE_OPS

    @property
    def is_load(self) -> bool:
        return self.op in MEM_READ_OPS

    @property
    def is_store(self) -> bool:
        return self.op in MEM_WRITE_OPS

    @property
    def is_atomic(self) -> bool:
        return self.op in (Op.ATOMIC, Op.CAS)

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        return self.op in BRANCH_OPS or self.op in (Op.JUMP, Op.HALT)

    @property
    def is_serializing(self) -> bool:
        """True for traps, membars, atomics and non-idempotent accesses.

        These are the instructions that Section 4.4 of the paper shows
        stall retirement for a full comparison latency under any
        redundant-execution checking scheme.
        """
        return self.op in SERIALIZING_OPS

    @property
    def writes_reg(self) -> bool:
        """True when the instruction produces an architectural register value."""
        if self.op in REG_REG_OPS or self.op in REG_IMM_OPS:
            return self.rd != 0
        if self.op in (Op.LOAD, Op.ATOMIC, Op.CAS):
            return self.rd != 0
        return False

    @property
    def reads(self) -> tuple[int, ...]:
        """Architectural source registers (excluding the hard-wired r0)."""
        op = self.op
        if op in REG_REG_OPS:
            srcs: tuple[int, ...] = (self.rs1, self.rs2)
        elif op in REG_IMM_OPS:
            srcs = () if op is Op.MOVI else (self.rs1,)
        elif op is Op.LOAD:
            srcs = (self.rs1,)
        elif op is Op.STORE:
            srcs = (self.rs1, self.rs2)
        elif op in (Op.ATOMIC, Op.CAS):
            srcs = (self.rs1, self.rs2)
        elif op in BRANCH_OPS:
            srcs = (self.rs1, self.rs2)
        else:
            srcs = ()
        return tuple(s for s in srcs if s != 0)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.op
        if op in REG_REG_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op is Op.MOVI:
            return f"movi r{self.rd}, {self.imm}"
        if op in REG_IMM_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, {self.imm}"
        if op is Op.LOAD:
            return f"load r{self.rd}, [r{self.rs1}+{self.imm}]"
        if op is Op.STORE:
            return f"store r{self.rs2}, [r{self.rs1}+{self.imm}]"
        if op is Op.ATOMIC:
            return f"atomic r{self.rd}, [r{self.rs1}+{self.imm}], r{self.rs2}"
        if op is Op.CAS:
            return f"cas r{self.rd}, [r{self.rs1}], r{self.rs2}, {self.imm}"
        if op in BRANCH_OPS:
            return f"{op.value} r{self.rs1}, r{self.rs2}, @{self.target}"
        if op is Op.JUMP:
            return f"jump @{self.target}"
        return op.value
