"""Instruction representation for the toy ISA.

Instructions are immutable records.  The timing model (``repro.pipeline``)
annotates *dynamic* instances separately; the static instruction never
changes, so one :class:`Instruction` object can be shared by both cores of
a logical processor pair and by every dynamic execution of a loop body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    BRANCH_OPS,
    MEM_READ_OPS,
    MEM_WRITE_OPS,
    REG_IMM_OPS,
    REG_REG_OPS,
    SERIALIZING_OPS,
    Op,
)

#: Number of architectural integer registers.  ``r0`` is hard-wired to zero,
#: as in SPARC/MIPS.
NUM_REGS = 32

#: Register-immediate ALU forms (the ops whose rs2 field is unused).
_IMM_FORM_OPS = frozenset({Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.MOVI})


def _op_traits(op: Op) -> tuple:
    """Classification tuple for one opcode, in ``__post_init__`` order.

    Every flag except ``writes_reg`` is a pure function of the opcode, and
    ``writes_reg`` depends only on the opcode and ``rd != 0`` — so the whole
    set-membership battery runs once per opcode, not once per constructed
    instruction (program generation builds tens of thousands of them).
    The final element is ``writes_reg`` assuming a nonzero ``rd``.
    """
    is_alu = op in REG_REG_OPS or op in REG_IMM_OPS
    return (
        is_alu,
        op in MEM_READ_OPS or op in MEM_WRITE_OPS,  # is_mem
        op in MEM_READ_OPS,  # is_load
        op in MEM_WRITE_OPS,  # is_store
        op is Op.ATOMIC or op is Op.CAS,  # is_atomic
        op in BRANCH_OPS,  # is_branch
        op in BRANCH_OPS or op is Op.JUMP or op is Op.HALT,  # is_control
        # Serializing ops (Section 4.4 of the paper): traps, membars,
        # atomics and non-idempotent accesses stall retirement for a full
        # comparison latency in any redundant checking microarchitecture.
        op in SERIALIZING_OPS,  # is_serializing
        op in _IMM_FORM_OPS,  # imm_form
        is_alu or op is Op.LOAD or op is Op.ATOMIC or op is Op.CAS,  # can write
    )


_TRAITS: dict[Op, tuple] = {op: _op_traits(op) for op in Op}


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single static instruction.

    Fields not used by a given opcode are left at zero.  Memory operands
    compute their effective address as ``R[rs1] + imm`` (byte address,
    word aligned).  Branch/jump targets are absolute instruction indices
    into the program, resolved by the assembler.

    Classification flags (``is_alu`` and friends) are plain attributes
    precomputed once at construction: one static instruction is decoded
    millions of times by the timing model, and set-membership tests on
    enum members were a measured hot spot.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    # -- precomputed classification (derived; excluded from eq/repr) ----
    is_alu: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_atomic: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_control: bool = field(init=False, repr=False, compare=False)
    is_serializing: bool = field(init=False, repr=False, compare=False)
    writes_reg: bool = field(init=False, repr=False, compare=False)
    imm_form: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        rd = self.rd
        if not (0 <= rd < NUM_REGS and 0 <= self.rs1 < NUM_REGS and 0 <= self.rs2 < NUM_REGS):
            for name in ("rd", "rs1", "rs2"):
                reg = getattr(self, name)
                if not 0 <= reg < NUM_REGS:
                    raise ValueError(f"{name}={reg} out of range [0, {NUM_REGS})")
        traits = _TRAITS[self.op]
        set_attr = object.__setattr__  # frozen dataclass: derived fields
        set_attr(self, "is_alu", traits[0])
        set_attr(self, "is_mem", traits[1])
        set_attr(self, "is_load", traits[2])
        set_attr(self, "is_store", traits[3])
        set_attr(self, "is_atomic", traits[4])
        set_attr(self, "is_branch", traits[5])
        set_attr(self, "is_control", traits[6])
        set_attr(self, "is_serializing", traits[7])
        set_attr(self, "imm_form", traits[8])
        set_attr(self, "writes_reg", rd != 0 and traits[9])

    @property
    def reads(self) -> tuple[int, ...]:
        """Architectural source registers (excluding the hard-wired r0)."""
        op = self.op
        if op in REG_REG_OPS:
            srcs: tuple[int, ...] = (self.rs1, self.rs2)
        elif op in REG_IMM_OPS:
            srcs = () if op is Op.MOVI else (self.rs1,)
        elif op is Op.LOAD:
            srcs = (self.rs1,)
        elif op is Op.STORE:
            srcs = (self.rs1, self.rs2)
        elif op in (Op.ATOMIC, Op.CAS):
            srcs = (self.rs1, self.rs2)
        elif op in BRANCH_OPS:
            srcs = (self.rs1, self.rs2)
        else:
            srcs = ()
        return tuple(s for s in srcs if s != 0)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.op
        if op in REG_REG_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op is Op.MOVI:
            return f"movi r{self.rd}, {self.imm}"
        if op in REG_IMM_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, {self.imm}"
        if op is Op.LOAD:
            return f"load r{self.rd}, [r{self.rs1}+{self.imm}]"
        if op is Op.STORE:
            return f"store r{self.rs2}, [r{self.rs1}+{self.imm}]"
        if op is Op.ATOMIC:
            return f"atomic r{self.rd}, [r{self.rs1}+{self.imm}], r{self.rs2}"
        if op is Op.CAS:
            return f"cas r{self.rd}, [r{self.rs1}], r{self.rs2}, {self.imm}"
        if op in BRANCH_OPS:
            return f"{op.value} r{self.rs1}, r{self.rs2}, @{self.target}"
        if op is Op.JUMP:
            return f"jump @{self.target}"
        return op.value
