"""Instruction representation for the toy ISA.

Instructions are immutable records.  The timing model (``repro.pipeline``)
annotates *dynamic* instances separately; the static instruction never
changes, so one :class:`Instruction` object can be shared by both cores of
a logical processor pair and by every dynamic execution of a loop body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import (
    BRANCH_OPS,
    MEM_READ_OPS,
    MEM_WRITE_OPS,
    REG_IMM_OPS,
    REG_REG_OPS,
    SERIALIZING_OPS,
    Op,
)

#: Number of architectural integer registers.  ``r0`` is hard-wired to zero,
#: as in SPARC/MIPS.
NUM_REGS = 32

#: Register-immediate ALU forms (the ops whose rs2 field is unused).
_IMM_FORM_OPS = frozenset({Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.MOVI})


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single static instruction.

    Fields not used by a given opcode are left at zero.  Memory operands
    compute their effective address as ``R[rs1] + imm`` (byte address,
    word aligned).  Branch/jump targets are absolute instruction indices
    into the program, resolved by the assembler.

    Classification flags (``is_alu`` and friends) are plain attributes
    precomputed once at construction: one static instruction is decoded
    millions of times by the timing model, and set-membership tests on
    enum members were a measured hot spot.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    # -- precomputed classification (derived; excluded from eq/repr) ----
    is_alu: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_atomic: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_control: bool = field(init=False, repr=False, compare=False)
    is_serializing: bool = field(init=False, repr=False, compare=False)
    writes_reg: bool = field(init=False, repr=False, compare=False)
    imm_form: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"{name}={reg} out of range [0, {NUM_REGS})")
        op = self.op
        set_attr = object.__setattr__  # frozen dataclass: derived fields
        is_alu = op in REG_REG_OPS or op in REG_IMM_OPS
        set_attr(self, "is_alu", is_alu)
        set_attr(self, "is_mem", op in MEM_READ_OPS or op in MEM_WRITE_OPS)
        set_attr(self, "is_load", op in MEM_READ_OPS)
        set_attr(self, "is_store", op in MEM_WRITE_OPS)
        set_attr(self, "is_atomic", op is Op.ATOMIC or op is Op.CAS)
        set_attr(self, "is_branch", op in BRANCH_OPS)
        set_attr(
            self, "is_control", op in BRANCH_OPS or op is Op.JUMP or op is Op.HALT
        )
        # Serializing ops (Section 4.4 of the paper): traps, membars,
        # atomics and non-idempotent accesses stall retirement for a full
        # comparison latency in any redundant checking microarchitecture.
        set_attr(self, "is_serializing", op in SERIALIZING_OPS)
        set_attr(
            self,
            "writes_reg",
            self.rd != 0
            and (is_alu or op is Op.LOAD or op is Op.ATOMIC or op is Op.CAS),
        )
        set_attr(self, "imm_form", op in _IMM_FORM_OPS)

    @property
    def reads(self) -> tuple[int, ...]:
        """Architectural source registers (excluding the hard-wired r0)."""
        op = self.op
        if op in REG_REG_OPS:
            srcs: tuple[int, ...] = (self.rs1, self.rs2)
        elif op in REG_IMM_OPS:
            srcs = () if op is Op.MOVI else (self.rs1,)
        elif op is Op.LOAD:
            srcs = (self.rs1,)
        elif op is Op.STORE:
            srcs = (self.rs1, self.rs2)
        elif op in (Op.ATOMIC, Op.CAS):
            srcs = (self.rs1, self.rs2)
        elif op in BRANCH_OPS:
            srcs = (self.rs1, self.rs2)
        else:
            srcs = ()
        return tuple(s for s in srcs if s != 0)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.op
        if op in REG_REG_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op is Op.MOVI:
            return f"movi r{self.rd}, {self.imm}"
        if op in REG_IMM_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, {self.imm}"
        if op is Op.LOAD:
            return f"load r{self.rd}, [r{self.rs1}+{self.imm}]"
        if op is Op.STORE:
            return f"store r{self.rs2}, [r{self.rs1}+{self.imm}]"
        if op is Op.ATOMIC:
            return f"atomic r{self.rd}, [r{self.rs1}+{self.imm}], r{self.rs2}"
        if op is Op.CAS:
            return f"cas r{self.rd}, [r{self.rs1}], r{self.rs2}, {self.imm}"
        if op in BRANCH_OPS:
            return f"{op.value} r{self.rs1}, r{self.rs2}, @{self.target}"
        if op is Op.JUMP:
            return f"jump @{self.target}"
        return op.value
