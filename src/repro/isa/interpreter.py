"""A simple in-order functional interpreter for the toy ISA.

The interpreter is the *golden model*: single-core programs executed by
the out-of-order timing simulator must produce exactly the same
architectural state.  Tests use it for differential testing of the
pipeline, and workload generators use it to sanity-check emitted kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import RegisterFile
from repro.isa.semantics import (
    alu_result,
    atomic_result,
    branch_taken,
    effective_address,
)


@dataclass
class InterpreterResult:
    """Final architectural state after functional execution."""

    registers: RegisterFile
    memory: dict[int, int]
    retired: int
    halted: bool
    pc: int
    trap_count: int = 0
    membar_count: int = 0
    load_count: int = 0
    store_count: int = 0
    trace: list[int] = field(default_factory=list)


def run(
    program: Program,
    max_instructions: int = 1_000_000,
    memory: dict[int, int] | None = None,
    collect_trace: bool = False,
) -> InterpreterResult:
    """Execute ``program`` functionally and return the final state.

    ``memory`` lets callers share a memory image across sequential runs;
    the program's own image is applied on top of it.
    """
    regs = RegisterFile()
    for index, value in program.initial_regs.items():
        regs.write(index, value)
    mem: dict[int, int] = dict(memory) if memory else {}
    mem.update(program.memory_image)

    pc = program.entry
    retired = 0
    halted = False
    traps = membars = loads = stores = 0
    trace: list[int] = []

    while retired < max_instructions:
        inst = program.fetch(pc)
        if collect_trace:
            trace.append(pc)
        next_pc = pc + 1
        op = inst.op

        if inst.is_alu:
            regs.write(inst.rd, alu_result(op, regs.read(inst.rs1), regs.read(inst.rs2), inst.imm))
        elif op is Op.LOAD:
            addr = effective_address(regs.read(inst.rs1), inst.imm)
            regs.write(inst.rd, mem.get(addr, 0))
            loads += 1
        elif op is Op.STORE:
            addr = effective_address(regs.read(inst.rs1), inst.imm)
            mem[addr] = regs.read(inst.rs2)
            stores += 1
        elif op in (Op.ATOMIC, Op.CAS):
            addr = effective_address(regs.read(inst.rs1), inst.imm)
            old = mem.get(addr, 0)
            rd_value, new = atomic_result(op, old, regs.read(inst.rs2), inst.imm)
            regs.write(inst.rd, rd_value)
            if new is not None:
                mem[addr] = new
            loads += 1
            stores += 1
        elif inst.is_branch:
            if branch_taken(op, regs.read(inst.rs1), regs.read(inst.rs2)):
                next_pc = inst.target
        elif op is Op.JUMP:
            next_pc = inst.target
        elif op is Op.HALT:
            halted = True
            retired += 1
            break
        elif op is Op.TRAP:
            traps += 1
        elif op is Op.MEMBAR:
            membars += 1
        elif op in (Op.MMUOP, Op.NOP):
            pass
        else:  # pragma: no cover - exhaustive over Op
            raise NotImplementedError(op)

        retired += 1
        pc = next_pc

    return InterpreterResult(
        registers=regs,
        memory=mem,
        retired=retired,
        halted=halted,
        pc=pc,
        trap_count=traps,
        membar_count=membars,
        load_count=loads,
        store_count=stores,
        trace=trace,
    )
