"""Pluggable storage backends behind :class:`~repro.exec.cache.ResultCache`.

The cache's *semantics* — content-hash keys, schema-gated records,
corrupt-reads-as-misses, write-through persistence — live in
:class:`~repro.exec.cache.ResultCache`.  The *storage* lives here, behind
the small :class:`CacheBackend` protocol, so one cache layer can sit on
either of two layouts:

* :class:`JsonShardBackend` — the original one-JSON-file-per-record
  layout (``<root>/<key[:2]>/<key>.json``, atomic temp-file +
  ``os.replace`` writes).  Byte-identical to the pre-backend cache, so
  every legacy ``.repro-cache/`` directory keeps working without a
  ``SCHEMA_VERSION`` bump.
* :class:`SqliteBackend` — a single ``cache.sqlite`` file per store in
  WAL mode, safe for many concurrent reader/writer *processes* (the
  experiment-service regime: one daemon plus any number of direct CLI
  clients hammering the same store).  Connections are opened lazily and
  re-opened after ``fork`` — a sqlite connection must never cross a
  process boundary.

Selection: ``REPRO_CACHE_BACKEND=json|sqlite`` (default ``json``), or
explicitly via ``ResultCache(root, backend=...)``.  Both backends store
the *same* record dicts under the *same* keys, so they are semantically
interchangeable; only the bytes-on-disk layout differs.

The protocol also carries the maintenance surface ``repro cache`` needs:
:meth:`CacheBackend.entries` (key, size, mtime, schema) for ``stats`` and
``gc``, and :meth:`CacheBackend.read_raw` / :meth:`CacheBackend.quarantine`
for ``verify``'s corrupt-record quarantine.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

#: Recognized backend kinds, in selection-priority order.
BACKEND_KINDS = ("json", "sqlite")

#: Subdirectory (relative to a store root) where ``verify`` parks
#: undecodable records instead of silently deleting the evidence.
QUARANTINE_DIR = "quarantine"


class CorruptRecord(ValueError):
    """A record exists but cannot be decoded as a JSON object."""


@dataclass(frozen=True)
class CacheEntry:
    """One stored record, as the maintenance commands see it."""

    key: str
    size_bytes: int
    mtime: float  # seconds since the epoch, write time
    schema: int | None  # the record's stamped schema, None if unreadable


def default_backend_kind(env: dict[str, str] | None = None) -> str:
    """The backend named by ``REPRO_CACHE_BACKEND`` (default ``json``)."""
    value = (env if env is not None else os.environ).get(
        "REPRO_CACHE_BACKEND", ""
    )
    value = value.strip().lower() or "json"
    if value not in BACKEND_KINDS:
        raise ValueError(
            f"REPRO_CACHE_BACKEND must be one of {BACKEND_KINDS}, got {value!r}"
        )
    return value


def make_backend(kind: str, root: str | os.PathLike) -> "CacheBackend":
    """Construct the backend named ``kind`` rooted at ``root``."""
    if kind == "json":
        return JsonShardBackend(root)
    if kind == "sqlite":
        return SqliteBackend(root)
    raise ValueError(f"unknown cache backend {kind!r}; use one of {BACKEND_KINDS}")


class CacheBackend:
    """Raw record storage: JSON dicts under content-hash string keys.

    ``read`` returns the record dict, ``None`` on a miss, and raises
    :class:`CorruptRecord` when bytes exist but do not decode —
    the cache layer turns that into delete-and-miss.  ``write`` must be
    atomic with respect to concurrent readers *and* concurrent writers
    in other processes: a reader never observes a half-written record,
    and the last writer wins whole-record.
    """

    kind: str = "abstract"

    def read(self, key: str) -> dict | None:
        raise NotImplementedError

    def write(self, key: str, record: dict) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def entries(self) -> Iterator[CacheEntry]:
        raise NotImplementedError

    def read_raw(self, key: str) -> bytes | None:
        """The stored bytes for ``key`` without decoding (for quarantine)."""
        raise NotImplementedError

    def quarantine(self, key: str) -> Path:
        """Move ``key``'s raw record into the quarantine directory."""
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


class JsonShardBackend(CacheBackend):
    """One JSON file per record: ``<root>/<key[:2]>/<key>.json``.

    The exact pre-backend layout and byte format (``json.dump`` with
    ``sort_keys=True``, no indent), so caches written before the backend
    split read back unchanged.
    """

    kind = "json"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def read(self, key: str) -> dict | None:
        try:
            text = self.path(key).read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CorruptRecord(str(exc)) from exc
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise CorruptRecord(str(exc)) from exc
        if not isinstance(record, dict):
            raise CorruptRecord(f"record for {key} is not a JSON object")
        return record

    def write(self, key: str, record: dict) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        self.path(key).unlink(missing_ok=True)

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*.json"):
            yield path.stem

    def entries(self) -> Iterator[CacheEntry]:
        for key in self.keys():
            path = self.path(key)
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced deletion
                continue
            schema: int | None = None
            try:
                record = json.loads(path.read_text())
                if isinstance(record.get("schema"), int):
                    schema = record["schema"]
            except (ValueError, OSError):
                schema = None
            yield CacheEntry(
                key=key, size_bytes=stat.st_size, mtime=stat.st_mtime, schema=schema
            )

    def read_raw(self, key: str) -> bytes | None:
        try:
            return self.path(key).read_bytes()
        except OSError:
            return None

    def quarantine(self, key: str) -> Path:
        target = self.root / QUARANTINE_DIR / f"{key}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(self.path(key), target)
        return target

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))


class SqliteBackend(CacheBackend):
    """All records in one ``<root>/cache.sqlite`` file, WAL mode.

    WAL lets readers proceed during a write and serializes writers with
    a short lock, which is exactly the many-concurrent-clients shape the
    experiment service produces.  ``busy_timeout`` absorbs writer
    contention instead of surfacing ``database is locked``.  The
    connection is per-process: forked children (pool/daemon workers)
    transparently reopen on first use.
    """

    kind = "sqlite"

    #: Database filename inside the store root.
    DB_NAME = "cache.sqlite"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None

    @property
    def db_path(self) -> Path:
        return self.root / self.DB_NAME

    def _connection(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            # Never reuse a connection across fork: close the inherited
            # handle without touching the database and open our own.
            if self._conn is not None:  # pragma: no cover - fork path
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.db_path, timeout=30.0, isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS records ("
                " key TEXT PRIMARY KEY,"
                " schema INTEGER,"
                " record TEXT NOT NULL,"
                " mtime REAL NOT NULL)"
            )
            self._conn = conn
            self._pid = pid
        return self._conn

    def read(self, key: str) -> dict | None:
        row = self._connection().execute(
            "SELECT record FROM records WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except ValueError as exc:
            raise CorruptRecord(str(exc)) from exc
        if not isinstance(record, dict):
            raise CorruptRecord(f"record for {key} is not a JSON object")
        return record

    def write(self, key: str, record: dict) -> None:
        text = json.dumps(record, sort_keys=True)
        schema = record.get("schema")
        self._connection().execute(
            "INSERT INTO records (key, schema, record, mtime)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT(key) DO UPDATE SET"
            " schema = excluded.schema,"
            " record = excluded.record,"
            " mtime = excluded.mtime",
            (key, schema if isinstance(schema, int) else None, text, time.time()),
        )

    def delete(self, key: str) -> None:
        self._connection().execute("DELETE FROM records WHERE key = ?", (key,))

    def keys(self) -> Iterator[str]:
        if not self.db_path.exists():
            return
        for (key,) in self._connection().execute(
            "SELECT key FROM records ORDER BY key"
        ):
            yield key

    def entries(self) -> Iterator[CacheEntry]:
        if not self.db_path.exists():
            return
        for key, schema, record, mtime in self._connection().execute(
            "SELECT key, schema, record, mtime FROM records ORDER BY key"
        ):
            yield CacheEntry(
                key=key,
                size_bytes=len(record.encode()),
                mtime=mtime,
                schema=schema if isinstance(schema, int) else None,
            )

    def read_raw(self, key: str) -> bytes | None:
        row = self._connection().execute(
            "SELECT record FROM records WHERE key = ?", (key,)
        ).fetchone()
        return row[0].encode() if row is not None else None

    def quarantine(self, key: str) -> Path:
        raw = self.read_raw(key)
        target = self.root / QUARANTINE_DIR / f"{key}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(raw if raw is not None else b"")
        self.delete(key)
        return target

    def __len__(self) -> int:
        if not self.db_path.exists():
            return 0
        (count,) = self._connection().execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()
        return count

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None
