"""Persistent on-disk result store for completed samples.

The cache layer owns *semantics*: records carry the schema version, the
job's canonical payload (for debuggability — ``cat`` a JSON record or
``SELECT`` a sqlite row to see exactly what produced it), and the encoded
value; corrupt or wrong-schema records read as misses and are quietly
discarded; writes are atomic with respect to concurrent readers and
writers.  *Storage* is pluggable via :mod:`repro.exec.backends`:

* ``json`` (default) — one file per record under
  ``<root>/<key[:2]>/<key>.json`` (two-hex-digit shard directories keep
  any one directory small at paper-scale campaigns), written atomically
  (temp file + ``os.replace``).  Byte-identical to the historical
  layout, so legacy caches stay valid.
* ``sqlite`` — a single ``<root>/cache.sqlite`` in WAL mode, safe for
  many concurrent client processes (the experiment-service regime).

Configuration via environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro-cache/``);
* ``REPRO_CACHE_BACKEND`` — ``json`` or ``sqlite`` (default ``json``);
* ``REPRO_NO_CACHE=1`` — disable persistence entirely
  (:func:`default_cache` returns a :class:`NullCache`).
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

from repro.exec.backends import (
    CacheBackend,
    CorruptRecord,
    default_backend_kind,
    make_backend,
)
from repro.exec.jobs import SCHEMA_VERSION
from repro.sim.sampling import Sample

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def encode_sample(sample: Sample) -> dict:
    return dataclasses.asdict(sample)


def decode_sample(payload: dict) -> Sample:
    fields = {f.name for f in dataclasses.fields(Sample)}
    return Sample(**{name: int(payload[name]) for name in fields})


class ResultCache:
    """Backend-backed result store shared across processes and sessions.

    The base class stores :class:`~repro.sim.sampling.Sample` records
    for :class:`~repro.exec.jobs.SampleJob` keys.  Other experiment
    classes (fault campaigns, sweeps) reuse the record format, atomicity,
    and corruption handling by subclassing and overriding the codec
    hooks: ``schema`` (version gate), ``value_field`` (the record field
    holding the encoded value), and ``_encode``/``_decode``.  Keys come
    from the job (anything with ``.key`` and ``.payload()``), so
    subclasses never touch pathing or I/O — and the storage layout is
    the backend's business entirely (see :mod:`repro.exec.backends`).
    """

    #: Schema version stamped on / required of every record.
    schema: int = SCHEMA_VERSION
    #: Record field holding the encoded value.
    value_field: str = "sample"

    def __init__(
        self,
        root: str | os.PathLike = DEFAULT_CACHE_DIR,
        backend: str | CacheBackend | None = None,
    ):
        self.root = Path(root)
        if backend is None:
            backend = default_backend_kind()
        if isinstance(backend, str):
            backend = make_backend(backend, self.root)
        self.backend: CacheBackend = backend
        self.hits = 0
        self.misses = 0

    # -- codec hooks (override in subclasses) ------------------------------
    def _encode(self, value) -> dict:
        return encode_sample(value)

    def _decode(self, payload: dict):
        return decode_sample(payload)

    # -- storage -----------------------------------------------------------
    def path(self, job) -> Path:
        """The record file for ``job`` (JSON backend only)."""
        return self.backend.path(job.key)

    def get(self, job):
        """The cached value for ``job``, or None on miss/corruption."""
        key = job.key
        try:
            record = self.backend.read(key)
            if record is None:
                self.misses += 1
                return None
            if record.get("schema") != self.schema:
                raise ValueError("schema mismatch")
            value = self._decode(record[self.value_field])
        except (CorruptRecord, ValueError, KeyError, TypeError, OSError):
            # Corrupt, truncated, or stale-schema record: drop it so the
            # fresh result can take its place.
            self.backend.delete(key)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, job, value) -> None:
        """Atomically persist ``value`` as the result of ``job``."""
        record = {
            "schema": self.schema,
            "job": job.payload(),
            self.value_field: self._encode(value),
        }
        self.backend.write(job.key, record)

    def __len__(self) -> int:
        return len(self.backend)


class NullCache(ResultCache):
    """A cache that remembers nothing — the ``REPRO_NO_CACHE=1`` backend."""

    def __init__(self):
        super().__init__(root=os.devnull, backend="json")

    def get(self, job):
        self.misses += 1
        return None

    def put(self, job, value) -> None:
        pass

    def __len__(self) -> int:
        return 0


class FreshWriteCache(ResultCache):
    """Write-through, never read: records results but serves no hits.

    Campaign runs *without* ``--resume`` use this so a fresh invocation
    actually re-executes (statistically honest timing/failure behavior)
    while still leaving a complete checkpoint behind for a later
    ``--resume``.  Wraps any :class:`ResultCache` subclass by holding an
    inner cache whose ``put`` it forwards.
    """

    def __init__(self, inner: ResultCache):
        super().__init__(root=inner.root, backend=inner.backend)
        self.inner = inner

    def get(self, job):
        self.misses += 1
        return None

    def put(self, job, value) -> None:
        self.inner.put(job, value)

    def __len__(self) -> int:
        return len(self.inner)


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("1", "true", "yes")


def default_cache() -> ResultCache:
    """The environment-configured cache (NullCache under REPRO_NO_CACHE)."""
    if not cache_enabled():
        return NullCache()
    return ResultCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


# -- maintenance (the `repro cache` surface) -------------------------------


@dataclasses.dataclass
class CacheStats:
    """What ``repro cache stats`` reports for one store."""

    label: str
    backend: str
    entries: int = 0
    total_bytes: int = 0
    by_schema: dict = dataclasses.field(default_factory=dict)  # schema -> count
    oldest: float | None = None  # epoch seconds
    newest: float | None = None

    def render(self) -> str:
        lines = [
            f"{self.label} ({self.backend})",
            f"  entries : {self.entries}",
            f"  bytes   : {self.total_bytes:,}",
        ]
        for schema in sorted(self.by_schema, key=str):
            lines.append(f"  schema {schema}: {self.by_schema[schema]} record(s)")
        if self.oldest is not None and self.newest is not None:
            age = time.time() - self.oldest
            lines.append(f"  oldest  : {age / 86400:.1f} day(s) ago")
        return "\n".join(lines)


def cache_stats(cache: ResultCache, label: str = "store") -> CacheStats:
    """Summarize one store: entry count, bytes, schema-version mix."""
    stats = CacheStats(label=label, backend=cache.backend.kind)
    for entry in cache.backend.entries():
        stats.entries += 1
        stats.total_bytes += entry.size_bytes
        schema = entry.schema if entry.schema is not None else "unreadable"
        stats.by_schema[schema] = stats.by_schema.get(schema, 0) + 1
        if stats.oldest is None or entry.mtime < stats.oldest:
            stats.oldest = entry.mtime
        if stats.newest is None or entry.mtime > stats.newest:
            stats.newest = entry.mtime
    return stats


def cache_gc(
    cache: ResultCache, older_than_s: float, now: float | None = None
) -> tuple[int, int]:
    """Delete records last written more than ``older_than_s`` ago.

    Returns ``(removed_count, removed_bytes)``.  Content-hash keys make
    this safe at any time: a collected record simply re-executes on next
    demand.
    """
    cutoff = (now if now is not None else time.time()) - older_than_s
    removed = 0
    removed_bytes = 0
    for entry in list(cache.backend.entries()):
        if entry.mtime < cutoff:
            cache.backend.delete(entry.key)
            removed += 1
            removed_bytes += entry.size_bytes
    return removed, removed_bytes


def cache_verify(cache: ResultCache) -> tuple[int, list[str]]:
    """Decode every record; quarantine the ones that don't.

    A record must be valid JSON, carry the store's schema version, and
    round-trip through the store's value decoder.  Failures move to
    ``<root>/quarantine/<key>.json`` (raw bytes preserved for forensics)
    and are removed from the store.  Returns ``(ok_count,
    quarantined_keys)``.
    """
    ok = 0
    quarantined: list[str] = []
    for entry in list(cache.backend.entries()):
        key = entry.key
        try:
            record = cache.backend.read(key)
            if record is None:  # pragma: no cover - raced deletion
                continue
            if record.get("schema") != cache.schema:
                raise ValueError(
                    f"schema {record.get('schema')!r} != expected {cache.schema}"
                )
            cache._decode(record[cache.value_field])
        except (CorruptRecord, ValueError, KeyError, TypeError):
            cache.backend.quarantine(key)
            quarantined.append(key)
        else:
            ok += 1
    return ok, quarantined


def maintenance_stores(
    root: str | os.PathLike | None = None,
    backend: str | None = None,
) -> list[tuple[str, ResultCache]]:
    """The labeled stores ``repro cache`` operates on.

    The sample store at the cache root and the campaign checkpoint store
    under ``<root>/campaign`` (when present, or when the sqlite backend
    would place a database there).
    """
    from repro.campaign.resume import OutcomeCache, campaign_root

    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    kind = backend if backend is not None else default_backend_kind()
    stores: list[tuple[str, ResultCache]] = [
        ("samples", ResultCache(root, backend=kind))
    ]
    camp = campaign_root(root)
    stores.append(("campaign", OutcomeCache(camp, backend=kind)))
    return stores
