"""Persistent on-disk result store for completed samples.

Layout: one JSON file per job under ``<root>/<key[:2]>/<key>.json``
(two-hex-digit shard directories keep any one directory small at
paper-scale campaigns).  Each record carries the schema version, the
job's canonical payload (for debuggability — ``cat`` a record to see
exactly what produced it), and the :class:`~repro.sim.sampling.Sample`
fields.  Records are written atomically (temp file + ``os.replace``), so
a crashed writer never leaves a half-record; corrupt or wrong-schema
records read as misses and are quietly discarded.

Configuration via environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro-cache/``);
* ``REPRO_NO_CACHE=1`` — disable persistence entirely
  (:func:`default_cache` returns a :class:`NullCache`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path

from repro.exec.jobs import SCHEMA_VERSION, SampleJob
from repro.sim.sampling import Sample

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def encode_sample(sample: Sample) -> dict:
    return dataclasses.asdict(sample)


def decode_sample(payload: dict) -> Sample:
    fields = {f.name for f in dataclasses.fields(Sample)}
    return Sample(**{name: int(payload[name]) for name in fields})


class ResultCache:
    """Directory-backed sample store shared across processes and sessions."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, job: SampleJob) -> Path:
        key = job.key
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: SampleJob) -> Sample | None:
        """The cached sample for ``job``, or None on miss/corruption."""
        path = self.path(job)
        try:
            record = json.loads(path.read_text())
            if record.get("schema") != SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            sample = decode_sample(record["sample"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt, truncated, or stale-schema record: drop it so the
            # fresh result can take its place.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return sample

    def put(self, job: SampleJob, sample: Sample) -> None:
        """Atomically persist ``sample`` as the result of ``job``."""
        path = self.path(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": SCHEMA_VERSION,
            "job": job.payload(),
            "sample": encode_sample(sample),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class NullCache(ResultCache):
    """A cache that remembers nothing — the ``REPRO_NO_CACHE=1`` backend."""

    def __init__(self):
        super().__init__(root=os.devnull)

    def get(self, job: SampleJob) -> Sample | None:
        self.misses += 1
        return None

    def put(self, job: SampleJob, sample: Sample) -> None:
        pass

    def __len__(self) -> int:
        return 0


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("1", "true", "yes")


def default_cache() -> ResultCache:
    """The environment-configured cache (NullCache under REPRO_NO_CACHE)."""
    if not cache_enabled():
        return NullCache()
    return ResultCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
