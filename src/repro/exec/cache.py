"""Persistent on-disk result store for completed samples.

Layout: one JSON file per job under ``<root>/<key[:2]>/<key>.json``
(two-hex-digit shard directories keep any one directory small at
paper-scale campaigns).  Each record carries the schema version, the
job's canonical payload (for debuggability — ``cat`` a record to see
exactly what produced it), and the :class:`~repro.sim.sampling.Sample`
fields.  Records are written atomically (temp file + ``os.replace``), so
a crashed writer never leaves a half-record; corrupt or wrong-schema
records read as misses and are quietly discarded.

Configuration via environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro-cache/``);
* ``REPRO_NO_CACHE=1`` — disable persistence entirely
  (:func:`default_cache` returns a :class:`NullCache`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path

from repro.exec.jobs import SCHEMA_VERSION
from repro.sim.sampling import Sample

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def encode_sample(sample: Sample) -> dict:
    return dataclasses.asdict(sample)


def decode_sample(payload: dict) -> Sample:
    fields = {f.name for f in dataclasses.fields(Sample)}
    return Sample(**{name: int(payload[name]) for name in fields})


class ResultCache:
    """Directory-backed result store shared across processes and sessions.

    The base class stores :class:`~repro.sim.sampling.Sample` records
    for :class:`~repro.exec.jobs.SampleJob` keys.  Other experiment
    classes (fault campaigns, sweeps) reuse the layout, atomicity, and
    corruption handling by subclassing and overriding the codec hooks:
    ``schema`` (version gate), ``value_field`` (the record field holding
    the encoded value), and ``_encode``/``_decode``.  Keys come from the
    job (anything with ``.key`` and ``.payload()``), so subclasses never
    touch pathing or I/O.
    """

    #: Schema version stamped on / required of every record.
    schema: int = SCHEMA_VERSION
    #: Record field holding the encoded value.
    value_field: str = "sample"

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- codec hooks (override in subclasses) ------------------------------
    def _encode(self, value) -> dict:
        return encode_sample(value)

    def _decode(self, payload: dict):
        return decode_sample(payload)

    # -- storage -----------------------------------------------------------
    def path(self, job) -> Path:
        key = job.key
        return self.root / key[:2] / f"{key}.json"

    def get(self, job):
        """The cached value for ``job``, or None on miss/corruption."""
        path = self.path(job)
        try:
            record = json.loads(path.read_text())
            if record.get("schema") != self.schema:
                raise ValueError("schema mismatch")
            value = self._decode(record[self.value_field])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt, truncated, or stale-schema record: drop it so the
            # fresh result can take its place.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, job, value) -> None:
        """Atomically persist ``value`` as the result of ``job``."""
        path = self.path(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": self.schema,
            "job": job.payload(),
            self.value_field: self._encode(value),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class NullCache(ResultCache):
    """A cache that remembers nothing — the ``REPRO_NO_CACHE=1`` backend."""

    def __init__(self):
        super().__init__(root=os.devnull)

    def get(self, job):
        self.misses += 1
        return None

    def put(self, job, value) -> None:
        pass

    def __len__(self) -> int:
        return 0


class FreshWriteCache(ResultCache):
    """Write-through, never read: records results but serves no hits.

    Campaign runs *without* ``--resume`` use this so a fresh invocation
    actually re-executes (statistically honest timing/failure behavior)
    while still leaving a complete checkpoint behind for a later
    ``--resume``.  Wraps any :class:`ResultCache` subclass by holding an
    inner cache whose ``put`` it forwards.
    """

    def __init__(self, inner: ResultCache):
        super().__init__(root=inner.root)
        self.inner = inner

    def get(self, job):
        self.misses += 1
        return None

    def put(self, job, value) -> None:
        self.inner.put(job, value)

    def __len__(self) -> int:
        return len(self.inner)


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "").strip() not in ("1", "true", "yes")


def default_cache() -> ResultCache:
    """The environment-configured cache (NullCache under REPRO_NO_CACHE)."""
    if not cache_enabled():
        return NullCache()
    return ResultCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))
