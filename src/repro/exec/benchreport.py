"""Performance benchmarking: the `repro bench` report.

Times every paper artifact's sample sweep at a chosen scale, reports
wall time and simulated cycles per second per phase, and runs a
naive-vs-event kernel comparison on memory-latency-dominated workloads
(where cycle skipping pays most).  The report is written as
``BENCH_<date>.json`` so the repository tracks its performance
trajectory PR over PR, and an old report can serve as a regression
baseline (see :func:`check_regression`).

Benchmark runs always bypass the persistent result cache — a timing of a
cache hit would say nothing about the simulator.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import asdict, dataclass, field
from datetime import date

from repro.sim.config import Mode

#: Bump when the JSON layout changes incompatibly.
BENCH_SCHEMA = 1

#: A committed baseline (see ``benchmarks/bench_baseline.json``) fails
#: the check when any phase's throughput drops below 1/REGRESSION_FACTOR
#: of its recorded value.  Loose on purpose: CI machines vary widely,
#: and the check should catch accidental algorithmic regressions
#: (an O(n) retire loop, a lost horizon), not scheduler noise.
REGRESSION_FACTOR = 3.0

#: Replay execution must stay within 5% of dual on every exec-comparison
#: scenario.  The mirror window is one-shot and its arm/exit costs are
#: O(1), so even where it barely engages (the memory-bound chase) replay
#: should time out at parity with dual, not below it.
REPLAY_SPEEDUP_FLOOR = 0.95

#: Telemetry's zero-cost-when-off contract has a hot side too: an
#: *armed* run may not slow the simulator by more than this factor
#: (min-of-repeats damps scheduler noise; see run_telemetry_comparison).
TELEMETRY_OVERHEAD_FACTOR = 1.10


@dataclass
class PhaseResult:
    """Wall-clock timing of one artifact's full sample sweep."""

    name: str
    wall_s: float
    cycles: int  # simulated system cycles across all samples
    samples: int
    cycles_per_s: float


@dataclass
class KernelComparison:
    """Naive vs. event kernel on one memory-bound workload."""

    name: str
    naive_wall_s: float
    event_wall_s: float
    speedup: float
    cycles: int
    identical: bool  # Stats snapshots bit-identical between kernels


@dataclass
class ExecComparison:
    """Dual vs. replay execution on one single-pair Reunion workload.

    The replay fast path — a mirror window from reset, then permanent
    dual fallback (see :mod:`repro.core.mirror`) — pays off most where
    redundant execution's cost is pure pipeline simulation, so the
    headline artifact is the compute-bound kernel; the memory-bound
    chase bounds the overhead in the fast path's worst case (its window
    closes at the first load fetch, after which replay *is* dual).
    ``identical`` diffs the full Stats snapshots — the bit-identity
    contract, enforced on every bench run.
    """

    name: str
    dual_wall_s: float
    replay_wall_s: float
    speedup: float
    cycles: int
    identical: bool


@dataclass
class TelemetryComparison:
    """Telemetry off vs. armed on one Reunion workload.

    ``identical`` diffs the full Stats snapshots — the telemetry
    observe-never-mutate contract.  ``overhead`` is armed/off wall time
    (min over repeats on each side), gated by
    :data:`TELEMETRY_OVERHEAD_FACTOR` in :func:`check_regression`.
    """

    name: str
    off_wall_s: float
    armed_wall_s: float
    overhead: float
    cycles: int
    events: int  # total records emitted by the armed run
    identical: bool


@dataclass
class DirectoryScenario:
    """A many-pair Reunion run on the directory backend.

    Exercises the regime the snoopy bus cannot reach — ``pairs``
    vocal/mute pairs over banked home-node directories — end to end, and
    records the Reunion-visible outcomes (recoveries, synchronizing
    requests, phantom reads) alongside throughput so the report shows
    the backend actually carrying redundant execution, not just booting.
    """

    name: str
    pairs: int
    wall_s: float
    cycles: int
    cycles_per_s: float
    recoveries: int
    sync_requests: int
    phantom_reads: int
    #: Total mirrored cycles across all pairs (replay execution is the
    #: default even at MANYCORE scale: every pair arms a window from
    #: reset and exits it at its first load fetch).  Zero would mean the
    #: fast path silently stopped arming on many-pair systems.
    mirror_cycles: int = 0


@dataclass
class ProtectionScenario:
    """One Reunion pair under one protection policy, fixed cycle window.

    The per-pair policy API trades coverage for throughput; this
    scenario pins the throughput half of that trade on the compute-bound
    kernel, where the check stage is the bottleneck and the policies
    separate most.  ``sim_ipc`` (vocal user instructions retired per
    simulated cycle) is deterministic, so :func:`check_regression`
    asserts the structural ordering — ``unprotected`` >=
    ``interval-sampled`` >= ``full`` >= ``little-mute`` — exactly, and
    floors ``cycles_per_s`` against the baseline like any phase.
    """

    name: str  # the policy spec (ProtectionPolicy.describe())
    wall_s: float
    cycles: int  # simulated cycles in the timed window
    cycles_per_s: float
    retired: int  # vocal user instructions retired
    sim_ipc: float
    unchecked_intervals: int


@dataclass
class RetireGateMicro:
    """Throughput of the retire-gate offer/pop path, gate machinery only.

    ``pop_retirable`` sits on the per-cycle retire path and hands back a
    reused per-gate scratch buffer instead of allocating a fresh list.
    ``scratch_reused`` pins that contract (the pop must return the *same*
    list object every call); ``ops_per_s`` is the instruction throughput
    of a bare offer→pop loop, floored against the baseline in
    :func:`check_regression` exactly like the phase sweeps.
    """

    name: str
    ops: int  # instructions pushed through offer -> pop
    wall_s: float
    ops_per_s: float
    scratch_reused: bool


@dataclass
class CacheBackendMicro:
    """Put/get throughput of one result-cache storage backend.

    Both backends (sharded JSON, sqlite-WAL) store identical records
    under identical keys; this micro measures the storage cost of that
    equivalence on a throwaway store — ``puts_per_s`` covers the
    write-through path (serialize + atomic publish), ``gets_per_s`` the
    hit path (read + schema gate + decode).  Floored against the
    baseline like every other micro, so a backend can't quietly become
    pathological (a lost WAL pragma, a fsync-per-record regression).
    """

    backend: str
    ops: int  # records written (and then read back)
    put_wall_s: float
    get_wall_s: float
    puts_per_s: float
    gets_per_s: float


@dataclass
class BenchReport:
    """One `repro bench` run, serializable to ``BENCH_<date>.json``."""

    date: str
    scale: str
    jobs: int
    phases: list[PhaseResult] = field(default_factory=list)
    kernel_comparison: list[KernelComparison] = field(default_factory=list)
    exec_comparison: list[ExecComparison] = field(default_factory=list)
    telemetry_comparison: list[TelemetryComparison] = field(default_factory=list)
    directory_scenario: list[DirectoryScenario] = field(default_factory=list)
    protection_scenario: list[ProtectionScenario] = field(default_factory=list)
    micro: list[RetireGateMicro] = field(default_factory=list)
    cache_micro: list[CacheBackendMicro] = field(default_factory=list)
    #: Wall seconds by bench component (see repro.obs.profile.Profiler).
    profile: dict[str, float] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchReport":
        return cls(
            date=payload["date"],
            scale=payload["scale"],
            jobs=payload.get("jobs", 1),
            phases=[PhaseResult(**p) for p in payload.get("phases", [])],
            kernel_comparison=[
                KernelComparison(**c) for c in payload.get("kernel_comparison", [])
            ],
            exec_comparison=[
                ExecComparison(**c) for c in payload.get("exec_comparison", [])
            ],
            telemetry_comparison=[
                TelemetryComparison(**c)
                for c in payload.get("telemetry_comparison", [])
            ],
            directory_scenario=[
                DirectoryScenario(**s)
                for s in payload.get("directory_scenario", [])
            ],
            protection_scenario=[
                ProtectionScenario(**s)
                for s in payload.get("protection_scenario", [])
            ],
            micro=[RetireGateMicro(**m) for m in payload.get("micro", [])],
            cache_micro=[
                CacheBackendMicro(**m) for m in payload.get("cache_micro", [])
            ],
            profile=payload.get("profile", {}),
            schema=payload.get("schema", BENCH_SCHEMA),
        )

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def write(self, out_dir: str = ".") -> str:
        path = os.path.join(out_dir, f"BENCH_{self.date}.json")
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def render(self) -> str:
        lines = [
            f"repro bench — scale={self.scale} jobs={self.jobs} ({self.date})",
            "",
            f"{'phase':<12}{'wall s':>10}{'cycles':>14}{'cycles/s':>14}",
            "-" * 50,
        ]
        for phase in self.phases:
            lines.append(
                f"{phase.name:<12}{phase.wall_s:>10.2f}{phase.cycles:>14,}"
                f"{phase.cycles_per_s:>14,.0f}"
            )
        if self.kernel_comparison:
            lines += [
                "",
                "kernel comparison (naive vs. event, per-sample wall time):",
                f"{'artifact':<28}{'naive s':>10}{'event s':>10}{'speedup':>9}{'identical':>11}",
                "-" * 68,
            ]
            for cmp_ in self.kernel_comparison:
                lines.append(
                    f"{cmp_.name:<28}{cmp_.naive_wall_s:>10.3f}{cmp_.event_wall_s:>10.3f}"
                    f"{cmp_.speedup:>8.2f}x{'yes' if cmp_.identical else 'NO':>11}"
                )
        if self.exec_comparison:
            lines += [
                "",
                "execution comparison (dual vs. replay, single Reunion pair):",
                f"{'artifact':<28}{'dual s':>10}{'replay s':>10}{'speedup':>9}{'identical':>11}",
                "-" * 68,
            ]
            for cmp_ in self.exec_comparison:
                lines.append(
                    f"{cmp_.name:<28}{cmp_.dual_wall_s:>10.3f}{cmp_.replay_wall_s:>10.3f}"
                    f"{cmp_.speedup:>8.2f}x{'yes' if cmp_.identical else 'NO':>11}"
                )
        if self.telemetry_comparison:
            lines += [
                "",
                "telemetry comparison (off vs. armed, min-of-repeats wall time):",
                f"{'artifact':<28}{'off s':>10}{'armed s':>10}{'overhead':>9}"
                f"{'events':>9}{'identical':>11}",
                "-" * 77,
            ]
            for cmp_ in self.telemetry_comparison:
                lines.append(
                    f"{cmp_.name:<28}{cmp_.off_wall_s:>10.3f}{cmp_.armed_wall_s:>10.3f}"
                    f"{cmp_.overhead:>8.2f}x{cmp_.events:>9,}"
                    f"{'yes' if cmp_.identical else 'NO':>11}"
                )
        if self.directory_scenario:
            lines += [
                "",
                "directory scenario (many-pair Reunion on home-node directories):",
                f"{'artifact':<28}{'pairs':>6}{'wall s':>10}{'cycles/s':>12}"
                f"{'recov':>7}{'sync':>7}{'phantom':>9}{'mirror':>8}",
                "-" * 79,
            ]
            for sc in self.directory_scenario:
                lines.append(
                    f"{sc.name:<28}{sc.pairs:>6}{sc.wall_s:>10.3f}"
                    f"{sc.cycles_per_s:>12,.0f}{sc.recoveries:>7}"
                    f"{sc.sync_requests:>7}{sc.phantom_reads:>9,}"
                    f"{sc.mirror_cycles:>8,}"
                )
        if self.protection_scenario:
            lines += [
                "",
                "protection scenario (policy throughput, compute-bound pair):",
                f"{'policy':<28}{'wall s':>10}{'cycles/s':>12}{'retired':>10}"
                f"{'sim IPC':>9}{'uncheck':>9}",
                "-" * 78,
            ]
            for sc in self.protection_scenario:
                lines.append(
                    f"{sc.name:<28}{sc.wall_s:>10.3f}{sc.cycles_per_s:>12,.0f}"
                    f"{sc.retired:>10,}{sc.sim_ipc:>9.3f}"
                    f"{sc.unchecked_intervals:>9,}"
                )
        if self.micro:
            lines += [
                "",
                "retire-gate micro (bare offer/pop loop, gate machinery only):",
                f"{'gate':<28}{'ops':>10}{'wall s':>10}{'ops/s':>14}{'scratch':>9}",
                "-" * 71,
            ]
            for micro in self.micro:
                lines.append(
                    f"{micro.name:<28}{micro.ops:>10,}{micro.wall_s:>10.3f}"
                    f"{micro.ops_per_s:>14,.0f}"
                    f"{'reused' if micro.scratch_reused else 'ALLOC':>9}"
                )
        if self.cache_micro:
            lines += [
                "",
                "cache-backend micro (result-store put/get, throwaway root):",
                f"{'backend':<28}{'ops':>10}{'put/s':>12}{'get/s':>12}",
                "-" * 62,
            ]
            for micro in self.cache_micro:
                lines.append(
                    f"{micro.backend:<28}{micro.ops:>10,}"
                    f"{micro.puts_per_s:>12,.0f}{micro.gets_per_s:>12,.0f}"
                )
        if self.profile:
            lines += ["", "profile (wall seconds by bench component):"]
            width = max(len(name) for name in self.profile)
            for name in sorted(self.profile):
                lines.append(f"  {name:<{width}}  {self.profile[name]:>9.3f}")
        return "\n".join(lines)


def _memory_bound_workloads():
    """Workloads dominated by main-memory latency: maximal skip headroom.

    The pointer chase's footprint is sized far past the default L1/L2 so
    the dependent-load chain misses all the way to memory; `em3d` is the
    paper suite's irregular-graph memory-latency workload.
    """
    from repro.workloads.micro import PointerChase
    from repro.workloads.scientific import Em3d

    return [
        ("mem-chase", PointerChase(nodes=16384)),
        ("em3d", Em3d()),
    ]


def run_kernel_comparison(scale, modes=(Mode.NONREDUNDANT, Mode.REUNION)) -> list[KernelComparison]:
    """Time identical simulations under both kernels; verify bit-identity.

    Builds each system outside the timed section (program generation and
    image install are kernel-independent fixed costs) and times only the
    ``run`` windows.  The returned comparisons double as a correctness
    check: ``identical`` diffs the full Stats snapshots.
    """
    return _compare_kernels_on(scale, _memory_bound_workloads(), modes)


def _compare_kernels_on(
    scale, workloads, modes=(Mode.NONREDUNDANT, Mode.REUNION)
) -> list[KernelComparison]:
    from repro.sim.cmp import CMPSystem
    from repro.sim.options import SimOptions

    comparisons: list[KernelComparison] = []
    seed = scale.seeds[0]
    cycles = scale.warmup + scale.measure
    for name, workload in workloads:
        for mode in modes:
            # One logical processor: a many-core system's cores
            # desynchronize, pulling the minimum horizon toward "now"
            # and measuring contention instead of memory latency.
            config = scale.config.replace(n_logical=1).with_redundancy(mode=mode)
            programs = workload.programs(config.n_logical, seed)
            schedules = workload.itlb_schedules(config.n_logical, seed)
            results = {}
            for kernel in ("naive", "event"):
                system = CMPSystem(
                    config, programs, schedules, options=SimOptions(kernel=kernel)
                )
                start = time.perf_counter()
                system.run(scale.warmup)
                system.run(scale.measure)
                wall = time.perf_counter() - start
                results[kernel] = (wall, dict(system.collect_stats().snapshot()))
            naive_wall, naive_stats = results["naive"]
            event_wall, event_stats = results["event"]
            comparisons.append(
                KernelComparison(
                    name=f"{name}/{mode.value}",
                    naive_wall_s=naive_wall,
                    event_wall_s=event_wall,
                    speedup=naive_wall / event_wall if event_wall else 0.0,
                    cycles=cycles,
                    identical=naive_stats == event_stats,
                )
            )
    return comparisons


def run_exec_comparison(
    scale, cycles: int = 120_000, compute_only: bool = False, repeats: int = 3
) -> list[ExecComparison]:
    """Time a single Reunion pair under dual and replay execution.

    The compute-bound kernel is the fast path's headline artifact (the
    mirror window covers essentially the whole run); the memory-bound
    chase bounds the fast path's overhead where it can barely engage.
    Stats snapshots are diffed to enforce the bit-identity contract.

    Wall times are the minimum over ``repeats`` fresh systems per side
    (the same scheduler-noise defence as the telemetry comparison): the
    memory-bound run finishes in ~0.1s, where a single timing pass can
    swing past the replay-vs-dual floor check_regression enforces.
    """
    from repro.sim.cmp import CMPSystem
    from repro.sim.options import SimOptions
    from repro.workloads.micro import ComputeKernel, PointerChase

    workloads = [("compute-kernel", ComputeKernel())]
    if not compute_only:
        workloads.append(("mem-chase", PointerChase(nodes=16384)))

    comparisons: list[ExecComparison] = []
    seed = scale.seeds[0]
    for name, workload in workloads:
        config = scale.config.replace(n_logical=1).with_redundancy(mode=Mode.REUNION)
        programs = workload.programs(config.n_logical, seed)
        schedules = workload.itlb_schedules(config.n_logical, seed)
        results = {}
        for execution in ("dual", "replay"):
            wall = math.inf
            for _ in range(repeats):
                system = CMPSystem(
                    config,
                    programs,
                    schedules,
                    options=SimOptions(kernel="event", execution=execution),
                )
                start = time.perf_counter()
                system.run(cycles)
                wall = min(wall, time.perf_counter() - start)
            results[execution] = (wall, dict(system.collect_stats().snapshot()))
        dual_wall, dual_stats = results["dual"]
        replay_wall, replay_stats = results["replay"]
        comparisons.append(
            ExecComparison(
                name=f"{name}/reunion",
                dual_wall_s=dual_wall,
                replay_wall_s=replay_wall,
                speedup=dual_wall / replay_wall if replay_wall else 0.0,
                cycles=cycles,
                identical=dual_stats == replay_stats,
            )
        )
    return comparisons


def run_telemetry_comparison(
    scale, cycles: int = 60_000, repeats: int = 3
) -> list[TelemetryComparison]:
    """Time a Reunion pair with telemetry off and armed at ``events``.

    The armed run must be bit-identical (Stats diff) and nearly free:
    :func:`check_regression` fails a baseline check when overhead
    exceeds :data:`TELEMETRY_OVERHEAD_FACTOR`.  Wall times are the
    minimum over ``repeats`` fresh systems per side, which is the
    standard defence against scheduler noise on shared CI runners.
    The memory-bound chase exercises the chatty emitters (phantom
    reads, fingerprint compares after the mirror window exits); a
    16-instruction fingerprint interval keeps the event rate at the
    realistic design point rather than the interval=1 stress corner.
    """
    from repro.sim.cmp import CMPSystem
    from repro.sim.options import SimOptions
    from repro.workloads.micro import PointerChase

    workload = PointerChase(nodes=16384)
    seed = scale.seeds[0]
    config = (
        scale.config.replace(n_logical=1)
        .with_redundancy(mode=Mode.REUNION, fingerprint_interval=16)
    )
    programs = workload.programs(config.n_logical, seed)
    schedules = workload.itlb_schedules(config.n_logical, seed)

    results = {}
    for label, options in (
        ("off", SimOptions()),
        ("armed", SimOptions(trace="events")),
    ):
        best_wall = float("inf")
        stats = None
        emitted = 0
        for _ in range(repeats):
            system = CMPSystem(config, programs, schedules, options=options)
            start = time.perf_counter()
            system.run(cycles)
            wall = time.perf_counter() - start
            best_wall = min(best_wall, wall)
            stats = dict(system.collect_stats().snapshot())
            if system.obs is not None:
                emitted = system.obs.log.emitted
        results[label] = (best_wall, stats, emitted)

    off_wall, off_stats, _ = results["off"]
    armed_wall, armed_stats, events = results["armed"]
    return [
        TelemetryComparison(
            name="mem-chase/reunion",
            off_wall_s=off_wall,
            armed_wall_s=armed_wall,
            overhead=armed_wall / off_wall if off_wall else 0.0,
            cycles=cycles,
            events=events,
            identical=off_stats == armed_stats,
        )
    ]


def run_directory_scenario(
    scale, pairs_list=(4,), cycles: int = 20_000
) -> list[DirectoryScenario]:
    """Run memory-bound Reunion pairs on the directory backend, end to end.

    One :func:`~repro.sim.config.manycore_config` system per entry in
    ``pairs_list`` (4 pairs = 8 cores, 8 pairs = 16 cores), each pair
    chasing its own pointer graph so every mute miss exercises phantom
    requests and every divergence the recovery protocol, across the
    banked directories and the weighted arbiter at realistic
    (non-degenerate) interconnect numbers.
    """
    from repro.sim.cmp import CMPSystem
    from repro.sim.config import manycore_config
    from repro.sim.options import SimOptions
    from repro.workloads.micro import PointerChase

    workload = PointerChase(nodes=4096)
    seed = scale.seeds[0]
    scenarios: list[DirectoryScenario] = []
    for pairs in pairs_list:
        config = manycore_config(pairs)
        programs = workload.programs(config.n_logical, seed)
        schedules = workload.itlb_schedules(config.n_logical, seed)
        system = CMPSystem(config, programs, schedules, options=SimOptions(kernel="event"))
        start = time.perf_counter()
        system.run(cycles)
        wall = time.perf_counter() - start
        stats = dict(system.collect_stats().snapshot())
        phantoms = sum(
            value for key, value in stats.items() if key.startswith("dir.phantom_")
        )
        scenarios.append(
            DirectoryScenario(
                name=f"mem-chase/{pairs}-pair-dir",
                pairs=pairs,
                wall_s=wall,
                cycles=cycles,
                cycles_per_s=cycles / wall if wall else 0.0,
                recoveries=sum(pair.recoveries for pair in system.pairs),
                sync_requests=int(stats.get("dir.sync_requests", 0)),
                phantom_reads=phantoms,
                mirror_cycles=sum(pair.mirror_cycles for pair in system.pairs),
            )
        )
    return scenarios


#: Policies the bench scenario sweeps, fastest expected first.  The
#: structural sim-IPC ordering check_regression enforces follows from
#: what each mode pays per interval: nothing (unprotected), half the
#: exchanges (sampled), every exchange (full), every exchange plus a
#: narrowed checker (little-mute).
PROTECTION_BENCH_POLICIES = (
    "unprotected",
    "interval-sampled:0.5",
    "full",
    "little-mute:2",
)


def run_protection_scenario(
    scale, cycles: int = 12_000
) -> list[ProtectionScenario]:
    """Run one compute-bound Reunion pair per protection policy.

    Fixed simulated-cycle windows, so ``retired`` (and ``sim_ipc``) is
    a deterministic measure of each policy's throughput give-back;
    ``cycles_per_s`` times the host, floored against the baseline.
    """
    from repro.sim.cmp import CMPSystem
    from repro.sim.config import parse_policy
    from repro.sim.options import SimOptions
    from repro.workloads.micro import ComputeKernel

    workload = ComputeKernel()
    seed = scale.seeds[0]
    base = scale.config.replace(n_logical=1).with_redundancy(mode=Mode.REUNION)
    programs = workload.programs(base.n_logical, seed)
    schedules = workload.itlb_schedules(base.n_logical, seed)
    scenarios: list[ProtectionScenario] = []
    for spec in PROTECTION_BENCH_POLICIES:
        config = base.with_protection(parse_policy(spec))
        system = CMPSystem(
            config, programs, schedules, options=SimOptions(kernel="event")
        )
        start = time.perf_counter()
        system.run(cycles)
        wall = time.perf_counter() - start
        vocal = system.vocal_cores[0]
        scenarios.append(
            ProtectionScenario(
                name=spec,
                wall_s=wall,
                cycles=cycles,
                cycles_per_s=cycles / wall if wall else 0.0,
                retired=vocal.user_retired,
                sim_ipc=vocal.user_retired / cycles if cycles else 0.0,
                unchecked_intervals=vocal.gate.intervals_unchecked,
            )
        )
    return scenarios


def run_retire_gate_micro(
    cycles: int = 30_000, width: int = 4
) -> list[RetireGateMicro]:
    """Time the retire-gate offer/pop path in isolation.

    The retire loop pops the gate every cycle it has work, so
    ``pop_retirable`` overhead is pure per-retired-instruction tax.  This
    micro drives the immediate gate (non-redundant retirement) and the
    strict check gate (fingerprint close + self-compare + latency queue —
    the full check-stage data path without needing a partner core) with a
    recycled pool of completed entries, and pins the scratch-buffer
    contract: the pop must hand back the *same* list object every call,
    never a fresh allocation.
    """
    from collections import deque

    from repro.core.strict import StrictCheckGate
    from repro.pipeline.gates import ImmediateGate
    from repro.pipeline.rob import DynInstr, DynState
    from repro.sim.config import RedundancyConfig
    from repro.workloads.micro import ComputeKernel

    program = ComputeKernel().programs(1, seed=0)[0]
    # Steady-state ALU writers only: serializing/HALT entries would close
    # intervals early and measure interval churn instead of the pop path.
    insts = [inst for inst in program.instructions if inst.is_alu]
    pool: list[DynInstr] = []
    for seq in range(256):
        inst = insts[seq % len(insts)]
        entry = DynInstr(seq, seq % len(insts), inst)
        entry.state = DynState.COMPLETED
        if inst.writes_reg:
            entry.result = (seq * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        pool.append(entry)

    gates = [
        ("immediate", ImmediateGate()),
        (
            "strict-check",
            StrictCheckGate(
                RedundancyConfig(mode=Mode.STRICT, comparison_latency=10)
            ),
        ),
    ]
    results: list[RetireGateMicro] = []
    for name, gate in gates:
        free = deque(pool)
        popped = 0
        scratch_reused = True
        first: list | None = None
        start = time.perf_counter()
        for now in range(cycles):
            for _ in range(width):
                if not free:
                    break
                gate.offer(free.popleft(), now)
            out = gate.pop_retirable(now, width)
            if first is None:
                first = out
            elif out is not first:
                scratch_reused = False
            popped += len(out)
            free.extend(out)
        wall = time.perf_counter() - start
        results.append(
            RetireGateMicro(
                name=name,
                ops=popped,
                wall_s=wall,
                ops_per_s=popped / wall if wall else 0.0,
                scratch_reused=scratch_reused,
            )
        )
    return results


def run_cache_backend_micro(records: int = 400) -> list[CacheBackendMicro]:
    """Time put/get throughput of both cache storage backends.

    Writes ``records`` distinct sample records through each backend on a
    throwaway root, then reads them all back as hits.  The job set and
    record contents are identical across backends, so the numbers
    isolate storage cost: JSON pays a file create + atomic rename per
    put, sqlite a WAL append — and the get sides pay a file open/parse
    versus an indexed row lookup.
    """
    import tempfile

    from repro.exec.backends import BACKEND_KINDS
    from repro.exec.cache import ResultCache
    from repro.exec.jobs import SampleJob
    from repro.sim.config import DEFAULT_CONFIG
    from repro.sim.sampling import Sample

    jobs = [
        SampleJob(
            config=DEFAULT_CONFIG,
            workload_name="bench-cache",
            seed=seed,
            warmup=100,
            measure=200,
        )
        for seed in range(records)
    ]
    sample = Sample(
        cycles=200,
        user_instructions=640,
        recoveries=0,
        tlb_misses=12,
        sync_requests=3,
        serializing=1,
    )
    results: list[CacheBackendMicro] = []
    for kind in BACKEND_KINDS:
        with tempfile.TemporaryDirectory(prefix=f"bench-cache-{kind}-") as root:
            cache = ResultCache(root, backend=kind)
            start = time.perf_counter()
            for job in jobs:
                cache.put(job, sample)
            put_wall = time.perf_counter() - start
            start = time.perf_counter()
            for job in jobs:
                value = cache.get(job)
                assert value == sample  # a miss here would be a broken backend
            get_wall = time.perf_counter() - start
            close = getattr(cache.backend, "close", None)
            if close is not None:
                close()
        results.append(
            CacheBackendMicro(
                backend=kind,
                ops=records,
                put_wall_s=put_wall,
                get_wall_s=get_wall,
                puts_per_s=records / put_wall if put_wall else 0.0,
                gets_per_s=records / get_wall if get_wall else 0.0,
            )
        )
    return results


def run_bench(
    scale_name: str = "quick",
    jobs: int = 1,
    only: list[str] | None = None,
    compare_kernels: bool = True,
    compare_exec: bool = True,
    compare_telemetry: bool = True,
    directory_scenario: bool = True,
    protection_scenario: bool = True,
    quick: bool = False,
) -> BenchReport:
    """Time every artifact's sample sweep; return the filled report.

    ``quick`` is the smoke-run mode for CI and local sanity checks: one
    phase at sharply reduced warmup/measure windows, the kernel
    comparison on the single cheapest memory-bound artifact, and the
    execution comparison on the compute-bound kernel only — finishing in
    seconds instead of minutes while still exercising every comparison's
    bit-identity check (and the baseline throughput floor for the one
    phase it shares with a full report).
    """
    import dataclasses

    from repro.harness import (
        Runner,
        plan_fig5,
        plan_fig6,
        plan_fig7a,
        plan_fig7b,
        plan_sc_comparison,
        plan_table3,
        scale_by_name,
    )

    scale = scale_by_name(scale_name)
    if quick:
        scale = dataclasses.replace(scale, warmup=300, measure=800)
    plans = {
        "fig5": lambda: plan_fig5(scale),
        "fig6a": lambda: plan_fig6(Mode.STRICT, scale),
        "fig6b": lambda: plan_fig6(Mode.REUNION, scale),
        "table3": lambda: plan_table3(scale),
        "fig7a": lambda: plan_fig7a(scale),
        "fig7b": lambda: plan_fig7b(scale),
        "sc": lambda: plan_sc_comparison(scale),
    }
    selected = only or (["fig5"] if quick else list(plans))
    unknown = [name for name in selected if name not in plans]
    if unknown:
        raise ValueError(f"unknown bench phases {unknown}; pick from {sorted(plans)}")

    from repro.obs.profile import Profiler

    profiler = Profiler()
    report = BenchReport(
        date=date.today().isoformat(), scale=scale.name, jobs=jobs
    )
    cycles_per_sample = scale.warmup + scale.measure
    for name in selected:
        requests = plans[name]()
        samples = len(requests) * len(scale.seeds)
        # A fresh uncached runner per phase: time the simulator, not the
        # cache, and don't let phases share the baseline samples.
        runner = Runner(scale, cache=None)
        start = time.perf_counter()
        with profiler.section(f"sweep.{name}"):
            runner.prefetch(requests, jobs=jobs)
        wall = time.perf_counter() - start
        cycles = samples * cycles_per_sample
        report.phases.append(
            PhaseResult(
                name=name,
                wall_s=wall,
                cycles=cycles,
                samples=samples,
                cycles_per_s=cycles / wall if wall else 0.0,
            )
        )
    if compare_kernels:
        with profiler.section("compare.kernels"):
            if quick:
                from repro.workloads.micro import PointerChase

                report.kernel_comparison = _compare_kernels_on(
                    scale, [("mem-chase", PointerChase(nodes=16384))]
                )
            else:
                report.kernel_comparison = run_kernel_comparison(scale)
    if compare_exec:
        with profiler.section("compare.exec"):
            report.exec_comparison = run_exec_comparison(
                scale,
                cycles=30_000 if quick else 120_000,
                compute_only=quick,
            )
    if compare_telemetry:
        with profiler.section("compare.telemetry"):
            report.telemetry_comparison = run_telemetry_comparison(
                scale,
                cycles=20_000 if quick else 60_000,
            )
    if directory_scenario:
        with profiler.section("directory.scenario"):
            report.directory_scenario = run_directory_scenario(
                scale,
                pairs_list=(4,) if quick else (4, 8),
                cycles=6_000 if quick else 20_000,
            )
    if protection_scenario:
        with profiler.section("protection.scenario"):
            report.protection_scenario = run_protection_scenario(
                scale, cycles=4_000 if quick else 12_000
            )
    with profiler.section("micro.retire_gate"):
        report.micro = run_retire_gate_micro(
            cycles=6_000 if quick else 30_000
        )
    with profiler.section("micro.cache_backend"):
        report.cache_micro = run_cache_backend_micro(
            records=100 if quick else 400
        )
    report.profile = profiler.snapshot()
    return report


def check_regression(
    current: BenchReport,
    baseline: BenchReport,
    factor: float = REGRESSION_FACTOR,
) -> list[str]:
    """Compare phase throughput against a baseline report.

    Returns a list of human-readable problems (empty = pass).  Phases
    present in only one report are ignored — the baseline is a floor for
    what both runs measured, not a schema lock.  A kernel comparison
    whose outputs were not bit-identical is always a failure.
    """
    problems: list[str] = []
    baseline_phases = {phase.name: phase for phase in baseline.phases}
    for phase in current.phases:
        base = baseline_phases.get(phase.name)
        if base is None or base.cycles_per_s <= 0:
            continue
        floor = base.cycles_per_s / factor
        if phase.cycles_per_s < floor:
            problems.append(
                f"{phase.name}: {phase.cycles_per_s:,.0f} cycles/s is >"
                f"{factor:g}x below baseline {base.cycles_per_s:,.0f}"
            )
    for cmp_ in current.kernel_comparison:
        if not cmp_.identical:
            problems.append(
                f"{cmp_.name}: naive and event kernels produced different Stats"
            )
    for cmp_ in current.exec_comparison:
        if not cmp_.identical:
            problems.append(
                f"{cmp_.name}: dual and replay execution produced different Stats"
            )
        if cmp_.speedup < REPLAY_SPEEDUP_FLOOR:
            problems.append(
                f"{cmp_.name}: replay runs at {cmp_.speedup:.2f}x dual "
                f"(floor {REPLAY_SPEEDUP_FLOOR:g}x)"
            )
    for cmp_ in current.telemetry_comparison:
        if not cmp_.identical:
            problems.append(
                f"{cmp_.name}: armed telemetry changed the Stats snapshot"
            )
        if cmp_.overhead > TELEMETRY_OVERHEAD_FACTOR:
            problems.append(
                f"{cmp_.name}: armed telemetry costs {cmp_.overhead:.2f}x "
                f"(budget {TELEMETRY_OVERHEAD_FACTOR:g}x)"
            )
    protection = {sc.name: sc for sc in current.protection_scenario}
    for weaker, stronger in (
        ("unprotected", "interval-sampled:0.5"),
        ("interval-sampled:0.5", "full"),
        ("full", "little-mute:2"),
    ):
        weak, strong = protection.get(weaker), protection.get(stronger)
        if weak is None or strong is None:
            continue
        # Deterministic simulated IPC: each strengthening of the policy
        # may only cost throughput, never gain it.
        if weak.sim_ipc < strong.sim_ipc:
            problems.append(
                f"protection: {weaker} sim IPC {weak.sim_ipc:.3f} fell below "
                f"{stronger} {strong.sim_ipc:.3f} (ordering inverted)"
            )
    baseline_protection = {sc.name: sc for sc in baseline.protection_scenario}
    for sc in current.protection_scenario:
        base = baseline_protection.get(sc.name)
        if base is None or base.cycles_per_s <= 0:
            continue
        if sc.cycles_per_s < base.cycles_per_s / factor:
            problems.append(
                f"protection/{sc.name}: {sc.cycles_per_s:,.0f} cycles/s is >"
                f"{factor:g}x below baseline {base.cycles_per_s:,.0f}"
            )
    baseline_micro = {micro.name: micro for micro in baseline.micro}
    for micro in current.micro:
        if not micro.scratch_reused:
            problems.append(
                f"{micro.name}: pop_retirable allocated a fresh list "
                "(scratch-buffer contract broken)"
            )
        base = baseline_micro.get(micro.name)
        if base is None or base.ops_per_s <= 0:
            continue
        if micro.ops_per_s < base.ops_per_s / factor:
            problems.append(
                f"{micro.name}: retire-gate micro at {micro.ops_per_s:,.0f}"
                f" ops/s is >{factor:g}x below baseline "
                f"{base.ops_per_s:,.0f}"
            )
    baseline_cache = {micro.backend: micro for micro in baseline.cache_micro}
    for micro in current.cache_micro:
        base = baseline_cache.get(micro.backend)
        if base is None:
            continue
        for side, value, floor_src in (
            ("put", micro.puts_per_s, base.puts_per_s),
            ("get", micro.gets_per_s, base.gets_per_s),
        ):
            if floor_src <= 0:
                continue
            if value < floor_src / factor:
                problems.append(
                    f"cache/{micro.backend}: {side} at {value:,.0f} ops/s is >"
                    f"{factor:g}x below baseline {floor_src:,.0f}"
                )
    return problems


def compare_reports(old: BenchReport, new: BenchReport) -> str:
    """Render a trajectory table diffing two bench reports phase by phase.

    ``repro bench --compare OLD.json NEW.json`` — the bench history lives
    in committed ``BENCH_<date>.json`` files, and this turns two of them
    into an explicit delta instead of an eyeball diff: per-phase cycles/s
    ratio, kernel/exec speedup drift, telemetry-overhead drift, and the
    retire-gate micro.  Ratios are ``new / old`` — above 1.0 is faster.
    Sections or rows present in only one report are skipped.
    """
    lines = [
        f"bench trajectory: {old.date} (scale={old.scale}, jobs={old.jobs})"
        f" -> {new.date} (scale={new.scale}, jobs={new.jobs})",
    ]
    if old.scale != new.scale or old.jobs != new.jobs:
        lines.append(
            "WARNING: reports were taken at different scale/jobs settings;"
            " ratios are not apples to apples"
        )
    old_phases = {phase.name: phase for phase in old.phases}
    rows = [
        (phase, old_phases[phase.name])
        for phase in new.phases
        if phase.name in old_phases
    ]
    if rows:
        lines += [
            "",
            f"{'phase':<12}{'old c/s':>12}{'new c/s':>12}{'ratio':>9}"
            f"{'old wall':>10}{'new wall':>10}",
            "-" * 65,
        ]
        for phase, base in rows:
            ratio = (
                phase.cycles_per_s / base.cycles_per_s
                if base.cycles_per_s
                else 0.0
            )
            lines.append(
                f"{phase.name:<12}{base.cycles_per_s:>12,.0f}"
                f"{phase.cycles_per_s:>12,.0f}{ratio:>8.2f}x"
                f"{base.wall_s:>10.2f}{phase.wall_s:>10.2f}"
            )
    for title, old_rows, new_rows, field_name in (
        ("kernel speedup drift (event vs. naive)",
         old.kernel_comparison, new.kernel_comparison, "speedup"),
        ("execution speedup drift (replay vs. dual)",
         old.exec_comparison, new.exec_comparison, "speedup"),
        ("telemetry overhead drift (armed vs. off)",
         old.telemetry_comparison, new.telemetry_comparison, "overhead"),
    ):
        old_by_name = {c.name: c for c in old_rows}
        matched = [
            (c, old_by_name[c.name]) for c in new_rows if c.name in old_by_name
        ]
        if not matched:
            continue
        lines += [
            "",
            f"{title}:",
            f"{'artifact':<28}{'old':>9}{'new':>9}{'drift':>9}",
            "-" * 55,
        ]
        for current_cmp, old_cmp in matched:
            old_value = getattr(old_cmp, field_name)
            new_value = getattr(current_cmp, field_name)
            drift = new_value / old_value if old_value else 0.0
            lines.append(
                f"{current_cmp.name:<28}{old_value:>8.2f}x{new_value:>8.2f}x"
                f"{drift:>8.2f}x"
            )
    old_micro = {m.name: m for m in old.micro}
    matched_micro = [
        (m, old_micro[m.name]) for m in new.micro if m.name in old_micro
    ]
    if matched_micro:
        lines += [
            "",
            "retire-gate micro drift:",
            f"{'gate':<28}{'old ops/s':>13}{'new ops/s':>13}{'ratio':>9}",
            "-" * 63,
        ]
        for current_micro, base_micro in matched_micro:
            ratio = (
                current_micro.ops_per_s / base_micro.ops_per_s
                if base_micro.ops_per_s
                else 0.0
            )
            lines.append(
                f"{current_micro.name:<28}{base_micro.ops_per_s:>13,.0f}"
                f"{current_micro.ops_per_s:>13,.0f}{ratio:>8.2f}x"
            )
    return "\n".join(lines)
