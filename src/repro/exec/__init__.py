"""Experiment execution engine: job descriptors, result cache, worker pool.

Every paper artifact is a sweep of independent ``(config, workload,
seed)`` simulations.  This package turns those points into first-class
:class:`~repro.exec.jobs.SampleJob` descriptors with stable content-hash
keys, caches completed :class:`~repro.sim.sampling.Sample` results on
disk (:mod:`repro.exec.cache`), and fans batches of jobs out across
worker processes (:mod:`repro.exec.pool`) with progress reporting and a
run manifest (:mod:`repro.exec.progress`).

The contract that makes all of this safe is determinism: a simulation is
a pure function of its job descriptor, so parallel execution and cache
replay are bit-identical to a serial run (verified in ``tests/exec``).
"""

from repro.exec.cache import NullCache, ResultCache, default_cache
from repro.exec.jobs import SCHEMA_VERSION, SampleJob, resolve_workload, run_job
from repro.exec.pool import ExecutionError, ExecutionPool, execute_jobs
from repro.exec.progress import Progress, RunManifest

__all__ = [
    "ExecutionError",
    "ExecutionPool",
    "NullCache",
    "Progress",
    "ResultCache",
    "RunManifest",
    "SCHEMA_VERSION",
    "SampleJob",
    "default_cache",
    "execute_jobs",
    "resolve_workload",
    "run_job",
]
