"""Observability for batch runs: progress lines and the run manifest.

:class:`Progress` prints ``completed/total`` with an ETA to a stream
(``stderr`` by default, so artifact output on ``stdout`` stays byte-
identical with or without it).  :class:`RunManifest` summarizes a whole
batch — jobs, cache hits/misses, simulations executed, retries, wall
clock — and is what lets a user confirm a repeat invocation was 100%
cache hits.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field


class Progress:
    """Incremental ``completed/total`` + ETA reporting for one batch."""

    def __init__(self, total: int, stream=None, enabled: bool = True, label: str = "exec"):
        self.total = total
        self.completed = 0
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled and total > 0
        self.label = label
        self._start = time.monotonic()

    def advance(self, note: str = "") -> None:
        self.completed += 1
        if not self.enabled:
            return
        elapsed = time.monotonic() - self._start
        if self.completed and self.total > self.completed:
            eta = elapsed / self.completed * (self.total - self.completed)
            eta_text = f" eta {eta:5.1f}s"
        else:
            eta_text = ""
        suffix = f" [{note}]" if note else ""
        print(
            f"[{self.label}] {self.completed}/{self.total}"
            f" ({elapsed:5.1f}s{eta_text}){suffix}",
            file=self.stream,
            flush=True,
        )


@dataclass
class RunManifest:
    """What one batch did: the receipt a campaign run prints at the end."""

    total: int = 0  # distinct jobs requested
    hits: int = 0  # served from the persistent cache
    memo_hits: int = 0  # served from the in-process memo
    executed: int = 0  # simulations actually run
    retries: int = 0  # worker crash/timeout retries
    workers: int = 1
    wall_seconds: float = 0.0
    failures: list[str] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.memo_hits
        return served / self.total if self.total else 0.0

    def render(self) -> str:
        lines = [
            "run manifest",
            f"  jobs       : {self.total}",
            f"  cache hits : {self.hits + self.memo_hits} ({100 * self.hit_rate:.0f}%)",
            f"  executed   : {self.executed}",
            f"  retries    : {self.retries}",
            f"  workers    : {self.workers}",
            f"  wall clock : {self.wall_seconds:.2f}s",
        ]
        if self.failures:
            lines.append(f"  failures   : {len(self.failures)}")
            lines.extend(f"    - {failure}" for failure in self.failures)
        return "\n".join(lines)
