"""Job descriptors: one simulation point, one stable content-hash key.

A :class:`SampleJob` pins down everything :func:`repro.sim.sampling.run_sample`
depends on — the full :class:`~repro.sim.config.SystemConfig`, the
workload (by name; workloads are deterministic in ``seed``), the seed,
and the warmup/measure windows.  Its :meth:`~SampleJob.key` is a SHA-256
over a canonical JSON rendering of all of that plus
:data:`SCHEMA_VERSION`, so the key survives process boundaries (unlike
``hash()``) and changes whenever anything that could change the result
changes.

Bump :data:`SCHEMA_VERSION` whenever simulator semantics change in a way
that invalidates previously cached samples.
"""

from __future__ import annotations

import dataclasses
import enum
import gc
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.sim.config import SystemConfig
from repro.sim.options import SimOptions, options_key_payload
from repro.sim.sampling import Sample, run_sample

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Workload

#: Version stamp folded into every job key and cache record.  Cached
#: results from other schema versions are treated as misses.
#: v2: BusConfig grew the CoherenceStyle/directory-interconnect fields,
#: changing every config payload.
#: v3: SystemConfig grew pair_policies (per-pair protection), changing
#: every config payload.
SCHEMA_VERSION = 3


def config_payload(value: Any) -> Any:
    """Canonical JSON-ready rendering of a config tree.

    Dataclasses become sorted field dicts, enums their values; anything
    else must already be a JSON scalar.  The rendering is what gets
    hashed, so it must be deterministic across processes and platforms.
    A dataclass may name result-neutral fields in a ``_KEY_EXCLUDE``
    class attribute (e.g. :class:`~repro.sim.config.ProtectionPolicy`'s
    ``replay`` bit, which only picks the execution strategy for a
    bit-identical pair of implementations) — those are left out of the
    rendering so they never perturb cache keys.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        excluded = getattr(value, "_KEY_EXCLUDE", ())
        return {
            f.name: config_payload(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in excluded
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [config_payload(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for job key")


@dataclass(frozen=True)
class SampleJob:
    """One simulation point: a pure function of the first five fields.

    ``options`` rides along for *how* to compute the sample (kernel,
    execution strategy, telemetry) but is deliberately near-absent from
    the content-hash key: every current :class:`SimOptions` field is
    result-neutral by contract, so a cache populated with telemetry off
    serves armed runs (and dual serves replay) without re-simulating.
    Only :func:`repro.sim.options.options_key_payload`'s projection —
    empty today — is folded in.
    """

    config: SystemConfig
    workload_name: str
    seed: int
    warmup: int
    measure: int
    options: SimOptions | None = None

    def payload(self) -> dict[str, Any]:
        """The canonical dict this job's key is the hash of."""
        payload = {
            "schema": SCHEMA_VERSION,
            "config": config_payload(self.config),
            "workload": self.workload_name,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
        }
        extra = options_key_payload(self.options)
        if extra:
            payload["options"] = extra
        return payload

    @property
    def key(self) -> str:
        """Stable content hash identifying this job across processes."""
        canonical = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        mode = self.config.redundancy.mode.value
        return f"{self.workload_name}/{mode}/seed{self.seed}/{self.warmup}+{self.measure}"


#: Resolved workload instances by lowercased name.  Workloads are
#: stateless (programs are a pure function of ``seed``), so handing every
#: job the same instance is result-neutral — and it makes the per-instance
#: program-generation memo (:mod:`repro.sim.sampling`) hit across the
#: jobs that share a workload, instead of regenerating identical programs
#: once per redundancy mode.
_RESOLVED: dict = {}


def resolve_workload(name: str) -> "Workload":
    """Find a workload by name across the Table 2 suite and the micros."""
    from repro.workloads import suite
    from repro.workloads.micro import micro_suite

    key = name.lower()
    workload = _RESOLVED.get(key)
    if workload is not None:
        return workload
    for workload in [*suite(), *micro_suite()]:
        _RESOLVED.setdefault(workload.name.lower(), workload)
    if key in _RESOLVED:
        return _RESOLVED[key]
    raise KeyError(f"unknown workload {name!r}")


def run_job(job: SampleJob) -> Sample:
    """Execute one job in this process.  Also the worker entry point.

    Generational GC is paused for the duration of the sample: the
    simulator allocates millions of short-lived DynInstr graphs whose
    liveness is acyclic (reference counting frees them promptly), so
    collector sweeps are pure overhead on the hot loop.
    """
    workload = resolve_workload(job.workload_name)
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        return run_sample(
            job.config, workload, job.warmup, job.measure, job.seed, options=job.options
        )
    finally:
        if was_enabled:
            gc.enable()
