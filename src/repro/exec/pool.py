"""Parallel job execution across worker processes.

The pool fans a batch of keyed jobs out over ``workers`` forked
processes, one process per job (simulations run for seconds to minutes,
so process start-up is noise and per-job isolation buys crash
containment and clean per-job timeouts for free).  Jobs are duck-typed:
anything with a content-hash ``.key`` and a ``.describe()`` works —
:class:`~repro.exec.jobs.SampleJob` for throughput samples,
:class:`~repro.campaign.plan.InjectionJob` for fault campaigns — with a
matching ``run_job`` callable supplied at construction.  Each worker
sends its result back over a pipe; the parent owns the cache and writes
results as they arrive, so there are never concurrent cache writers.

Failure policy: a worker that crashes (nonzero exit without a result),
raises, or exceeds the per-job timeout is retried once (configurable);
a job that fails again is reported in the manifest and raises
:class:`ExecutionError` after the rest of the batch completes.

Serial fallback: with ``workers=1`` — or on platforms without the
``fork`` start method — jobs run in-process in submission order, with
semantics identical to calling :func:`~repro.exec.jobs.run_job` in a
loop (exceptions propagate immediately, no retries).

Determinism: a simulation is a pure function of its job, so the result
dict is bit-identical however the batch was scheduled.

Signals: a batch interrupted by SIGTERM or SIGINT *drains* instead of
dying — no new jobs launch, in-flight workers finish and their results
are written through to the cache, worker processes are joined (never
orphaned), and :class:`ExecutionInterrupted` reports what was left
undone.  A second signal cancels the in-flight jobs too (workers are
terminated).  Handlers are installed only for the duration of the batch
and only on the main thread.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.jobs import SampleJob, run_job
from repro.exec.progress import Progress, RunManifest
from repro.sim.sampling import Sample

#: How often the parent polls worker pipes, seconds.
_POLL_INTERVAL = 0.005


class ExecutionError(RuntimeError):
    """One or more jobs failed after exhausting their retries."""

    def __init__(self, failures: list[str], manifest: RunManifest):
        super().__init__(
            f"{len(failures)} job(s) failed: " + "; ".join(failures[:3])
            + ("; ..." if len(failures) > 3 else "")
        )
        self.failures = failures
        self.manifest = manifest


class ExecutionInterrupted(ExecutionError):
    """The batch was stopped by SIGTERM/SIGINT before completing.

    Raised *after* the drain: every result that completed before the
    signal has been written through to the cache, every worker process
    has been joined (no orphans), and ``manifest`` reflects what actually
    ran.  A second signal during the drain cancels in-flight jobs
    (workers are terminated) instead of waiting for them.
    """

    def __init__(self, signum: int, remaining: int, manifest: RunManifest):
        failures = [
            f"interrupted by {signal.Signals(signum).name}: "
            f"{remaining} job(s) not run"
        ]
        super().__init__(failures, manifest)
        self.signum = signum
        self.remaining = remaining


class _DrainState:
    """Signal bookkeeping for one parallel batch.

    First SIGTERM/SIGINT: drain — stop launching, finish (and cache) the
    in-flight jobs.  Second: cancel — terminate in-flight workers too.
    Handlers are only installed on the main thread of the main
    interpreter (CPython restriction); elsewhere the pool runs with
    whatever disposition the host set up.
    """

    def __init__(self) -> None:
        self.signum: int | None = None
        self.cancel = False
        self._previous: dict[int, object] = {}

    def _handle(self, signum, frame) -> None:  # pragma: no cover - signal path
        if self.signum is None:
            self.signum = signum
        else:
            self.cancel = True

    def install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass

    def restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


def _fork_context():
    """The fork multiprocessing context, or None if unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        return None


def _worker_main(runner: Callable[[SampleJob], Sample], job: SampleJob, conn) -> None:
    """Child entry point: run one job, ship the sample (or error) back."""
    # The fork inherits the parent's drain handlers; a worker must die on
    # terminate() (and on a drain-cancel), not start draining itself.
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass
    try:
        sample = runner(job)
        conn.send(("ok", sample))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    job: SampleJob
    attempt: int
    process: "multiprocessing.process.BaseProcess"
    conn: object
    deadline: float | None


@dataclass
class ExecutionPool:
    """Runs job batches across ``workers`` processes with retry + timeout.

    Jobs are duck-typed (``.key`` + ``.describe()``); ``run_job`` maps a
    job to its result and must be fork-inheritable (a module-level
    function or a picklable callable built before :meth:`run`).
    """

    workers: int = 1
    timeout: float | None = None  # per-job wall-clock limit, seconds
    retries: int = 1  # extra attempts after a crash/timeout
    run_job: Callable = field(default=run_job)

    def run(
        self,
        jobs: Iterable,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> tuple[dict, RunManifest]:
        """Execute ``jobs``; return ``{job.key: result}`` plus a manifest.

        Duplicate jobs (same key) are executed once.  Cached jobs are
        served without spawning a worker; fresh results are persisted to
        ``cache`` as they complete.
        """
        start = time.monotonic()
        unique: dict[str, SampleJob] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        manifest = RunManifest(total=len(unique))

        results: dict[str, Sample] = {}
        todo: list[SampleJob] = []
        for key, job in unique.items():
            sample = cache.get(job) if cache is not None else None
            if sample is not None:
                results[key] = sample
                manifest.hits += 1
                if progress is not None:
                    progress.advance(f"hit {job.describe()}")
            else:
                todo.append(job)

        context = _fork_context()
        drain = _DrainState()
        drain.install()
        try:
            if self.workers <= 1 or context is None:
                remaining = self._run_serial(
                    todo, cache, progress, manifest, results, drain
                )
            else:
                manifest.workers = min(self.workers, len(todo)) or 1
                remaining = self._run_parallel(
                    context, todo, cache, progress, manifest, results, drain
                )
        finally:
            drain.restore()
        manifest.wall_seconds = time.monotonic() - start
        if drain.signum is not None:
            raise ExecutionInterrupted(drain.signum, remaining, manifest)
        if manifest.failures:
            raise ExecutionError(manifest.failures, manifest)
        return results, manifest

    def _run_serial(
        self,
        todo: Sequence[SampleJob],
        cache: ResultCache | None,
        progress: Progress | None,
        manifest: RunManifest,
        results: dict[str, Sample],
        drain: _DrainState,
    ) -> int:
        for index, job in enumerate(todo):
            if drain.signum is not None:
                # Everything finished so far is already in `results` (and
                # the cache); stop before starting the next simulation.
                return len(todo) - index
            sample = self.run_job(job)
            results[job.key] = sample
            manifest.executed += 1
            if cache is not None:
                cache.put(job, sample)
            if progress is not None:
                progress.advance(f"ran {job.describe()}")
        return 0

    def _run_parallel(
        self,
        context,
        todo: Sequence[SampleJob],
        cache: ResultCache | None,
        progress: Progress | None,
        manifest: RunManifest,
        results: dict[str, Sample],
        drain: _DrainState,
    ) -> int:
        pending: deque[tuple[SampleJob, int]] = deque((job, 0) for job in todo)
        running: list[_Running] = []

        def launch(job: SampleJob, attempt: int) -> None:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_main, args=(self.run_job, job, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            deadline = time.monotonic() + self.timeout if self.timeout else None
            running.append(_Running(job, attempt, process, parent_conn, deadline))

        def settle(slot: _Running, outcome: str, detail: str) -> None:
            slot.conn.close()
            slot.process.join()
            if outcome == "ok":
                return
            if slot.attempt < self.retries:
                manifest.retries += 1
                pending.append((slot.job, slot.attempt + 1))
            else:
                manifest.failures.append(f"{slot.job.describe()}: {detail}")
                if progress is not None:
                    progress.advance(f"FAILED {slot.job.describe()}")

        cancelled = 0
        while pending or running:
            if drain.signum is not None and pending:
                # Draining: never launch another job; in-flight workers
                # finish (and their results flush to the cache) below.
                cancelled += len(pending)
                pending.clear()
            if drain.cancel and running:
                # Second signal: stop waiting — kill in-flight workers.
                for slot in running:
                    slot.process.terminate()
                    slot.process.join()
                    slot.conn.close()
                cancelled += len(running)
                running = []
                break
            while pending and len(running) < self.workers:
                launch(*pending.popleft())
            time.sleep(_POLL_INTERVAL)
            still_running: list[_Running] = []
            for slot in running:
                if slot.conn.poll():
                    try:
                        status, payload = slot.conn.recv()
                    except (EOFError, OSError):
                        status, payload = "crash", "result pipe closed"
                    if status == "ok":
                        results[slot.job.key] = payload
                        manifest.executed += 1
                        if cache is not None:
                            cache.put(slot.job, payload)
                        if progress is not None:
                            progress.advance(f"ran {slot.job.describe()}")
                        settle(slot, "ok", "")
                    else:
                        settle(slot, "err", str(payload))
                elif not slot.process.is_alive():
                    settle(slot, "crash", f"worker exited {slot.process.exitcode}")
                elif slot.deadline is not None and time.monotonic() > slot.deadline:
                    slot.process.terminate()
                    settle(slot, "timeout", f"exceeded {self.timeout}s timeout")
                else:
                    still_running.append(slot)
            running = still_running
        return cancelled


def execute_jobs(
    jobs: Iterable[SampleJob],
    workers: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    progress: Progress | None = None,
    run_job: Callable[[SampleJob], Sample] = run_job,
) -> tuple[dict[str, Sample], RunManifest]:
    """One-shot convenience wrapper around :class:`ExecutionPool`."""
    pool = ExecutionPool(workers=workers, timeout=timeout, retries=retries, run_job=run_job)
    return pool.run(jobs, cache=cache, progress=progress)
