"""Parallel job execution across worker processes.

The pool fans a batch of keyed jobs out over ``workers`` forked
processes, one process per job (simulations run for seconds to minutes,
so process start-up is noise and per-job isolation buys crash
containment and clean per-job timeouts for free).  Jobs are duck-typed:
anything with a content-hash ``.key`` and a ``.describe()`` works —
:class:`~repro.exec.jobs.SampleJob` for throughput samples,
:class:`~repro.campaign.plan.InjectionJob` for fault campaigns — with a
matching ``run_job`` callable supplied at construction.  Each worker
sends its result back over a pipe; the parent owns the cache and writes
results as they arrive, so there are never concurrent cache writers.

Failure policy: a worker that crashes (nonzero exit without a result),
raises, or exceeds the per-job timeout is retried once (configurable);
a job that fails again is reported in the manifest and raises
:class:`ExecutionError` after the rest of the batch completes.

Serial fallback: with ``workers=1`` — or on platforms without the
``fork`` start method — jobs run in-process in submission order, with
semantics identical to calling :func:`~repro.exec.jobs.run_job` in a
loop (exceptions propagate immediately, no retries).

Determinism: a simulation is a pure function of its job, so the result
dict is bit-identical however the batch was scheduled.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.jobs import SampleJob, run_job
from repro.exec.progress import Progress, RunManifest
from repro.sim.sampling import Sample

#: How often the parent polls worker pipes, seconds.
_POLL_INTERVAL = 0.005


class ExecutionError(RuntimeError):
    """One or more jobs failed after exhausting their retries."""

    def __init__(self, failures: list[str], manifest: RunManifest):
        super().__init__(
            f"{len(failures)} job(s) failed: " + "; ".join(failures[:3])
            + ("; ..." if len(failures) > 3 else "")
        )
        self.failures = failures
        self.manifest = manifest


def _fork_context():
    """The fork multiprocessing context, or None if unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        return None


def _worker_main(runner: Callable[[SampleJob], Sample], job: SampleJob, conn) -> None:
    """Child entry point: run one job, ship the sample (or error) back."""
    try:
        sample = runner(job)
        conn.send(("ok", sample))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


@dataclass
class _Running:
    job: SampleJob
    attempt: int
    process: "multiprocessing.process.BaseProcess"
    conn: object
    deadline: float | None


@dataclass
class ExecutionPool:
    """Runs job batches across ``workers`` processes with retry + timeout.

    Jobs are duck-typed (``.key`` + ``.describe()``); ``run_job`` maps a
    job to its result and must be fork-inheritable (a module-level
    function or a picklable callable built before :meth:`run`).
    """

    workers: int = 1
    timeout: float | None = None  # per-job wall-clock limit, seconds
    retries: int = 1  # extra attempts after a crash/timeout
    run_job: Callable = field(default=run_job)

    def run(
        self,
        jobs: Iterable,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> tuple[dict, RunManifest]:
        """Execute ``jobs``; return ``{job.key: result}`` plus a manifest.

        Duplicate jobs (same key) are executed once.  Cached jobs are
        served without spawning a worker; fresh results are persisted to
        ``cache`` as they complete.
        """
        start = time.monotonic()
        unique: dict[str, SampleJob] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        manifest = RunManifest(total=len(unique))

        results: dict[str, Sample] = {}
        todo: list[SampleJob] = []
        for key, job in unique.items():
            sample = cache.get(job) if cache is not None else None
            if sample is not None:
                results[key] = sample
                manifest.hits += 1
                if progress is not None:
                    progress.advance(f"hit {job.describe()}")
            else:
                todo.append(job)

        context = _fork_context()
        if self.workers <= 1 or context is None:
            self._run_serial(todo, cache, progress, manifest, results)
        else:
            manifest.workers = min(self.workers, len(todo)) or 1
            self._run_parallel(context, todo, cache, progress, manifest, results)
            if manifest.failures:
                manifest.wall_seconds = time.monotonic() - start
                raise ExecutionError(manifest.failures, manifest)
        manifest.wall_seconds = time.monotonic() - start
        return results, manifest

    def _run_serial(
        self,
        todo: Sequence[SampleJob],
        cache: ResultCache | None,
        progress: Progress | None,
        manifest: RunManifest,
        results: dict[str, Sample],
    ) -> None:
        for job in todo:
            sample = self.run_job(job)
            results[job.key] = sample
            manifest.executed += 1
            if cache is not None:
                cache.put(job, sample)
            if progress is not None:
                progress.advance(f"ran {job.describe()}")

    def _run_parallel(
        self,
        context,
        todo: Sequence[SampleJob],
        cache: ResultCache | None,
        progress: Progress | None,
        manifest: RunManifest,
        results: dict[str, Sample],
    ) -> None:
        pending: deque[tuple[SampleJob, int]] = deque((job, 0) for job in todo)
        running: list[_Running] = []

        def launch(job: SampleJob, attempt: int) -> None:
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_main, args=(self.run_job, job, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            deadline = time.monotonic() + self.timeout if self.timeout else None
            running.append(_Running(job, attempt, process, parent_conn, deadline))

        def settle(slot: _Running, outcome: str, detail: str) -> None:
            slot.conn.close()
            slot.process.join()
            if outcome == "ok":
                return
            if slot.attempt < self.retries:
                manifest.retries += 1
                pending.append((slot.job, slot.attempt + 1))
            else:
                manifest.failures.append(f"{slot.job.describe()}: {detail}")
                if progress is not None:
                    progress.advance(f"FAILED {slot.job.describe()}")

        while pending or running:
            while pending and len(running) < self.workers:
                launch(*pending.popleft())
            time.sleep(_POLL_INTERVAL)
            still_running: list[_Running] = []
            for slot in running:
                if slot.conn.poll():
                    try:
                        status, payload = slot.conn.recv()
                    except (EOFError, OSError):
                        status, payload = "crash", "result pipe closed"
                    if status == "ok":
                        results[slot.job.key] = payload
                        manifest.executed += 1
                        if cache is not None:
                            cache.put(slot.job, payload)
                        if progress is not None:
                            progress.advance(f"ran {slot.job.describe()}")
                        settle(slot, "ok", "")
                    else:
                        settle(slot, "err", str(payload))
                elif not slot.process.is_alive():
                    settle(slot, "crash", f"worker exited {slot.process.exitcode}")
                elif slot.deadline is not None and time.monotonic() > slot.deadline:
                    slot.process.terminate()
                    settle(slot, "timeout", f"exceeded {self.timeout}s timeout")
                else:
                    still_running.append(slot)
            running = still_running


def execute_jobs(
    jobs: Iterable[SampleJob],
    workers: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
    progress: Progress | None = None,
    run_job: Callable[[SampleJob], Sample] = run_job,
) -> tuple[dict[str, Sample], RunManifest]:
    """One-shot convenience wrapper around :class:`ExecutionPool`."""
    pool = ExecutionPool(workers=workers, timeout=timeout, retries=retries, run_job=run_job)
    return pool.run(jobs, cache=cache, progress=progress)
