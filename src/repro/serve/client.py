"""Client side of the experiment service: detection, HTTP, ServicePool.

Detection is deliberately zero-configuration: a daemon binds
``<cache root>/serve.sock`` by default, so :func:`service_address` looks
there (override with ``REPRO_SERVE=<path or host:port>``, opt out with
``REPRO_NO_SERVE=1``).  A socket file alone is not proof of life — the
daemon may have been SIGKILLed — so :func:`service_pool` health-checks
before committing, and every routed call site falls back to the local
:class:`~repro.exec.pool.ExecutionPool` when the service is absent or
dies mid-sweep.  A client never fails merely because the daemon did.

:class:`ServicePool` mirrors ``ExecutionPool.run(jobs, cache, progress)
-> (results, manifest)`` exactly, so ``Runner.prefetch`` and
``run_campaign`` route through it without knowing the difference:

* local cache hits are served client-side first (identical semantics —
  a :class:`~repro.exec.cache.FreshWriteCache` misses everything, which
  the pool forwards as ``fresh=True`` so the daemon also skips
  persistent reads for *new* jobs while still deduplicating against
  in-flight and already-completed work);
* the remainder is submitted as one sweep and polled to completion;
* results decode to the same ``Sample``/``Outcome`` objects the local
  pool would have produced (wire payloads are the cache encodings), so
  downstream rendering is byte-identical;
* failures raise :class:`~repro.exec.pool.ExecutionError` with a
  manifest, exactly like the local pool.

The HTTP client is a few dozen lines over a raw socket — the daemon
speaks just enough HTTP/1.1 that curl works too, and the stdlib is all
either side needs.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.campaign.outcome import GoldenReference
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.pool import ExecutionError
from repro.exec.progress import Progress, RunManifest
from repro.serve.wire import golden_to_wire, job_to_wire, result_from_wire

#: Socket filename a daemon binds inside its cache root by default.
SOCKET_NAME = "serve.sock"

#: How often ServicePool polls sweep status, seconds.
POLL_INTERVAL = 0.1


class ServiceUnavailable(ConnectionError):
    """No daemon at the address (or it went away mid-conversation)."""


def default_socket_path(root: str | os.PathLike | None = None) -> Path:
    """Where a daemon for ``root`` binds by default."""
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return Path(root) / SOCKET_NAME


def service_address(env: Optional[dict] = None) -> str | None:
    """The configured service address, or None to run in-process.

    ``REPRO_NO_SERVE=1`` forces local execution; ``REPRO_SERVE`` names
    an explicit socket path or ``host:port``; otherwise the default
    socket is used when it exists.
    """
    if env is None:
        env = os.environ
    if env.get("REPRO_NO_SERVE", "").strip() in ("1", "true", "yes"):
        return None
    explicit = env.get("REPRO_SERVE", "").strip()
    if explicit:
        return explicit
    candidate = default_socket_path(env.get("REPRO_CACHE_DIR") or None)
    return str(candidate) if candidate.exists() else None


def _is_unix(address: str) -> bool:
    # host:port has exactly one colon and a numeric tail; anything
    # path-shaped (contains a slash, or exists on disk) is a socket.
    if "/" in address or os.path.exists(address):
        return True
    host, _, port = address.rpartition(":")
    return not (host and port.isdigit())


class ServeClient:
    """Minimal blocking HTTP client for the daemon's API."""

    def __init__(self, address: str, timeout: float = 30.0):
        self.address = address
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        try:
            if _is_unix(self.address):
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.address)
            else:
                host, _, port = self.address.rpartition(":")
                sock = socket.create_connection(
                    (host, int(port)), timeout=self.timeout
                )
            return sock
        except (OSError, ValueError) as exc:
            raise ServiceUnavailable(
                f"no experiment service at {self.address}: {exc}"
            ) from exc

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro-serve\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        sock = self._connect()
        try:
            sock.sendall(head + body)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        except OSError as exc:
            raise ServiceUnavailable(f"service at {self.address} hung up: {exc}") from exc
        finally:
            sock.close()
        header, _, rest = raw.partition(b"\r\n\r\n")
        if not header:
            raise ServiceUnavailable(f"empty response from {self.address}")
        status_line = header.split(b"\r\n", 1)[0].decode(errors="replace")
        try:
            code = int(status_line.split()[1])
        except (IndexError, ValueError) as exc:
            raise ServiceUnavailable(f"bad response line {status_line!r}") from exc
        try:
            decoded = json.loads(rest.decode() or "{}")
        except ValueError as exc:
            raise ServiceUnavailable(f"non-JSON response from {self.address}") from exc
        if code >= 400:
            raise RuntimeError(
                f"service error {code}: {decoded.get('error', status_line)}"
            )
        return decoded

    # -- API wrappers ------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def submit(
        self,
        wires: list[dict],
        client_id: str,
        fresh: bool = False,
        priority: int = 0,
    ) -> dict:
        return self.request(
            "POST",
            "/sweeps",
            {"client": client_id, "jobs": wires, "fresh": fresh,
             "priority": priority},
        )

    def sweep(self, sweep_id: str) -> dict:
        return self.request("GET", f"/sweeps/{sweep_id}")

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")

    def events(self) -> Iterator[dict]:
        """Stream the live event feed until the daemon stops."""
        sock = self._connect()
        try:
            sock.sendall(
                b"GET /events HTTP/1.1\r\nHost: repro-serve\r\n"
                b"Connection: close\r\n\r\n"
            )
            buffer = b""
            in_body = False
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buffer += chunk
                if not in_body:
                    head, sep, buffer = buffer.partition(b"\r\n\r\n")
                    if not sep:
                        buffer = head
                        continue
                    in_body = True
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
        finally:
            sock.close()


class ServicePool:
    """ExecutionPool-shaped facade over a running daemon.

    ``run`` has the pool's exact contract — same signature, same
    dedup/cache-hit semantics, same ``ExecutionError`` on failures —
    so call sites swap it in without branching on where execution
    happens.  ``golden`` must be supplied for injection-job batches
    (the daemon's workers need the uninjected reference to classify
    against; it is a pure function of the config so every client
    computes the identical one).
    """

    def __init__(
        self,
        address: str,
        client_id: str | None = None,
        golden: GoldenReference | None = None,
        poll: float = POLL_INTERVAL,
    ):
        self.client = ServeClient(address)
        self.client_id = client_id or f"pid{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.golden = golden
        self.poll = poll

    def run(
        self,
        jobs: Iterable,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> tuple[dict, RunManifest]:
        start = time.monotonic()
        unique: dict[str, object] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        manifest = RunManifest(total=len(unique))

        results: dict[str, object] = {}
        todo: list = []
        for key, job in unique.items():
            value = cache.get(job) if cache is not None else None
            if value is not None:
                results[key] = value
                manifest.hits += 1
                if progress is not None:
                    progress.advance(f"hit {job.describe()}")
            else:
                todo.append(job)

        if todo:
            fresh = cache is not None and not _cache_reads_persist(cache)
            wires = []
            for job in todo:
                wire = job_to_wire(job)
                if wire["kind"] == "injection" and self.golden is not None:
                    wire["golden"] = golden_to_wire(self.golden)
                wires.append(wire)
            submitted = self.client.submit(
                wires, client_id=self.client_id, fresh=fresh
            )
            manifest.workers = int(submitted.get("workers", 1))
            status = self._wait(submitted["id"], progress, todo)
            served = status.get("results", {})
            failures = list(status.get("failures", []))
            for job in todo:
                entry = served.get(job.key)
                if entry is None:
                    continue
                value = result_from_wire(entry["kind"], entry["value"])
                results[job.key] = value
                if cache is not None:
                    # Write-through locally too: the daemon persisted to
                    # *its* store; the client's may be a different root.
                    cache.put(job, value)
            manifest.executed = int(status.get("executed", 0))
            manifest.hits += status.get("hits", 0)
            manifest.failures.extend(failures)
        manifest.wall_seconds = time.monotonic() - start
        if manifest.failures:
            raise ExecutionError(manifest.failures, manifest)
        return results, manifest

    def _wait(self, sweep_id: str, progress: Progress | None, todo: list) -> dict:
        reported = 0
        while True:
            status = self.client.sweep(sweep_id)
            if progress is not None:
                settled = status["counts"]["done"] + status["counts"]["failed"]
                for _ in range(settled - reported):
                    progress.advance("served")
                reported = settled
            if status["status"] in ("done", "failed"):
                return status
            time.sleep(self.poll)


def _cache_reads_persist(cache: ResultCache) -> bool:
    """Whether ``cache.get`` can ever serve a persistent record.

    FreshWriteCache/NullCache-style stores miss by construction; the
    daemon must then also skip persistent reads for this sweep (fresh
    semantics), while still deduplicating in-flight/completed work.
    """
    probe = type(cache).get
    return probe is ResultCache.get or getattr(cache, "reads_persist", False)


def service_pool(
    golden: GoldenReference | None = None,
    client_id: str | None = None,
    env: Optional[dict] = None,
) -> ServicePool | None:
    """A health-checked ServicePool, or None to use the local pool."""
    address = service_address(env)
    if address is None:
        return None
    pool = ServicePool(address, client_id=client_id, golden=golden)
    try:
        health = pool.client.health()
    except (ServiceUnavailable, RuntimeError):
        return None
    if health.get("status") != "ok":  # draining daemon: don't pile on
        return None
    return pool
