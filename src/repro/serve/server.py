"""The experiment-service daemon: asyncio HTTP front, fork-worker back.

One process owns the queue, the dedup table, and every cache write; any
number of clients talk to it over a tiny HTTP/1.1 surface (Unix socket
by default, TCP optional):

* ``POST /sweeps`` — submit a list of wire-encoded jobs (see
  :mod:`repro.serve.wire`).  Jobs the daemon already completed (this
  lifetime or in the persistent cache) are hits; the rest enter the
  fair-share queue.  Returns the sweep id.
* ``GET /sweeps/<id>`` — status counts, and the encoded results once
  every job has settled.
* ``GET /events`` — a live server-sent JSONL feed of scheduler events
  (``job.started``, ``job.finished`` with a telemetry digest when the
  daemon runs with ``--telemetry``, ``sweep.done``, ...).
* ``GET /healthz`` — liveness plus queue counters.
* ``POST /shutdown`` — drain and exit.

Execution reuses the :mod:`repro.exec.pool` worker shape: one forked
process per job, results over a pipe, the parent writing each result
through the persistent cache the moment it lands — which is what makes
``kill -TERM`` safe at any instant (satellite: graceful drain).  SIGTERM
/ SIGINT stop launches and let in-flight workers finish (their results
checkpoint); a second signal terminates them.

Telemetry is result-neutral by contract, so ``--telemetry`` arms
metrics-level tracing on sample jobs and streams
:func:`repro.obs.export.summarize` digests into the event feed without
perturbing a single cached byte.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import gc
import json
import os
import signal
import sys
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.campaign.outcome import run_injection
from repro.campaign.resume import OutcomeCache, campaign_root
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache, cache_enabled
from repro.exec.jobs import run_job
from repro.serve.scheduler import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    FairShareScheduler,
    JobRecord,
    SweepRecord,
)
from repro.serve.wire import (
    WireError,
    golden_from_wire,
    job_from_wire,
    result_to_wire,
)

#: Default worker count for `repro serve`.
DEFAULT_WORKERS = 2

#: Extra attempts after a worker crash (mirrors ExecutionPool.retries).
RETRIES = 1

_MAX_BODY = 64 * 1024 * 1024


def _serve_worker_main(wire: dict, telemetry: bool, conn) -> None:
    """Forked child: decode the wire job, run it, ship the result back."""
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass
    try:
        job = job_from_wire(wire)
        kind = wire["kind"]
        summary: str | None = None
        if kind == "sample":
            if telemetry:
                from repro.exec.jobs import resolve_workload
                from repro.obs.export import summarize
                from repro.sim.options import SimOptions
                from repro.sim.sampling import run_sample_system

                options = (job.options or SimOptions()).replace(trace="metrics")
                workload = resolve_workload(job.workload_name)
                was_enabled = gc.isenabled()
                if was_enabled:
                    gc.disable()
                try:
                    result, system = run_sample_system(
                        job.config, workload, job.warmup, job.measure,
                        job.seed, options,
                    )
                finally:
                    if was_enabled:
                        gc.enable()
                if system.obs is not None:
                    summary = summarize(system.obs)
            else:
                result = run_job(job)
        else:
            golden = golden_from_wire(wire["golden"])
            result = run_injection(job.config, job.spec, golden)
        conn.send(("ok", result, summary))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}", None))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


@dataclass
class _WorkerSlot:
    key: str
    process: object
    conn: object


class ServeDaemon:
    """Owns the queue, the worker slots, and the caches."""

    def __init__(
        self,
        cache_root: str | os.PathLike | None = None,
        backend: str | None = None,
        workers: int = DEFAULT_WORKERS,
        telemetry: bool = False,
        event_log: str | os.PathLike | None = None,
    ) -> None:
        root = Path(
            cache_root
            if cache_root is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        self.cache_root = root
        self.workers = max(1, workers)
        self.telemetry = telemetry
        self.persist = cache_enabled()
        self.sample_cache = ResultCache(root, backend=backend)
        self.outcome_cache = OutcomeCache(campaign_root(root), backend=backend)
        self.jobs: dict[str, JobRecord] = {}
        self.goldens: dict[str, dict] = {}  # key -> golden wire payload
        self.sweeps: dict[str, SweepRecord] = {}
        self.scheduler = FairShareScheduler()
        self.running: dict[str, _WorkerSlot] = {}
        self.draining = False
        self.stopped = asyncio.Event()
        self._subscribers: list[asyncio.Queue] = []
        self._event_log = open(event_log, "a", buffering=1) if event_log else None
        self._context = None  # fork context, lazily imported
        self._loop: asyncio.AbstractEventLoop | None = None
        self._sweep_seq = 0

    # -- events ------------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        record = {"event": event, **fields}
        if self._event_log is not None:
            self._event_log.write(json.dumps(record, sort_keys=True) + "\n")
        for queue in list(self._subscribers):
            queue.put_nowait(record)

    # -- submission --------------------------------------------------------

    def _cache_for(self, kind: str):
        return self.sample_cache if kind == "sample" else self.outcome_cache

    def submit(self, body: dict) -> dict:
        client = str(body.get("client") or "anonymous")
        priority = int(body.get("priority") or 0)
        fresh = bool(body.get("fresh"))
        wires = body.get("jobs")
        if not isinstance(wires, list) or not wires:
            raise WireError("a sweep needs a non-empty 'jobs' list")
        self._sweep_seq += 1
        sweep_id = f"s{self._sweep_seq:04d}-{uuid.uuid4().hex[:8]}"
        keys: list[str] = []
        hits = 0
        queued = 0
        for wire in wires:
            job = job_from_wire(wire)  # raises WireError on bad payloads
            kind = wire["kind"]
            key = job.key
            keys.append(key)
            if kind == "injection" and "golden" in wire:
                self.goldens.setdefault(key, wire["golden"])
            record = self.jobs.get(key)
            if record is None:
                record = JobRecord(key=key, wire=wire, kind=kind)
                self.jobs[key] = record
                cached = None
                if self.persist and not fresh:
                    cached = self._cache_for(kind).get(job)
                if cached is not None:
                    record.status = DONE
                    record.result = cached
                    record.cached = True
                    self.emit("job.cached", key=key, kind=kind, sweep=sweep_id)
                else:
                    self.scheduler.push(client, key, priority)
                    queued += 1
                    self.emit("job.queued", key=key, kind=kind, sweep=sweep_id,
                              client=client)
            record.sweeps.add(sweep_id)
            if record.status == DONE:
                hits += 1
        sweep = SweepRecord(
            id=sweep_id, client=client, keys=keys, fresh=fresh,
            priority=priority, hits=hits,
        )
        self.sweeps[sweep_id] = sweep
        self.emit(
            "sweep.submitted", sweep=sweep_id, client=client,
            total=len(keys), hits=hits, queued=queued,
        )
        self._pump()
        self._check_sweep(sweep)
        return {
            "id": sweep_id,
            "total": len(keys),
            "hits": hits,
            "queued": queued,
            "workers": self.workers,
        }

    def sweep_status(self, sweep_id: str) -> dict:
        sweep = self.sweeps.get(sweep_id)
        if sweep is None:
            raise KeyError(sweep_id)
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        failures: list[str] = []
        for key in sweep.keys:
            record = self.jobs[key]
            counts[record.status] += 1
            if record.status == FAILED:
                failures.append(f"{key[:12]}: {record.error}")
        settled = counts[DONE] + counts[FAILED] == len(sweep.keys)
        status = {
            "id": sweep.id,
            "client": sweep.client,
            "status": ("failed" if failures else "done") if settled else "running",
            "total": len(sweep.keys),
            "hits": sweep.hits,
            "counts": counts,
            "failures": failures,
        }
        if settled:
            status["results"] = {
                key: {
                    "kind": self.jobs[key].kind,
                    "value": result_to_wire(self.jobs[key].kind, self.jobs[key].result),
                }
                for key in sweep.keys
                if self.jobs[key].status == DONE
            }
            status["executed"] = sum(
                1
                for key in sweep.keys
                if self.jobs[key].status == DONE and not self.jobs[key].cached
            )
        return status

    def _check_sweep(self, sweep: SweepRecord) -> None:
        statuses = [self.jobs[key].status for key in sweep.keys]
        if all(status in (DONE, FAILED) for status in statuses):
            self.emit(
                "sweep.done", sweep=sweep.id, client=sweep.client,
                total=len(sweep.keys),
                failed=sum(1 for status in statuses if status == FAILED),
            )

    # -- execution ---------------------------------------------------------

    def _fork_context(self):
        if self._context is None:
            import multiprocessing

            self._context = multiprocessing.get_context("fork")
        return self._context

    def _pump(self) -> None:
        """Launch queued jobs into free worker slots (unless draining)."""
        while not self.draining and len(self.running) < self.workers:
            picked = self.scheduler.pop()
            if picked is None:
                break
            client, key = picked
            record = self.jobs[key]
            if record.status != QUEUED:  # raced a duplicate; nothing to run
                continue
            self._launch(record, client)
        if self.draining and not self.running:
            self.stopped.set()

    def _launch(self, record: JobRecord, client: str) -> None:
        context = self._fork_context()
        wire = dict(record.wire)
        if record.kind == "injection" and "golden" not in wire:
            golden = self.goldens.get(record.key)
            if golden is None:
                record.status = FAILED
                record.error = "injection job submitted without a golden reference"
                self.emit("job.failed", key=record.key, error=record.error)
                self._settle_sweeps(record)
                return
            wire["golden"] = golden
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_serve_worker_main,
            args=(wire, self.telemetry and record.kind == "sample", child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        record.status = RUNNING
        record.attempts += 1
        slot = _WorkerSlot(key=record.key, process=process, conn=parent_conn)
        self.running[record.key] = slot
        loop = self._loop or asyncio.get_event_loop()
        loop.add_reader(parent_conn.fileno(), self._on_worker_ready, slot)
        self.emit(
            "job.started", key=record.key, kind=record.kind, client=client,
            attempt=record.attempts,
        )

    def _on_worker_ready(self, slot: _WorkerSlot) -> None:
        loop = self._loop or asyncio.get_event_loop()
        loop.remove_reader(slot.conn.fileno())
        record = self.jobs[slot.key]
        try:
            status, payload, summary = slot.conn.recv()
        except (EOFError, OSError):
            status, payload, summary = "crash", "result pipe closed", None
        slot.conn.close()
        slot.process.join()
        del self.running[slot.key]
        if status == "ok":
            record.status = DONE
            record.result = payload
            if self.persist:
                self._cache_for(record.kind).put(job_from_wire(record.wire), payload)
            event = {"key": record.key, "kind": record.kind,
                     "attempt": record.attempts}
            if summary:
                event["telemetry"] = summary
            self.emit("job.finished", **event)
        elif record.attempts <= RETRIES and not self.draining:
            record.status = QUEUED
            self.scheduler.push("retry", record.key)
            self.emit("job.retry", key=record.key, error=str(payload))
        else:
            record.status = FAILED
            record.error = str(payload)
            self.emit("job.failed", key=record.key, error=record.error)
        self._settle_sweeps(record)
        self._pump()

    def _settle_sweeps(self, record: JobRecord) -> None:
        for sweep_id in record.sweeps:
            self._check_sweep(self.sweeps[sweep_id])

    # -- shutdown ----------------------------------------------------------

    def request_drain(self, signum: int | None = None) -> None:
        if not self.draining:
            self.draining = True
            self.emit(
                "daemon.drain",
                signal=signal.Signals(signum).name if signum else None,
                in_flight=len(self.running),
                queued=len(self.scheduler),
            )
            if not self.running:
                self.stopped.set()
        else:
            # Second signal: cancel in-flight work too.
            loop = self._loop or asyncio.get_event_loop()
            for slot in list(self.running.values()):
                with contextlib.suppress(OSError):
                    loop.remove_reader(slot.conn.fileno())
                slot.process.terminate()
                slot.process.join()
                slot.conn.close()
                self.jobs[slot.key].status = FAILED
                self.jobs[slot.key].error = "cancelled by shutdown"
                del self.running[slot.key]
            self.stopped.set()

    def health(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "pid": os.getpid(),
            "workers": self.workers,
            "running": len(self.running),
            "queued": len(self.scheduler),
            "jobs": len(self.jobs),
            "sweeps": len(self.sweeps),
            "telemetry": self.telemetry,
            "backend": self.sample_cache.backend.kind,
        }

    # -- HTTP --------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            try:
                method, path, _version = request.decode().split()
            except ValueError:
                await self._respond(writer, 400, {"error": "bad request line"})
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > _MAX_BODY:
                await self._respond(writer, 413, {"error": "body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            await self._route(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(OSError, ConnectionResetError):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, self.health())
        elif method == "POST" and path == "/sweeps":
            if self.draining:
                await self._respond(writer, 503, {"error": "daemon is draining"})
                return
            try:
                payload = json.loads(body.decode() or "{}")
                response = self.submit(payload)
            except (WireError, ValueError, KeyError) as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            await self._respond(writer, 200, response)
        elif method == "GET" and path.startswith("/sweeps/"):
            try:
                status = self.sweep_status(path[len("/sweeps/"):])
            except KeyError:
                await self._respond(writer, 404, {"error": "unknown sweep"})
                return
            await self._respond(writer, 200, status)
        elif method == "GET" and path == "/events":
            await self._stream_events(writer)
        elif method == "POST" and path == "/shutdown":
            await self._respond(writer, 200, {"status": "draining"})
            self.request_drain()
        else:
            await self._respond(writer, 404, {"error": f"no route {method} {path}"})

    async def _respond(self, writer: asyncio.StreamWriter, code: int,
                       payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 503: "Service Unavailable"}
        writer.write(
            f"HTTP/1.1 {code} {reason.get(code, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            await writer.drain()
            while not self.stopped.is_set():
                getter = asyncio.ensure_future(queue.get())
                stopper = asyncio.ensure_future(self.stopped.wait())
                done, pending = await asyncio.wait(
                    {getter, stopper}, return_when=asyncio.FIRST_COMPLETED
                )
                for task in pending:
                    task.cancel()
                if getter in done:
                    record = getter.result()
                    writer.write(json.dumps(record, sort_keys=True).encode() + b"\n")
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._subscribers.remove(queue)

    # -- lifecycle ---------------------------------------------------------

    async def serve(self, socket_path: str | os.PathLike | None = None,
                    host: str | None = None, port: int | None = None) -> None:
        """Bind, run until drained, clean up the socket."""
        self._loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self.request_drain, signum
                )
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread (tests) or exotic platform
        if socket_path is not None:
            socket_path = Path(socket_path)
            socket_path.parent.mkdir(parents=True, exist_ok=True)
            if socket_path.exists():
                socket_path.unlink()  # stale socket from a killed daemon
            server = await asyncio.start_unix_server(self._handle, path=str(socket_path))
            address = str(socket_path)
        else:
            server = await asyncio.start_server(
                self._handle, host or "127.0.0.1", port or 0
            )
            bound = server.sockets[0].getsockname()
            address = f"{bound[0]}:{bound[1]}"
        self.address = address
        self.emit(
            "daemon.start", address=address, workers=self.workers,
            backend=self.sample_cache.backend.kind, pid=os.getpid(),
        )
        try:
            async with server:
                await self.stopped.wait()
        finally:
            self.emit(
                "daemon.stop",
                completed=sum(1 for r in self.jobs.values() if r.status == DONE),
                failed=sum(1 for r in self.jobs.values() if r.status == FAILED),
            )
            if self._event_log is not None:
                self._event_log.close()
            if socket_path is not None:
                with contextlib.suppress(OSError):
                    Path(socket_path).unlink()


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.serve.server`` / ``repro serve`` entry point."""
    from repro.serve.client import default_socket_path

    parser = argparse.ArgumentParser(
        prog="repro serve", description="run the local experiment service"
    )
    parser.add_argument(
        "--socket", default=None,
        help="Unix socket path (default <cache root>/serve.sock)",
    )
    parser.add_argument("--host", default=None, help="bind TCP instead (host)")
    parser.add_argument("--port", type=int, default=None, help="TCP port")
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help=f"fork worker processes (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--cache-root", default=None,
        help="cache root to serve from (default REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--backend", choices=["json", "sqlite"], default=None,
        help="cache backend (default REPRO_CACHE_BACKEND or json)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="arm metrics-level tracing on sample jobs and stream "
        "per-job telemetry digests into the event feed",
    )
    parser.add_argument(
        "--event-log", default=None,
        help="also append every event as JSONL to this file",
    )
    args = parser.parse_args(argv)

    daemon = ServeDaemon(
        cache_root=args.cache_root,
        backend=args.backend,
        workers=args.workers,
        telemetry=args.telemetry,
        event_log=args.event_log,
    )
    if args.host or args.port:
        socket_path = None
    else:
        socket_path = args.socket or str(default_socket_path(daemon.cache_root))
    where = socket_path or f"{args.host or '127.0.0.1'}:{args.port or 0}"
    print(f"repro serve: listening on {where} "
          f"({daemon.workers} workers, {daemon.sample_cache.backend.kind} backend)",
          file=sys.stderr, flush=True)
    asyncio.run(daemon.serve(socket_path=socket_path, host=args.host, port=args.port))
    print("repro serve: drained, exiting", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
