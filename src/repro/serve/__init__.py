"""repro.serve — a local experiment service over the exec pool.

The fork pool plus the content-addressed cache already behave like a job
system: jobs are pure functions of content-hash keys, results checkpoint
through the cache, and plans are deterministic.  This package promotes
them to one — a daemon (:mod:`repro.serve.server`) that accepts job
submissions from any number of local clients over HTTP on a Unix socket
(or TCP), schedules fairly across clients, deduplicates in-flight and
completed work by key, and fans execution out over fork workers; and a
client (:mod:`repro.serve.client`) whose :class:`~repro.serve.client.
ServicePool` is a drop-in for :class:`~repro.exec.pool.ExecutionPool`,
so ``repro reproduce`` / ``repro campaign`` / ``repro frontier``
transparently ride a running daemon and silently fall back to
in-process execution when there is none.

Results travel as the same canonical payloads the cache stores
(:mod:`repro.serve.wire`), so a sweep served by the daemon is
byte-identical to the same sweep run in-process.
"""

from repro.serve.client import (
    ServeClient,
    ServiceUnavailable,
    ServicePool,
    default_socket_path,
    service_address,
    service_pool,
)
from repro.serve.scheduler import FairShareScheduler
from repro.serve.wire import job_from_wire, job_to_wire

__all__ = [
    "FairShareScheduler",
    "ServeClient",
    "ServicePool",
    "ServiceUnavailable",
    "default_socket_path",
    "job_from_wire",
    "job_to_wire",
    "service_address",
    "service_pool",
]
