"""Scheduling state for the experiment service.

Two concerns live here, both plain data structures the asyncio daemon
drives (nothing in this module blocks or spawns):

* **Dedup** — :class:`JobRecord` tracks one unique content-hash key
  through its lifecycle (``queued → running → done | failed``).  Any
  number of sweeps — from any number of clients — attach to the same
  record; the simulation runs at most once per daemon lifetime, and
  completed records keep serving later submissions from memory.
* **Fair share** — :class:`FairShareScheduler` holds the queued keys in
  per-client queues and always dispatches from the client with the
  fewest jobs served so far (ties: higher priority, then submission
  order).  A client that dumps a thousand-job campaign cannot starve a
  client submitting a three-job smoke sweep: the small client reaches
  parity after a handful of dispatches and drains immediately.

Everything is deterministic — same submissions in the same order yield
the same dispatch order — which keeps daemon behavior reproducible in
tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class JobRecord:
    """One unique job (by content-hash key) known to the daemon."""

    key: str
    wire: dict  # the submission rendering (kind + canonical payload)
    kind: str  # "sample" | "injection"
    status: str = QUEUED
    result: object | None = None  # decoded Sample/Outcome once DONE
    error: str | None = None
    attempts: int = 0
    cached: bool = False  # served from the persistent cache, never ran
    sweeps: set[str] = field(default_factory=set)  # attached sweep ids


@dataclass
class SweepRecord:
    """One client submission: an ordered list of job keys."""

    id: str
    client: str
    keys: list[str]
    fresh: bool = False  # skip persistent-cache reads for new jobs
    priority: int = 0
    hits: int = 0  # jobs already DONE at submission time


class FairShareScheduler:
    """Per-client queues with deficit-style fair dispatch.

    ``push`` files a key under its submitting client; ``pop`` picks the
    client with the minimum served count (ties broken by priority, then
    global submission order *of that client's head job*) and dispatches
    its best queued job.  Served counts persist across sweeps, so a
    long-running client keeps yielding to newcomers.
    """

    def __init__(self) -> None:
        # client -> heap of (-priority, seq, key)
        self._queues: dict[str, list[tuple[int, int, str]]] = {}
        self._served: dict[str, int] = {}
        self._seq = itertools.count()

    def push(self, client: str, key: str, priority: int = 0) -> None:
        heap = self._queues.setdefault(client, [])
        self._served.setdefault(client, 0)
        heapq.heappush(heap, (-priority, next(self._seq), key))

    def pop(self) -> Optional[tuple[str, str]]:
        """The next ``(client, key)`` to dispatch, or None when idle."""
        best_client: str | None = None
        best_rank: tuple[int, int, int] | None = None
        for client, heap in self._queues.items():
            if not heap:
                continue
            neg_priority, seq, _key = heap[0]
            rank = (self._served[client], neg_priority, seq)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_client = client
        if best_client is None:
            return None
        _, _, key = heapq.heappop(self._queues[best_client])
        self._served[best_client] += 1
        return best_client, key

    def discard(self, key: str) -> None:
        """Drop every queued instance of ``key`` (e.g. cancelled work)."""
        for client, heap in self._queues.items():
            filtered = [entry for entry in heap if entry[2] != key]
            if len(filtered) != len(heap):
                heapq.heapify(filtered)
                self._queues[client] = filtered

    def __len__(self) -> int:
        return sum(len(heap) for heap in self._queues.values())

    def served(self, client: str) -> int:
        return self._served.get(client, 0)
