"""Wire codec: jobs and results as the JSON the cache already speaks.

A job's canonical payload (:meth:`~repro.exec.jobs.SampleJob.payload`)
is a complete, deterministic description of the simulation — that is
why hashing it yields the cache key.  The wire format leans on that:
a submitted job travels as ``{"kind": ..., "job": <payload>}`` and the
daemon reconstructs the typed job object from the payload alone, so
client and daemon agree on the key *by construction* (the round-trip
test pins ``job_from_wire(job_to_wire(j)).key == j.key``).

Reconstruction is a generic typed decoder over the config dataclasses:
:func:`~repro.exec.jobs.config_payload` renders dataclasses as sorted
field dicts and enums as their values; :func:`decode_dataclass` inverts
that using the dataclass type hints (nested dataclasses, enums,
``tuple[X, ...]``, ``Optional``).  Fields a dataclass excludes from its
payload via ``_KEY_EXCLUDE`` (result-neutral by contract, e.g.
``ProtectionPolicy.replay``) decode to their defaults — result-neutral
means the default is as good as whatever the submitter had.

Results travel as the same encodings the cache stores (``Sample`` /
``Outcome`` field dicts), so a daemon-served sweep renders
byte-identically to an in-process one.
"""

from __future__ import annotations

import dataclasses
import enum
import types
import typing
from typing import Any, Union

from repro.campaign.outcome import TAXONOMY, GoldenReference, Outcome
from repro.campaign.plan import CAMPAIGN_SCHEMA_VERSION, InjectionJob, InjectionSpec
from repro.exec.cache import decode_sample, encode_sample
from repro.exec.jobs import SCHEMA_VERSION, SampleJob
from repro.sim.config import SystemConfig
from repro.sim.sampling import Sample

#: Job kinds the service executes.
JOB_KINDS = ("sample", "injection")


class WireError(ValueError):
    """A wire payload does not decode to a valid job or result."""


def decode_value(annotation: Any, value: Any) -> Any:
    """Decode one payload value against a type annotation."""
    origin = typing.get_origin(annotation)
    if origin is Union or origin is types.UnionType:  # X | None and Optional[X]
        args = typing.get_args(annotation)
        if value is None and type(None) in args:
            return None
        last_error: Exception | None = None
        for arg in args:
            if arg is type(None):
                continue
            try:
                return decode_value(arg, value)
            except (TypeError, ValueError, KeyError) as exc:
                last_error = exc
        raise WireError(f"no Union arm of {annotation} accepts {value!r}") from last_error
    if origin is tuple:
        args = typing.get_args(annotation)
        if not isinstance(value, (list, tuple)):
            raise WireError(f"expected a sequence for {annotation}, got {value!r}")
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(decode_value(args[0], item) for item in value)
        if len(args) != len(value):
            raise WireError(f"expected {len(args)} items for {annotation}")
        return tuple(decode_value(arg, item) for arg, item in zip(args, value))
    if dataclasses.is_dataclass(annotation) and isinstance(annotation, type):
        return decode_dataclass(annotation, value)
    if isinstance(annotation, type) and issubclass(annotation, enum.Enum):
        return annotation(value)
    if annotation is float and isinstance(value, int):
        # JSON renders 1.0 as 1; the dataclass wants the float back.
        return float(value)
    if annotation is bool:
        if not isinstance(value, bool):
            raise WireError(f"expected a bool, got {value!r}")
        return value
    if annotation in (int, str) and not isinstance(value, annotation):
        raise WireError(f"expected {annotation.__name__}, got {value!r}")
    return value


def decode_dataclass(cls: type, payload: Any) -> Any:
    """Invert :func:`~repro.exec.jobs.config_payload` for ``cls``.

    Missing fields fall back to their declared defaults — which is what
    ``_KEY_EXCLUDE``'d (result-neutral) fields rely on.
    """
    if not isinstance(payload, dict):
        raise WireError(f"expected a field dict for {cls.__name__}, got {payload!r}")
    hints = typing.get_type_hints(cls)
    kwargs: dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        if field.name in payload:
            kwargs[field.name] = decode_value(hints[field.name], payload[field.name])
        elif (
            field.default is dataclasses.MISSING
            and field.default_factory is dataclasses.MISSING
        ):
            raise WireError(f"{cls.__name__} payload missing required {field.name!r}")
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError(f"cannot build {cls.__name__} from payload: {exc}") from exc


# -- jobs -------------------------------------------------------------------


def job_to_wire(job: SampleJob | InjectionJob) -> dict:
    """Render a job for submission (its canonical payload plus a kind tag)."""
    if isinstance(job, SampleJob):
        return {"kind": "sample", "job": job.payload()}
    if isinstance(job, InjectionJob):
        return {"kind": "injection", "job": job.payload()}
    raise WireError(f"cannot serialize job of type {type(job).__name__}")


def job_from_wire(wire: dict) -> SampleJob | InjectionJob:
    """Reconstruct the typed job from its wire rendering.

    The reconstructed job recomputes the same content-hash key the
    submitter had, because the payload *is* what the key hashes.
    """
    kind = wire.get("kind")
    payload = wire.get("job")
    if not isinstance(payload, dict):
        raise WireError("wire job missing its payload")
    if kind == "sample":
        if payload.get("schema") != SCHEMA_VERSION:
            raise WireError(
                f"sample schema {payload.get('schema')!r} != {SCHEMA_VERSION}"
            )
        return SampleJob(
            config=decode_dataclass(SystemConfig, payload["config"]),
            workload_name=payload["workload"],
            seed=payload["seed"],
            warmup=payload["warmup"],
            measure=payload["measure"],
        )
    if kind == "injection":
        if payload.get("schema") != CAMPAIGN_SCHEMA_VERSION:
            raise WireError(
                f"campaign schema {payload.get('schema')!r} != "
                f"{CAMPAIGN_SCHEMA_VERSION}"
            )
        return InjectionJob(
            config=decode_dataclass(SystemConfig, payload["config"]),
            spec=decode_dataclass(InjectionSpec, payload["spec"]),
        )
    raise WireError(f"unknown job kind {kind!r}; use one of {JOB_KINDS}")


# -- results ----------------------------------------------------------------


def result_to_wire(kind: str, value: Sample | Outcome) -> dict:
    """Encode one result exactly the way the cache stores it."""
    if kind == "sample":
        return encode_sample(value)
    if kind == "injection":
        return dataclasses.asdict(value)
    raise WireError(f"unknown result kind {kind!r}")


def result_from_wire(kind: str, payload: dict) -> Sample | Outcome:
    if kind == "sample":
        return decode_sample(payload)
    if kind == "injection":
        fields = {f.name for f in dataclasses.fields(Outcome)}
        if set(payload) != fields:
            raise WireError("outcome payload field mismatch")
        outcome = Outcome(**payload)
        if outcome.classification not in TAXONOMY:
            raise WireError(f"bad classification {outcome.classification!r}")
        return outcome
    raise WireError(f"unknown result kind {kind!r}")


# -- golden references ------------------------------------------------------


def golden_to_wire(golden: GoldenReference) -> dict:
    return dataclasses.asdict(golden)


def golden_from_wire(payload: dict) -> GoldenReference:
    fields = {f.name for f in dataclasses.fields(GoldenReference)}
    if not isinstance(payload, dict) or set(payload) != fields:
        raise WireError("golden payload field mismatch")
    return GoldenReference(**payload)
