"""Statistical fault-injection campaigns.

The subsystem that *measures* what the rest of the reproduction models:
detection coverage, detection latency, and SDC/DUE outcomes under
injected soft errors, at statistical scale.

* :mod:`repro.campaign.plan` — stratified, seeded enumeration of
  injection sites (victim core × fault target × bit octet × injection
  point) as content-hash-keyed jobs;
* :mod:`repro.campaign.outcome` — one injected run against an
  uninjected golden reference, classified into the standard taxonomy
  (masked / detected+recovered / DUE / SDC / timeout) with detection
  cause and latency extracted from the :mod:`repro.obs` event stream;
* :mod:`repro.campaign.stats` — coverage and SDC rates with Wilson
  confidence intervals, plus the measured-vs-closed-form aliasing
  cross-check against :mod:`repro.core.coverage`;
* :mod:`repro.campaign.report` — deterministic text + JSON reports;
* :mod:`repro.campaign.resume` — checkpointing through the
  :mod:`repro.exec` cache, so an interrupted campaign resumes at 100%
  cache hits;
* :mod:`repro.campaign.run` — orchestration over
  :class:`~repro.exec.pool.ExecutionPool`.
"""

from repro.campaign.outcome import (
    DETECTED_RECOVERED,
    DETECTED_UNRECOVERABLE,
    MASKED,
    SDC,
    TAXONOMY,
    TIMEOUT,
    Outcome,
    classify,
    golden_reference,
    run_injection,
)
from repro.campaign.plan import (
    CAMPAIGN_SCHEMA_VERSION,
    InjectionJob,
    InjectionSpec,
    available_targets,
    campaign_config,
    plan_campaign,
)
from repro.campaign.report import render_report, report_payload
from repro.campaign.resume import OutcomeCache, campaign_cache
from repro.campaign.run import CampaignResult, run_campaign
from repro.campaign.stats import (
    AliasingCrossCheck,
    CampaignStats,
    crosscheck_aliasing,
    summarize,
    wilson_interval,
)

__all__ = [
    "AliasingCrossCheck",
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignResult",
    "CampaignStats",
    "DETECTED_RECOVERED",
    "DETECTED_UNRECOVERABLE",
    "InjectionJob",
    "InjectionSpec",
    "MASKED",
    "Outcome",
    "OutcomeCache",
    "SDC",
    "TAXONOMY",
    "TIMEOUT",
    "available_targets",
    "campaign_cache",
    "campaign_config",
    "classify",
    "crosscheck_aliasing",
    "golden_reference",
    "plan_campaign",
    "render_report",
    "report_payload",
    "run_campaign",
    "run_injection",
    "summarize",
    "wilson_interval",
]
