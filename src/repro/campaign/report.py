"""Campaign coverage reports: deterministic text and JSON.

Both renderings are pure functions of the classified outcomes and the
campaign parameters — no wall-clock times, hostnames, or manifest
counters — so a resumed campaign (100% cache hits) reproduces them byte
for byte.  Execution-side diagnostics belong in the
:class:`~repro.exec.progress.RunManifest`, which the CLI prints to
stderr.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.campaign.outcome import TAXONOMY, Outcome
from repro.campaign.stats import AliasingCrossCheck, CampaignStats
from repro.harness.report import render_table

#: One-line bucket glosses for the text report.
_GLOSS = {
    "masked": "no architectural consequence",
    "detected_recovered": "caught, re-execution restored golden stream",
    "detected_unrecoverable": "caught, recovery escalated past phase 2 (DUE)",
    "sdc": "corruption retired silently",
    "timeout": "no commit window within cycle budget",
}


def _fmt_interval(interval: tuple[float, float]) -> str:
    return f"[{interval[0]:.4f}, {interval[1]:.4f}]"


def render_report(
    workload_name: str,
    bits: int,
    stats: CampaignStats,
    crosscheck: AliasingCrossCheck,
) -> str:
    """The human-readable coverage report."""
    rows = [
        [name, stats.buckets[name], _GLOSS[name]]
        for name in TAXONOMY
    ]
    table = render_table(
        f"Fault-injection campaign: {workload_name} (CRC-{bits})",
        ["outcome", "count", "meaning"],
        rows,
    )
    lines = [
        table,
        "",
        f"injections : {stats.injections} planned, {stats.fired} fired",
        (
            f"coverage   : {stats.coverage:.4f} "
            f"{_fmt_interval(stats.coverage_interval)} "
            f"(detected / {stats.coverage_trials} consequential)"
        ),
        (
            f"sdc rate   : {stats.sdc_rate:.4f} "
            f"{_fmt_interval(stats.sdc_interval)} (over fired)"
        ),
    ]
    if stats.sdc_unchecked:
        lines.append(
            f"sdc split  : {stats.sdc_unchecked} escaped through unchecked "
            f"intervals (policy gap), "
            f"{stats.buckets['sdc'] - stats.sdc_unchecked} aliased through the CRC"
        )
    if stats.latency_mean is not None:
        lines.append(
            f"latency    : mean {stats.latency_mean:.1f} cy, "
            f"max {stats.latency_max} cy (detected faults)"
        )
    if stats.causes:
        causes = ", ".join(f"{k}={v}" for k, v in stats.causes.items())
        lines.append(f"causes     : {causes}")
    lines.append(
        f"aliasing   : measured {crosscheck.measured:.4f} "
        f"{_fmt_interval(crosscheck.interval)} over {crosscheck.trials} CRC-decided "
        f"trials; closed form [{crosscheck.bound_low:.4g}, {crosscheck.bound_high:.4g}] "
        f"-> {'CONSISTENT' if crosscheck.consistent else 'INCONSISTENT'}"
    )
    return "\n".join(lines)


def report_payload(
    workload_name: str,
    bits: int,
    seed: int,
    stats: CampaignStats,
    crosscheck: AliasingCrossCheck,
    outcomes: Sequence[Outcome],
) -> dict:
    """The JSON report (deterministic; see module docstring)."""
    return {
        "schema": 2,
        "workload": workload_name,
        "fingerprint_bits": bits,
        "seed": seed,
        "injections": stats.injections,
        "fired": stats.fired,
        "buckets": dict(stats.buckets),
        "coverage": {
            "rate": stats.coverage,
            "interval": list(stats.coverage_interval),
            "trials": stats.coverage_trials,
        },
        "sdc": {
            "rate": stats.sdc_rate,
            "interval": list(stats.sdc_interval),
            "unchecked": stats.sdc_unchecked,
        },
        "latency": {
            "mean": stats.latency_mean,
            "max": stats.latency_max,
        },
        "causes": dict(stats.causes),
        "aliasing": {
            "bits": crosscheck.bits,
            "aliased": crosscheck.aliased,
            "trials": crosscheck.trials,
            "measured": crosscheck.measured,
            "interval": list(crosscheck.interval),
            "bound_low": crosscheck.bound_low,
            "bound_high": crosscheck.bound_high,
            "consistent": crosscheck.consistent,
        },
        "outcomes": [
            {
                "classification": outcome.classification,
                "victim": outcome.victim,
                "target": outcome.target,
                "bit": outcome.bit,
                "inject_index": outcome.inject_index,
                "fired": outcome.fired,
                "detected": outcome.detected,
                "cause": outcome.cause,
                "latency": outcome.latency,
                "aliased": outcome.aliased,
                "unchecked": outcome.unchecked,
                "commits": outcome.commits,
                "recoveries": outcome.recoveries,
            }
            for outcome in outcomes
        ],
    }


def write_report(path: str | Path, payload: dict) -> None:
    """Write the JSON report with a canonical, diff-stable rendering."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
