"""Campaign planning: stratified, reproducible injection-site sampling.

A campaign is a list of :class:`InjectionJob` — each one a pure function
of its :class:`~repro.sim.config.SystemConfig` and :class:`InjectionSpec`
with a SHA-256 content-hash key, exactly like
:class:`~repro.exec.jobs.SampleJob`, so campaigns ride the existing
execution pool and persistent cache unchanged.

Sampling is stratified the way injection-campaign studies stratify
(RepTFD-style): the plan round-robins over the cross product of victim
core (vocal / mute) and fault-target class (result / store address /
branch target, restricted to classes the workload actually exercises),
and within each stratum rotates the flipped bit through the eight octets
of the 64-bit datapath while drawing the injection point from a
per-stratum seeded RNG.  Identical ``(workload, injections, seed,
config)`` inputs therefore enumerate byte-identical plans on every
machine — the property the resumable cache keys rely on.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.exec.jobs import config_payload, resolve_workload
from repro.sim.config import (
    BusConfig,
    CacheStyle,
    CoherenceStyle,
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    Mode,
    ProtectionPolicy,
    RedundancyConfig,
    SystemConfig,
    TLBConfig,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Workload

#: Version stamp folded into every campaign job key and cache record.
#: Bump whenever injection/classification semantics change in a way that
#: invalidates previously cached outcomes.
#: v2: BusConfig grew the CoherenceStyle/directory-interconnect fields,
#: changing every config payload.
#: v3: SystemConfig grew pair_policies (per-pair protection) and the
#: classifier grew unchecked-interval attribution, changing every
#: config payload and outcome record.
CAMPAIGN_SCHEMA_VERSION = 3

#: Default architectural window: the golden signature and every
#: classification cover the first this-many user commits.
DEFAULT_COMMIT_TARGET = 400

#: Default per-run cycle budget; a run that cannot produce the commit
#: window within it classifies as a timeout/hang.
DEFAULT_MAX_CYCLES = 120_000


@dataclass(frozen=True)
class InjectionSpec:
    """One injection site: everything one injected run depends on."""

    workload_name: str
    seed: int  # workload seed (shared with the golden reference)
    victim: str  # "vocal" | "mute"
    target: str  # see repro.core.faults.TARGETS
    bit: int  # flipped bit position, [0, 64)
    inject_index: int  # eligible instructions to skip before firing
    commit_target: int = DEFAULT_COMMIT_TARGET
    max_cycles: int = DEFAULT_MAX_CYCLES

    def __post_init__(self) -> None:
        from repro.core.faults import TARGETS

        if self.victim not in ("vocal", "mute"):
            raise ValueError(f"victim must be 'vocal' or 'mute', got {self.victim!r}")
        if self.target not in TARGETS:
            raise ValueError(f"target must be one of {TARGETS}, got {self.target!r}")
        if not 0 <= self.bit < 64:
            raise ValueError(f"bit must be in [0, 64), got {self.bit}")


@dataclass(frozen=True)
class InjectionJob:
    """One campaign sample: a pure function of ``config`` and ``spec``."""

    config: SystemConfig
    spec: InjectionSpec

    def payload(self) -> dict[str, Any]:
        """The canonical dict this job's key is the hash of."""
        return {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "kind": "injection",
            "config": config_payload(self.config),
            "spec": config_payload(self.spec),
        }

    @property
    def key(self) -> str:
        canonical = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        spec = self.spec
        return (
            f"{spec.workload_name}/{spec.victim}/{spec.target}"
            f"/bit{spec.bit}@{spec.inject_index}"
        )


def campaign_config(
    fingerprint_bits: int = 16,
    fingerprint_interval: int = 8,
    comparison_latency: int = 10,
    coherence: str = "shared",
    n_logical: int = 1,
    policy: ProtectionPolicy | None = None,
) -> SystemConfig:
    """A Reunion system sized for thousands of short injected runs.

    Mirrors the integration-test scale (tiny caches, short watchdog) so
    one injected run costs milliseconds; the multi-instruction
    fingerprint interval matters — propagated corruption must be able to
    put several divergent words into one interval, or CRC aliasing (the
    cross-check's subject) could never be observed.

    ``coherence`` picks the memory backend (``shared`` / ``snoopy`` /
    ``directory``) and ``n_logical`` the pair count, so campaigns can
    probe fault behavior on the directory backend's many-pair systems
    (injection and classification always target pair 0).  ``policy``
    applies one :class:`~repro.sim.config.ProtectionPolicy` uniformly
    across the pairs (the frontier sweep measures coverage per policy).
    """
    if coherence not in ("shared", "snoopy", "directory"):
        raise ValueError(
            f"coherence must be 'shared', 'snoopy' or 'directory', got {coherence!r}"
        )
    if coherence == "shared":
        cache_style, bus = CacheStyle.SHARED, BusConfig()
    else:
        cache_style = CacheStyle.SNOOPY
        bus = BusConfig(coherence=CoherenceStyle(coherence))
    return SystemConfig(
        n_logical=n_logical,
        pair_policies=(policy,) * n_logical if policy is not None else None,
        core=CoreConfig(width=4, rob_size=32, store_buffer_size=8, frontend_latency=3),
        l1=L1Config(size_bytes=1024, assoc=2, load_to_use=2, mshrs=4),
        l2=L2Config(size_bytes=16 * 1024, assoc=8, banks=2, hit_latency=8, mshrs=8),
        tlb=TLBConfig(itlb_entries=8, dtlb_entries=16, page_bits=10, hw_fill_latency=10),
        memory=MemoryConfig(latency=40),
        cache_style=cache_style,
        bus=bus,
        redundancy=RedundancyConfig(
            mode=Mode.REUNION,
            fingerprint_bits=fingerprint_bits,
            fingerprint_interval=fingerprint_interval,
            comparison_latency=comparison_latency,
            divergence_timeout=2_000,
        ),
    )


def available_targets(workload: "Workload", config: SystemConfig, seed: int = 0):
    """The fault-target classes this workload's code can exercise.

    Inspects the static instruction mix of logical processor 0's
    program: a store-address fault needs a store to corrupt, a
    branch-target fault a control instruction.  Results are always
    injectable.
    """
    program = workload.programs(config.n_logical, seed)[0]
    targets = ["result"]
    if any(inst.is_store for inst in program.instructions):
        targets.append("store_addr")
    if any(inst.is_control for inst in program.instructions):
        targets.append("branch_target")
    return tuple(targets)


def plan_campaign(
    workload_name: str,
    injections: int,
    seed: int = 0,
    config: SystemConfig | None = None,
    commit_target: int = DEFAULT_COMMIT_TARGET,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    victims: Sequence[str] = ("vocal", "mute"),
) -> list[InjectionJob]:
    """Enumerate ``injections`` stratified injection sites.

    Strata are the cross product of ``victims`` and the workload's
    available fault targets, filled round-robin so every stratum gets
    ``injections / len(strata)`` samples (±1).  Within a stratum the
    flipped bit rotates through the eight octets (low bits alias
    differently through arithmetic than high bits) and the injection
    point is drawn from a stratum-seeded RNG over a window early enough
    that the fault lands well inside the measured commit window.
    """
    if injections < 1:
        raise ValueError("a campaign needs at least one injection")
    if config is None:
        config = campaign_config()
    workload = resolve_workload(workload_name)
    targets = available_targets(workload, config, seed)
    strata = [(victim, target) for victim in victims for target in targets]
    rngs = {
        stratum: random.Random(f"{seed}:{stratum[0]}:{stratum[1]}")
        for stratum in strata
    }
    draws = {stratum: 0 for stratum in strata}

    jobs: list[InjectionJob] = []
    for index in range(injections):
        victim, target = stratum = strata[index % len(strata)]
        rng = rngs[stratum]
        draw = draws[stratum]
        draws[stratum] += 1
        octet = draw % 8
        bit = octet * 8 + rng.randrange(8)
        if target == "result":
            # Nearly every instruction produces a result: an eligible-
            # instruction index up to half the commit window fires early.
            window = max(1, commit_target // 2)
        else:
            # Stores / branches are a fraction of the mix; stay shallow
            # so the fault still fires within the window.
            window = max(1, commit_target // 16)
        inject_index = rng.randrange(window)
        jobs.append(
            InjectionJob(
                config=config,
                spec=InjectionSpec(
                    workload_name=workload.name,
                    seed=seed,
                    victim=victim,
                    target=target,
                    bit=bit,
                    inject_index=inject_index,
                    commit_target=commit_target,
                    max_cycles=max_cycles,
                ),
            )
        )
    return jobs
