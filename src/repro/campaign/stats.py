"""Campaign statistics: binomial rates with Wilson intervals.

Coverage and SDC rates are binomial proportions over modest trial
counts, so every reported rate carries a Wilson score interval (better
behaved than the normal approximation near 0 and 1 — exactly where
coverage numbers live).

The aliasing cross-check ties the measurement back to
:mod:`repro.core.coverage`'s closed form: among faulted intervals that
actually reached a fingerprint comparison with equal instruction counts
(the only trials where the CRC decides), the fraction that compared
*equal* is the measured aliasing rate.  The closed form — ``2^-N`` for
a plain N-bit CRC, ``2^-(N-1)`` with two-stage parity folding — models
*random* corruption and is an upper bound for real upsets: a single-bit
flip that stays a low-weight delta is exactly what a CRC detects
outright, so structured propagation can only alias less.  The campaign
is therefore consistent with the theory when the measured rate does not
statistically exceed the band (its Wilson interval's lower edge stays
at or below ``2^-(N-1)``); the *two-sided* agreement under the random-
corruption assumption is checked directly by the Monte-Carlo test in
``tests/campaign/test_coverage_montecarlo.py``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.campaign.outcome import (
    DETECTED_RECOVERED,
    DETECTED_UNRECOVERABLE,
    SDC,
    TAXONOMY,
    TIMEOUT,
    Outcome,
)
from repro.core.coverage import aliasing_probability


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion (95% by default)."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"bad binomial counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True)
class CampaignStats:
    """Aggregate rates over one campaign's classified outcomes."""

    injections: int
    fired: int
    buckets: dict[str, int]  # classification -> count, all TAXONOMY keys
    #: Coverage: of fired, non-masked faults, the fraction the machinery
    #: detected (recovered or DUE) before corruption went silent.
    coverage: float
    coverage_interval: tuple[float, float]
    coverage_trials: int
    #: SDC rate over all fired faults.
    sdc_rate: float
    sdc_interval: tuple[float, float]
    #: Of the SDCs, how many escaped through an interval a partial
    #: protection policy left unchecked (vs. aliasing through the CRC).
    #: Always 0 under full protection.
    sdc_unchecked: int
    #: Detection-latency distribution (cycles), detected faults only.
    latency_mean: float | None
    latency_max: int | None
    causes: dict[str, int]  # detection cause -> count


@dataclass(frozen=True)
class AliasingCrossCheck:
    """Measured CRC aliasing vs. the closed-form band."""

    bits: int
    aliased: int  # faulted intervals that compared equal
    trials: int  # faulted intervals whose comparison the CRC decided
    measured: float
    interval: tuple[float, float]  # Wilson interval on the measured rate
    bound_low: float  # closed form, single-stage: 2^-N
    bound_high: float  # closed form, two-stage upper bound: 2^-(N-1)
    #: Measured rate does not statistically exceed the closed-form upper
    #: bound: Wilson lower edge <= bound_high (see module docstring for
    #: why the bound is one-sided for structured upset corruption).
    consistent: bool


def summarize(outcomes: Sequence[Outcome]) -> CampaignStats:
    """Fold classified outcomes into campaign-level rates."""
    buckets = Counter(outcome.classification for outcome in outcomes)
    for name in TAXONOMY:
        buckets.setdefault(name, 0)
    fired = sum(1 for outcome in outcomes if outcome.fired)
    detected = buckets[DETECTED_RECOVERED] + buckets[DETECTED_UNRECOVERABLE]
    # Masked faults had no consequence to cover; the denominator is the
    # faults that demanded detection (detected + escaped + hung).
    coverage_trials = detected + buckets[SDC] + buckets[TIMEOUT]
    coverage = detected / coverage_trials if coverage_trials else 0.0
    sdc_rate = buckets[SDC] / fired if fired else 0.0
    sdc_unchecked = sum(
        1
        for outcome in outcomes
        if outcome.classification == SDC and outcome.unchecked
    )

    latencies = [
        outcome.latency
        for outcome in outcomes
        if outcome.detected and outcome.latency is not None
    ]
    causes = Counter(
        outcome.cause for outcome in outcomes if outcome.detected and outcome.cause
    )
    return CampaignStats(
        injections=len(outcomes),
        fired=fired,
        buckets={name: buckets[name] for name in TAXONOMY},
        coverage=coverage,
        coverage_interval=wilson_interval(detected, coverage_trials),
        coverage_trials=coverage_trials,
        sdc_rate=sdc_rate,
        sdc_interval=wilson_interval(buckets[SDC], fired),
        sdc_unchecked=sdc_unchecked,
        latency_mean=(sum(latencies) / len(latencies)) if latencies else None,
        latency_max=max(latencies) if latencies else None,
        causes=dict(sorted(causes.items())),
    )


def crosscheck_aliasing(
    outcomes: Sequence[Outcome], bits: int
) -> AliasingCrossCheck:
    """Compare the measured aliasing rate with the closed-form band.

    A trial is a fault whose interval reached its comparison and was
    decided by the fingerprints themselves: either the CRCs caught it
    (``cause == "fingerprint"``) or they aliased (compared equal).
    Count mismatches, watchdog catches, flushes, and pipeline-masked
    faults never consulted the CRC, so they are excluded.
    """
    aliased = sum(1 for outcome in outcomes if outcome.aliased)
    caught = sum(
        1 for outcome in outcomes if outcome.detected and outcome.cause == "fingerprint"
    )
    trials = aliased + caught
    measured = aliased / trials if trials else 0.0
    interval = wilson_interval(aliased, trials)
    bound_low = aliasing_probability(bits, two_stage=False)
    bound_high = aliasing_probability(bits, two_stage=True)
    consistent = interval[0] <= bound_high
    return AliasingCrossCheck(
        bits=bits,
        aliased=aliased,
        trials=trials,
        measured=measured,
        interval=interval,
        bound_low=bound_low,
        bound_high=bound_high,
        consistent=consistent,
    )
