"""Campaign checkpointing through the :mod:`repro.exec` cache.

Every classified :class:`~repro.campaign.outcome.Outcome` persists under
its job's content-hash key the moment it completes, so an interrupted
campaign has already checkpointed everything it finished.  ``--resume``
re-plans the identical job list (plans are pure functions of their
inputs) and reads those records back as cache hits — a fully-complete
campaign resumes with *zero* simulations and byte-identical reports.

A campaign started *without* ``--resume`` still writes records (the
checkpoint must exist before it can be resumed) but never reads them,
via :class:`~repro.exec.cache.FreshWriteCache` — a fresh invocation is
a fresh experiment.

Campaign records live under ``<cache root>/campaign/`` so sample records
and outcome records can never collide; the same ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE`` environment knobs apply.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

from repro.campaign.outcome import TAXONOMY, Outcome
from repro.campaign.plan import CAMPAIGN_SCHEMA_VERSION
from repro.exec.cache import (
    DEFAULT_CACHE_DIR,
    FreshWriteCache,
    NullCache,
    ResultCache,
    cache_enabled,
)


class OutcomeCache(ResultCache):
    """The exec result store, reparameterized for campaign outcomes."""

    schema = CAMPAIGN_SCHEMA_VERSION
    value_field = "outcome"

    def _encode(self, value: Outcome) -> dict:
        return dataclasses.asdict(value)

    def _decode(self, payload: dict) -> Outcome:
        fields = {f.name for f in dataclasses.fields(Outcome)}
        if set(payload) != fields:
            raise ValueError("outcome record field mismatch")
        outcome = Outcome(**payload)
        if outcome.classification not in TAXONOMY:
            raise ValueError(f"bad classification {outcome.classification!r}")
        return outcome


def campaign_root(root: str | os.PathLike | None = None) -> Path:
    """The campaign shard of the configured cache root."""
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return Path(root) / "campaign"


def campaign_cache(
    resume: bool, root: str | os.PathLike | None = None
) -> ResultCache:
    """The checkpoint store for one campaign invocation.

    ``resume=True`` reads and writes; ``resume=False`` writes the
    checkpoint but serves no hits.  ``REPRO_NO_CACHE=1`` disables both.
    """
    if not cache_enabled():
        return NullCache()
    store = OutcomeCache(campaign_root(root))
    if resume:
        return store
    return FreshWriteCache(store)
