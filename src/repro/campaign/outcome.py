"""Run one injected sample against a golden reference and classify it.

The architectural yardstick is a *commit-stream signature*: a SHA-256
over the first ``commit_target`` user commits on the vocal core (PC,
result, store address/value, branch target — the same update classes
the fingerprint hashes).  The golden reference runs the identical
system with no injection; an injected run whose signature matches
retired the exact same architectural stream, bit for bit.

Classification (the standard fault-injection taxonomy):

=====================  ====================================================
``masked``             The upset never perturbed the architectural stream:
                       squashed in flight, overwritten, or flushed by an
                       unrelated recovery before its interval compared.
``detected_recovered`` The pair's machinery caught the divergence
                       (fingerprint/count mismatch, watchdog, or sync
                       divergence) and re-execution restored the golden
                       stream.
``detected_unrecoverable`` Detected, but the re-execution protocol
                       escalated past phase 2 — the paper's DUE outcome.
``sdc``                The corrupted stream retired architecturally
                       (signature mismatch): silent data corruption, the
                       outcome CRC aliasing makes possible.
``timeout``            The run could not produce the commit window within
                       its cycle budget (hung or wedged).
=====================  ====================================================

Detection cause and latency come from the :mod:`repro.obs` event stream
via :func:`repro.core.faults.attribute_detections` — the injection is
matched to *its own* fingerprint interval's comparison, never to the
first recovery that happens along.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.campaign.plan import InjectionSpec
from repro.core.faults import FaultInjector, attribute_detections
from repro.exec.jobs import resolve_workload
from repro.sim.cmp import CMPSystem
from repro.sim.config import SystemConfig
from repro.sim.options import SimOptions

MASKED = "masked"
DETECTED_RECOVERED = "detected_recovered"
DETECTED_UNRECOVERABLE = "detected_unrecoverable"
SDC = "sdc"
TIMEOUT = "timeout"

#: The taxonomy, in report order.  Every injected run lands in exactly
#: one bucket.
TAXONOMY = (MASKED, DETECTED_RECOVERED, DETECTED_UNRECOVERABLE, SDC, TIMEOUT)

#: Cycles per ``system.run`` slice while polling the commit probe.
_RUN_CHUNK = 1_024


@dataclass(frozen=True)
class Outcome:
    """One classified injection (JSON-ready scalars only)."""

    classification: str
    victim: str
    target: str
    bit: int
    inject_index: int
    #: The injector actually fired (False: the eligible-instruction
    #: window ended first; the run is golden by construction → masked).
    fired: bool
    #: The faulted entry entered a fingerprint interval.
    absorbed: bool
    #: Attribution: the pair caught a divergence traceable to this fault.
    detected: bool
    #: "fingerprint" | "count" | "timeout" | "sync_divergence" | None.
    cause: str | None
    #: Injection-to-detection cycles (None when undetected).
    latency: int | None
    #: The faulted interval's fingerprints compared equal — CRC aliasing.
    aliased: bool
    #: An unrelated recovery flushed the faulted interval uncompared.
    flushed: bool
    #: The faulted interval closed unchecked under a partial protection
    #: policy — an SDC with this set escaped through the policy's
    #: coverage gap, not through CRC aliasing.
    unchecked: bool
    #: Run diagnostics.
    commits: int
    cycles: int
    recoveries: int
    signature_matched: bool


@dataclass(frozen=True)
class GoldenReference:
    """The uninjected run's signature and timing envelope."""

    signature: str
    commits: int
    cycles: int


class _CommitProbe:
    """Vocal retire hook: count user commits, hash the first ``limit``."""

    __slots__ = ("limit", "count", "_hash")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.count = 0
        self._hash = hashlib.sha256()

    def __call__(self, entry) -> None:
        if self.count >= self.limit:
            return
        self.count += 1
        self._hash.update(
            repr(
                (
                    entry.pc,
                    entry.result,
                    entry.addr,
                    entry.store_value,
                    entry.actual_next,
                )
            ).encode()
        )

    def signature(self) -> str:
        return self._hash.hexdigest()


def _build_system(config: SystemConfig, spec: InjectionSpec, trace: str) -> CMPSystem:
    workload = resolve_workload(spec.workload_name)
    programs = workload.programs(config.n_logical, spec.seed)
    schedules = workload.itlb_schedules(config.n_logical, spec.seed)
    # Dual execution always: fault-armed pairs disable the replay fast
    # path anyway, and running the golden reference in the identical
    # execution model keeps the two runs' timing envelopes comparable.
    options = SimOptions(kernel="event", execution="dual", trace=trace)
    return CMPSystem(config, programs, schedules, options=options)


def _run_to_commits(system: CMPSystem, probe: _CommitProbe, max_cycles: int) -> None:
    while (
        probe.count < probe.limit
        and not system.failed
        and system.now < max_cycles
    ):
        system.run(min(_RUN_CHUNK, max_cycles - system.now))


def golden_reference(config: SystemConfig, spec: InjectionSpec) -> GoldenReference:
    """Run the uninjected reference for ``spec``'s workload window.

    Any spec from the same plan works: the reference depends only on the
    (config, workload, seed, commit window) projection.
    """
    system = _build_system(config, spec, trace="off")
    probe = _CommitProbe(spec.commit_target)
    system.vocal_cores[0].retire_hook = probe
    _run_to_commits(system, probe, spec.max_cycles)
    if probe.count < spec.commit_target:
        raise RuntimeError(
            f"golden run reached only {probe.count}/{spec.commit_target} commits "
            f"in {spec.max_cycles} cycles; raise max_cycles or shrink the window"
        )
    return GoldenReference(
        signature=probe.signature(), commits=probe.count, cycles=system.now
    )


def classify(
    fired: bool,
    failed: bool,
    commits: int,
    commit_target: int,
    signature_matched: bool,
    detected: bool,
) -> str:
    """Pure classification kernel: exactly one taxonomy bucket.

    Precedence: an unfired injection is golden by construction; a failed
    pair is the DUE outcome regardless of how far it got; a run that
    never produced the window hung; a signature mismatch is SDC *even
    when a later recovery fired* (the corruption already retired); what
    remains is detected-and-recovered or fully masked.
    """
    if not fired:
        return MASKED
    if failed:
        return DETECTED_UNRECOVERABLE
    if commits < commit_target:
        return TIMEOUT
    if not signature_matched:
        return SDC
    if detected:
        return DETECTED_RECOVERED
    return MASKED


def run_injection(
    config: SystemConfig, spec: InjectionSpec, golden: GoldenReference
) -> Outcome:
    """Execute one injected run and classify it against ``golden``."""
    system = _build_system(config, spec, trace="events")
    pair = system.pairs[0]
    victim_core = pair.vocal if spec.victim == "vocal" else pair.mute
    injector = FaultInjector(
        interval=0,
        seed=spec.seed ^ (spec.bit << 8) ^ spec.inject_index,
        target=spec.target,
        bit=spec.bit,
    )
    injector.attach(victim_core)
    injector.inject_once(after=spec.inject_index)

    probe = _CommitProbe(spec.commit_target)
    system.vocal_cores[0].retire_hook = probe
    _run_to_commits(system, probe, spec.max_cycles)

    fired = bool(injector.records)
    detected = False
    cause = None
    latency = None
    aliased = False
    flushed = False
    absorbed = False
    unchecked = False
    if fired:
        outcome = attribute_detections(
            injector.records, system.obs.log.snapshot(), pair_source="pair0"
        )[0]
        absorbed = outcome.absorbed
        detected = outcome.detected
        cause = outcome.cause
        latency = outcome.latency
        aliased = outcome.aliased
        flushed = outcome.flushed
        unchecked = outcome.unchecked

    signature_matched = (
        probe.count >= spec.commit_target and probe.signature() == golden.signature
    )
    classification = classify(
        fired=fired,
        failed=system.failed,
        commits=probe.count,
        commit_target=spec.commit_target,
        signature_matched=signature_matched,
        detected=detected,
    )
    return Outcome(
        classification=classification,
        victim=spec.victim,
        target=spec.target,
        bit=spec.bit,
        inject_index=spec.inject_index,
        fired=fired,
        absorbed=absorbed,
        detected=detected,
        cause=cause,
        latency=latency,
        aliased=aliased,
        flushed=flushed,
        unchecked=unchecked,
        commits=probe.count,
        cycles=system.now,
        recoveries=system.recoveries(),
        signature_matched=signature_matched,
    )
