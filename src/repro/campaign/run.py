"""Campaign orchestration over the execution pool.

The parent process plans the campaign, runs the golden reference once,
then fans the injected runs out over :class:`~repro.exec.pool.
ExecutionPool` workers.  The per-job runner is a :class:`CampaignRunner`
instance holding the shared config and golden reference — fork-started
workers inherit it by memory copy, and the serial fallback calls it
directly, so both paths execute the identical closure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.outcome import GoldenReference, Outcome, golden_reference, run_injection
from repro.campaign.plan import InjectionJob, plan_campaign
from repro.campaign.resume import campaign_cache
from repro.campaign.stats import AliasingCrossCheck, CampaignStats, crosscheck_aliasing, summarize
from repro.exec.pool import ExecutionPool
from repro.exec.progress import Progress, RunManifest
from repro.sim.config import SystemConfig, partial_protection_modes


@dataclass
class CampaignRunner:
    """The pool's ``run_job`` callable for injection jobs."""

    golden: GoldenReference

    def __call__(self, job: InjectionJob) -> Outcome:
        return run_injection(job.config, job.spec, self.golden)


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign invocation produced."""

    jobs: list[InjectionJob]
    outcomes: list[Outcome]  # plan order
    golden: GoldenReference
    stats: CampaignStats
    crosscheck: AliasingCrossCheck
    manifest: RunManifest


def run_campaign(
    workload_name: str,
    injections: int,
    seed: int = 0,
    config: SystemConfig | None = None,
    commit_target: int | None = None,
    max_cycles: int | None = None,
    workers: int = 1,
    resume: bool = False,
    cache_root: str | None = None,
    timeout: float | None = None,
    progress: Progress | None = None,
    allow_partial: bool = False,
) -> CampaignResult:
    """Plan, execute (or resume), and summarize one campaign.

    ``allow_partial`` gates configs whose pairs run a *partial*
    protection policy (interval-sampled / unprotected / dynamic).  The
    golden signature spans every commit in the window, including commits
    from intervals such a policy never checks, so the headline coverage
    number measures the policy's coverage gap as much as the
    fingerprint's strength.  That is exactly what the frontier sweep
    wants (it passes ``allow_partial=True`` and reports the unchecked
    escapes separately) and exactly what a plain ``repro campaign``
    report would misstate — so the default refuses loudly instead of
    printing a silently wrong report.
    """
    plan_kwargs = {}
    if commit_target is not None:
        plan_kwargs["commit_target"] = commit_target
    if max_cycles is not None:
        plan_kwargs["max_cycles"] = max_cycles
    jobs = plan_campaign(
        workload_name, injections, seed=seed, config=config, **plan_kwargs
    )
    config = jobs[0].config
    partial_modes = partial_protection_modes(config)
    if partial_modes and not allow_partial:
        raise ValueError(
            "campaign config has partial protection policies "
            f"({', '.join(partial_modes)}): the golden signature covers "
            "intervals these policies never check, so the plain campaign "
            "report would blame the fingerprint for policy coverage gaps. "
            "Use `repro frontier` to measure partial-policy coverage, or "
            "pass allow_partial=True if the unchecked-escape accounting "
            "is what you want."
        )

    golden = golden_reference(config, jobs[0].spec)
    cache = campaign_cache(resume, cache_root)
    # A running experiment service takes the batch (the golden travels
    # with the sweep — it is a pure function of the config, so every
    # client computes the identical reference); fall back locally
    # otherwise or if the daemon dies mid-sweep.
    from repro.serve.client import ServiceUnavailable, service_pool

    results = manifest = None
    service = service_pool(golden=golden, client_id="campaign")
    if service is not None:
        try:
            results, manifest = service.run(jobs, cache=cache, progress=progress)
        except ServiceUnavailable:
            results = manifest = None
    if results is None:
        pool = ExecutionPool(
            workers=workers, timeout=timeout, run_job=CampaignRunner(golden)
        )
        results, manifest = pool.run(jobs, cache=cache, progress=progress)
    outcomes = [results[job.key] for job in jobs]

    stats = summarize(outcomes)
    crosscheck = crosscheck_aliasing(
        outcomes, config.redundancy.fingerprint_bits
    )
    return CampaignResult(
        jobs=jobs,
        outcomes=outcomes,
        golden=golden,
        stats=stats,
        crosscheck=crosscheck,
        manifest=manifest,
    )
