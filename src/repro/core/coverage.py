"""Analytic soft-error coverage model (Sections 2.1 and 4.3).

Microprocessors are engineered to *soft-error budgets* (Section 2.1,
citing Mukherjee et al. [13]): a maximum rate of undetected corruptions,
usually expressed in FIT (failures in 10^9 device-hours).  Reunion's
residual undetected-error rate is the raw upset rate times the
fingerprint's aliasing probability — a mismatch that hashes to the same
CRC value slips through phase one *and* phase two of the re-execution
protocol and becomes either silent corruption or a detected-unrecoverable
failure.

This module provides the closed-form pieces of that budget calculation,
matching the analysis of the fingerprinting paper [21]:

* aliasing probability ``2^-N`` for an ``N``-bit CRC, doubled to
  ``2^-(N-1)`` by the two-stage parity front end;
* the undetected-FIT computation and budget check;
* the detection-latency bound: an upset is exposed no later than its
  interval's comparison completes.
"""

from __future__ import annotations

from dataclasses import dataclass


def aliasing_probability(bits: int, two_stage: bool = True) -> float:
    """Probability a random corruption produces a matching fingerprint.

    Assuming all combinations of bit flips are equally likely, a CRC of
    width ``bits`` aliases with probability ``2^-bits``; parity-tree
    space compression is linear, so it exactly doubles this (Section
    4.3): at most ``2^-(bits-1)``.
    """
    if not 1 <= bits <= 64:
        raise ValueError("CRC width must be in [1, 64]")
    return 2.0 ** -(bits - 1) if two_stage else 2.0**-bits


def undetected_fit(
    upset_fit: float, bits: int = 16, two_stage: bool = True
) -> float:
    """Residual undetected-error rate after fingerprint checking.

    ``upset_fit`` is the raw rate of architecturally-visible datapath
    upsets (failures per 10^9 hours) for the protected pair.
    """
    if upset_fit < 0:
        raise ValueError("upset rate cannot be negative")
    return upset_fit * aliasing_probability(bits, two_stage)


def meets_budget(
    upset_fit: float,
    budget_fit: float,
    bits: int = 16,
    two_stage: bool = True,
) -> bool:
    """Does a fingerprint configuration meet a soft-error budget?

    The paper (via [21]): a 16-bit CRC already exceeds industry system
    error-coverage goals by an order of magnitude.
    """
    return undetected_fit(upset_fit, bits, two_stage) <= budget_fit


def minimum_crc_bits(
    upset_fit: float, budget_fit: float, two_stage: bool = True
) -> int:
    """Smallest CRC width meeting the budget (the sizing calculation)."""
    if budget_fit <= 0:
        raise ValueError("budget must be positive")
    for bits in range(4, 65):
        if meets_budget(upset_fit, budget_fit, bits, two_stage):
            return bits
    raise ValueError("no CRC width up to 64 bits meets this budget")


@dataclass(frozen=True)
class DetectionBound:
    """Worst-case cycles from upset to detection (Section 4.3 timing)."""

    fingerprint_interval: int
    comparison_latency: int
    retire_width: int = 4

    @property
    def cycles(self) -> int:
        """Interval drain + fingerprint exchange + comparison.

        An upset lands at worst at the start of an interval; detection
        happens when that interval's fingerprints have been exchanged
        and compared: the remaining interval must retire (at best
        ``retire_width`` per cycle) and the comparison costs one full
        one-way latency.
        """
        drain = (self.fingerprint_interval + self.retire_width - 1) // self.retire_width
        return self.fingerprint_interval + drain + self.comparison_latency

    def bounds(self, observed_latencies: list[int], slack: float = 8.0) -> bool:
        """Check observed latencies against the bound (with pipeline slack).

        Real detections include pipeline-drain and loose-coupling time
        the closed form abstracts; ``slack`` scales the bound to a
        usable assertion threshold for simulation output.
        """
        limit = slack * self.cycles + 60
        return all(latency <= limit for latency in observed_latencies)
