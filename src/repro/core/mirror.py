"""Mirror windows: skip the mute core's pipeline while provably symmetric.

The replay fast path's heavy lever.  From reset until the first
*asymmetry trigger*, the vocal and mute cores of a logical pair are
bit-identical automata: both start from the same architectural state,
fetch the same program through identical frontends, and — as long as no
instruction touches the memory system — neither interacts with any
shared structure.  Every private field of the mute (ROB, rename map,
predictor, check stage, counters) is, cycle for cycle, a relabeling of
the vocal's.  Simulating the mute during such a window is therefore pure
overhead: the pair can *mirror* instead — step only the vocal, compare
its closed fingerprint intervals against themselves (the virtual mute's
are identical by construction), and materialize the mute's state by
copying the vocal's the moment the window ends.

The window closes — conservatively, before any asymmetric behaviour can
occur — when the vocal *fetches* anything that will eventually touch
shared state or behave pair-asymmetrically:

* a memory instruction (loads are where input incoherence, the only
  divergence source, can enter — and any L1/L2 access mutates shared
  controller state the dual-mode mute would also have mutated);
* a serializing instruction (atomics park synchronizing requests with
  the pair controller);
* an injected handler instruction (software TLB walks perform loads);
* ``HALT`` (so end-of-run state is fully materialized).

Fetch leads dispatch by at least one cycle and issue by two, so exiting
at the *end of the fetch cycle* is strictly earlier than the first
possible shared-state access.  Other exits: an external interrupt being
posted, a fault injector arming, a retire hook or tracer attaching, or
replay being disabled (decoupling).

Materialization is a deep, memo-ed copy of every mutable private field
of the vocal core and its check gate onto the mute, cloning live
:class:`DynInstr` objects so the two pipelines share no mutable state
afterwards.  Under the flat hot loop (``REPRO_HOTLOOP=soa``) there are
no entry objects to clone: in-flight state is plain column lists indexed
by slot/packed ints, so materialization degenerates to copying the
columns and containers verbatim — the copied refs resolve identically
against the mute's copied columns.  The differential tests in
``tests/sim/test_replay_exec.py`` diff every observable between replay
and dual mode to keep this honest.
"""

from __future__ import annotations

from repro.core.check_stage import CheckGate, IntervalRecord
from repro.pipeline.ooo_core import OoOCore
from repro.pipeline.rob import DynInstr

#: DynInstr fields copied verbatim (everything except the entry-graph
#: reference fields ``dependents``, ``wait_on`` and ``prev_producer``,
#: fixed up in a second pass — copying them verbatim would alias the
#: mute's graph into the vocal's live entries).
_ENTRY_SCALARS = tuple(
    s
    for s in DynInstr.__slots__
    if s not in ("dependents", "wait_on", "prev_producer")
)

#: OoOCore counters a mirror sync copies vocal -> mute.
MIRRORED_COUNTERS = (
    "cycles",
    "user_retired",
    "total_retired",
    "injected_retired",
    "dtlb_misses",
    "itlb_misses",
    "mispredicts",
    "serializing_retired",
    "user_mem_retired",
    "interrupts_serviced",
)


def sync_counters(vocal: OoOCore, mute: OoOCore) -> None:
    """Bring the mute's observable counters up to date mid-window.

    Cheap (a dozen attribute copies plus the ARF) — called whenever
    statistics or architectural state may be read while a mirror window
    is still open, without ending the window.
    """
    for name in MIRRORED_COUNTERS:
        setattr(mute, name, getattr(vocal, name))
    mute.arf.copy_from(vocal.arf)
    mute.pc = vocal.pc
    # ``halted`` is deliberately NOT copied: in-window both cores are
    # provably un-halted (a fetched HALT ends the window before it can
    # retire), and a *True* value can only mean an external freeze —
    # which the pair treats as an exit trigger and must preserve.
    mute_gate = mute.gate
    vocal_gate = vocal.gate
    mute_gate.intervals_closed = vocal_gate.intervals_closed
    mute_gate.fingerprints_compared = vocal_gate.fingerprints_compared
    # Always 0 in-window (only full-policy pairs mirror, and full gates
    # never skip), copied for completeness.
    mute_gate.intervals_unchecked = vocal_gate.intervals_unchecked
    # The interrupt offer-boundary counter: a mirrored mute advanced in
    # lockstep with the vocal, so the cumulative offer count matches.
    mute_gate.users_offered = vocal_gate.users_offered


def materialize(vocal: OoOCore, mute: OoOCore, obs=None, source: str = "") -> None:
    """End a mirror window: copy the vocal's full private state to the mute.

    After this call the mute is exactly the core a dual-execution run
    would have produced at this cycle boundary (the window was
    symmetric), and normal per-cycle stepping can resume.  The mute
    keeps its own identity: ``core_id``, memory port, gate object,
    pair backreference, and hooks are untouched.
    """
    sync_counters(vocal, mute)
    if obs is not None:
        obs.emit(
            "mirror.materialize",
            vocal.cycles,
            source,
            rob_entries=len(vocal.rob),
            fetch_queue=len(vocal.fetch_queue),
            user_retired=vocal.user_retired,
        )

    if vocal._soa:
        _materialize_flat(vocal, mute)
    else:
        _materialize_object(vocal, mute)

    # -- frontend -------------------------------------------------------
    # Fetch-queue entries are immutable tuples: a shallow copy suffices.
    mute.fetch_queue = type(vocal.fetch_queue)(vocal.fetch_queue)
    mute.injection = type(vocal.injection)(vocal.injection)
    mute._injection_resume = vocal._injection_resume
    mute.fetch_stalled = vocal.fetch_stalled
    mute.stall_fetch_until = vocal.stall_fetch_until
    mute.predictor._table = list(vocal.predictor._table)
    mute.predictor._history = vocal.predictor._history

    # -- backend scalars ------------------------------------------------
    mute._next_seq = vocal._next_seq
    mute._check_pending = vocal._check_pending
    mute.single_step = vocal.single_step
    mute.drain = type(vocal.drain)(vocal.drain)
    mute.sb_count = vocal.sb_count
    mute._drain_inflight = vocal._drain_inflight
    mute._interrupts = type(vocal._interrupts)(vocal._interrupts)


def _materialize_object(vocal: OoOCore, mute: OoOCore) -> None:
    """Object-loop materialization: deep-clone the DynInstr graph."""
    clones: dict[int, DynInstr] = {}
    worklist: list[DynInstr] = []

    def clone(entry):
        if entry is None:
            return None
        copied = clones.get(id(entry))
        if copied is None:
            copied = DynInstr.__new__(DynInstr)
            for name in _ENTRY_SCALARS:
                setattr(copied, name, getattr(entry, name))
            copied.dependents = []
            copied.wait_on = None  # placeholders until the fixup pass
            copied.prev_producer = None
            clones[id(entry)] = copied
            worklist.append(entry)
        return copied

    mute.rob = type(vocal.rob)(clone(e) for e in vocal.rob)
    mute.ready = [clone(e) for e in vocal.ready]
    mute.completions = [(t, s, clone(e)) for (t, s, e) in vocal.completions]
    mute._store_entries = type(vocal._store_entries)(
        clone(e) for e in vocal._store_entries
    )
    mute._ser_heap = [(s, clone(e)) for (s, e) in vocal._ser_heap]
    mute.rename = {reg: clone(e) for reg, e in vocal.rename.items()}
    mute.sync_request = clone(vocal.sync_request)
    mute.resume_normal_after = clone(vocal.resume_normal_after)
    mute._unchecked = type(vocal._unchecked)(
        clone(e) for e in vocal._unchecked
    )

    # Wake-up lists may reference entries reachable nowhere else (e.g.
    # squashed consumers): the worklist grows while we fix them up.
    index = 0
    while index < len(worklist):
        original = worklist[index]
        copied = clones[id(original)]
        copied.dependents = [
            (clone(dep), slot) for dep, slot in original.dependents
        ]
        copied.wait_on = clone(original.wait_on)
        copied.prev_producer = clone(original.prev_producer)
        index += 1

    # -- check stage ----------------------------------------------------
    _materialize_gate(vocal.gate, mute.gate, clone)


#: Flat-ROB columns copied verbatim on materialization (``f_deps`` needs
#: a per-slot list copy and is handled separately).
_FLAT_COLUMNS = (
    "f_seq",
    "f_pc",
    "f_inst",
    "f_state",
    "f_pend",
    "f_v1",
    "f_v2",
    "f_res",
    "f_addr",
    "f_sval",
    "f_pred",
    "f_anext",
    "f_ccyc",
    "f_fill",
    "f_flags",
    "f_mask",
    "f_ridx",
    "f_wo",
    "f_pp",
    "f_row",
)


def _materialize_flat(vocal: OoOCore, mute: OoOCore) -> None:
    """Flat-loop materialization: copy columns and int-ref containers.

    Slot / packed refs carry no object identity — the verbatim-copied
    containers resolve against the mute's copied columns exactly as the
    originals do against the vocal's, so no clone pass is needed.  The
    ring geometry (capacity, shift, mask) is identical by construction:
    both cores share one config and ``use_soa_hotloop`` call site.
    Columns are copied *in place* — the hot loop's ``_f_cols`` bundle
    and the FlatView singletons alias the list objects by identity.
    """
    for name in _FLAT_COLUMNS:
        getattr(mute, name)[:] = getattr(vocal, name)
    for mute_edges, vocal_edges in zip(mute.f_deps, vocal.f_deps):
        mute_edges[:] = vocal_edges
    mute._f_tail = vocal._f_tail
    mute.rob = type(vocal.rob)(vocal.rob)
    mute.ready = list(vocal.ready)
    mute.completions = list(vocal.completions)
    mute._store_entries = type(vocal._store_entries)(vocal._store_entries)
    mute._ser_heap = list(vocal._ser_heap)
    mute.rename = dict(vocal.rename)
    mute._unchecked = type(vocal._unchecked)(vocal._unchecked)
    sync_request = vocal.sync_request
    if sync_request is None:
        mute.sync_request = None
    else:
        view = mute._f_views[sync_request._s]
        view._q = sync_request._q
        mute.sync_request = view
    # In-window the vocal provably never entered re-execution, so this
    # is always None; copied for symmetry with the object path.
    mute.resume_normal_after = vocal.resume_normal_after
    _materialize_gate(vocal.gate, mute.gate)


def _materialize_gate(
    vocal_gate: CheckGate, mute_gate: CheckGate, clone=None
) -> None:
    if clone is None:
        # Flat mode: _pending holds immutable (packed, index, offered)
        # tuples over the columns copied above.
        mute_gate._pending = type(vocal_gate._pending)(vocal_gate._pending)
    else:
        mute_gate._pending = type(vocal_gate._pending)(
            (clone(entry), index, offered)
            for entry, index, offered in vocal_gate._pending
        )
    mute_gate._closed = type(vocal_gate._closed)(
        IntervalRecord(
            index=r.index,
            fingerprint=r.fingerprint,
            count=r.count,
            close_cycle=r.close_cycle,
            serializing=r.serializing,
            has_sync=r.has_sync,
            has_halt=r.has_halt,
        )
        for r in vocal_gate._closed
    )
    mute_gate._retire_time = dict(vocal_gate._retire_time)
    mute_gate._count = vocal_gate._count
    mute_gate.users_offered = vocal_gate.users_offered
    mute_gate._has_sync = vocal_gate._has_sync
    mute_gate._has_halt = vocal_gate._has_halt
    mute_gate._index = vocal_gate._index
    mute_gate._last_offer = vocal_gate._last_offer
    mute_gate._accum._crc = vocal_gate._accum._crc
    mute_gate._words = list(vocal_gate._words)
    mute_gate.single_step = vocal_gate.single_step
