"""The logical processor pair: vocal/mute coupling and recovery.

This module implements Section 3's execution model and Section 4.3's
microarchitecture:

* **fingerprint exchange** — when both cores have closed fingerprint
  interval *k*, the pair compares them; a match clears the interval for
  retirement one comparison latency after the *later* close (the cores
  "swap" fingerprints, so the observed latency includes any vocal/mute
  skew — the loose-coupling cost of Section 5.3);
* **synchronizing requests** — atomics always, and the first load during
  re-execution, are performed once by the shared cache controller when
  both cores have arrived, and the single coherent value is delivered to
  both (Definition 10);
* **the re-execution protocol** (Definition 11, Figure 4) — on mismatch,
  both cores roll back to safe state and single-step to the first memory
  read, issued as a synchronizing request; a second mismatch escalates to
  the vocal-to-mute ARF copy; a third is an unrecoverable failure;
* **a divergence watchdog** — input incoherence can send the mute down a
  wild path that never produces a matching interval (e.g. into a halt or
  a divergent loop); if one side's closed fingerprint waits longer than
  ``divergence_timeout`` for its partner, the pair treats it as a
  detected divergence and recovers.
"""

from __future__ import annotations

import enum

from repro.core.check_stage import CheckGate, ProtectionState
from repro.core.mirror import materialize, sync_counters
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import atomic_result
from repro.memory.l2_controller import SharedL2Controller
from repro.pipeline.gates import NEVER
from repro.pipeline.ooo_core import OoOCore
from repro.sim.config import ProtectionPolicy, SystemConfig

#: Base address of the (per-core, uncontended) interrupt vector data.
INTERRUPT_VECTOR_BASE = 0x4800_0000


def default_interrupt_handler(vector: int = 0) -> list[Instruction]:
    """A minimal external-interrupt service routine.

    Trap entry, two vector-table loads, a non-idempotent device
    acknowledge, trap exit — the serializing mix of a real handler.
    """
    base = INTERRUPT_VECTOR_BASE + (vector % 64) * 64
    return [
        Instruction(Op.TRAP),
        Instruction(Op.LOAD, rd=0, rs1=0, imm=base),
        Instruction(Op.LOAD, rd=0, rs1=0, imm=base + 8),
        Instruction(Op.MMUOP),
        Instruction(Op.TRAP),
    ]


class PairState(enum.Enum):
    NORMAL = "normal"
    WAIT_RECOVERY = "wait-recovery"  # mismatch seen; fingerprints in flight
    SINGLE_STEP = "single-step"  # re-execution protocol running


class LogicalPair:
    """One logical processor: a vocal core and a mute core."""

    def __init__(
        self,
        pair_id: int,
        vocal: OoOCore,
        mute: OoOCore,
        controller: SharedL2Controller,
        config: SystemConfig,
        policy: ProtectionPolicy | None = None,
    ) -> None:
        self.pair_id = pair_id
        self.vocal = vocal
        self.mute = mute
        self.controller = controller
        self.config = config
        self.redundancy = config.redundancy
        #: This pair's protection policy (default: the paper's ``full``).
        #: Result-affecting modes arrive via SystemConfig.pair_policies,
        #: resolved and threaded by CMPSystem.
        self.policy = policy if policy is not None else ProtectionPolicy()

        vocal.gate = CheckGate(config.redundancy)
        mute.gate = CheckGate(config.redundancy)
        vocal.gate.paired = True
        mute.gate.paired = True
        vocal.pair_sync_atomics = True
        mute.pair_sync_atomics = True
        vocal.pair = self
        mute.pair = self

        #: Shared checked-interval schedule for the partial modes
        #: (interval-sampled / unprotected / dynamic); None for the
        #: always-checked modes (full, little-mute).
        self.protection_state: ProtectionState | None = None
        self._dynamic = self.policy.mode == "dynamic"
        self._dyn_paused = False
        self.protection_toggles = 0
        mode_name = self.policy.mode
        if mode_name == "interval-sampled":
            self.protection_state = ProtectionState(self.policy.checked_fraction)
        elif mode_name == "unprotected":
            self.protection_state = ProtectionState(0.0)
        elif mode_name == "dynamic":
            self.protection_state = ProtectionState(None)
        if self.protection_state is not None:
            for gate in (vocal.gate, mute.gate):
                gate._policy_state = self.protection_state
                gate._check_all = False
        if mode_name == "unprotected":
            # Redundancy off: no fingerprint exchange (every interval is
            # unchecked via the 0.0 fraction above), no sync coupling —
            # atomics perform locally, as on a non-redundant core — and
            # the mute core is parked (never stepped; its counters stay
            # deterministically zero).  The vocal keeps its CheckGate so
            # retirement still batches by interval, modeling the
            # dual-use hardware with the exchange disabled.
            vocal.pair_sync_atomics = False
            mute.pair_sync_atomics = False
            mute.mirror_passive = True

        #: Replay fast path == mirror window (see repro.core.mirror): the
        #: mute core is not stepped at all while the pair is provably
        #: symmetric; its state is materialized from the vocal's when the
        #: window ends, after which the pair permanently falls back to
        #: dual execution.  ``replay_enabled`` is True exactly while a
        #: window is open.
        self.replay_enabled = False
        self._mirror_active = False
        #: Cycles covered by the mirror window.  Diagnostic only — dual
        #: execution reports 0, so this must never be folded into
        #: :class:`Stats`.
        self.mirror_cycles = 0
        #: Gate partial-interval timeout (mirror hot path; must match
        #: CheckGate.maybe_timeout_close).
        self._interval_timeout = max(8, self.redundancy.fingerprint_interval // 2)

        self.state = PairState.NORMAL
        self.phase = 0  # 1 or 2 while recovering
        self._recovery_at = 0
        self._recovery_escalate = False
        self._recovery_cause = ""  # what scheduled the pending recovery
        self._exit_single_step_at: int | None = None
        self.failed = False

        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem.
        self.obs = None
        self._obs_source = f"pair{pair_id}"

        # Statistics.
        self.recoveries = 0
        self.mismatch_recoveries = 0
        self.timeout_recoveries = 0
        self.phase2_recoveries = 0
        self.sync_requests = 0
        self.failures = 0
        #: (cycle, cause) per recovery — detection-latency analysis.
        self.recovery_log: list[tuple[int, str]] = []

    # -- replay fast path (mirror windows) --------------------------------
    def enable_replay(self) -> None:
        """Arm the mirror-window fast path (bit-identical to dual).

        Call before execution starts.  From reset, vocal and mute are
        bit-identical automata until the first memory / serializing /
        injected / HALT instruction enters the vocal's frontend — so the
        mute is not stepped at all; its state is materialized from the
        vocal's when the window ends (see :mod:`repro.core.mirror`), and
        the pair then permanently falls back to dual execution.

        The vocal's check gate keeps hashing fingerprints throughout the
        window, so its accumulator — copied to the mute by
        materialization — always holds exactly the CRC dual execution
        would hold, squash re-hash effects included.  Bit-identity to
        dual is therefore structural, not argued per event.

        Only armed from pristine state (the symmetry induction base)
        with no observers attached; otherwise the pair simply runs dual.
        Only ``full`` pairs ever mirror: a little mute is a *different*
        automaton from the vocal (narrower issue), and partial modes
        keep the dual path so their skip schedules drive real gates.
        """
        if self.replay_enabled or self.policy.mode != "full":
            return
        vocal, mute = self.vocal, self.mute
        if not (
            vocal.cycles == 0
            and mute.cycles == 0
            and not vocal.rob
            and not mute.rob
            and vocal.user_retired == 0
            and mute.user_retired == 0
            and vocal.program is mute.program
            and vocal.fault_hook is None
            and mute.fault_hook is None
            and vocal.retire_hook is None
            and mute.retire_hook is None
            and vocal.tracer is None
            and mute.tracer is None
        ):
            return
        self.replay_enabled = True
        self._mirror_active = True
        vocal.mirror_watch = True
        vocal.mirror_trigger = False
        mute.mirror_passive = True
        if self.obs is not None:
            self.obs.emit("mirror.open", vocal.cycles, self._obs_source)

    def disable_replay(self) -> None:
        """Fall back to full dual execution (fault armed, or decoupling)."""
        if self._mirror_active:
            self._exit_mirror()

    def _exit_mirror(self) -> None:
        """End the mirror window: materialize the mute, fall back to dual.

        The copied state is exactly what dual execution's mute would hold
        at this cycle boundary (the window was symmetric, and the vocal's
        gate hashed fingerprints normally throughout), so normal
        per-cycle dual stepping resumes seamlessly and every subsequent
        comparison decision is bit-equal to dual execution's.
        """
        vocal, mute = self.vocal, self.mute
        if self.obs is not None:
            self.obs.emit(
                "mirror.close",
                vocal.cycles,
                self._obs_source,
                cycles=vocal.cycles,
                user_retired=vocal.user_retired,
            )
        materialize(vocal, mute, obs=self.obs, source=self._obs_source)
        self.mirror_cycles += vocal.cycles
        self._mirror_active = False
        self.replay_enabled = False
        vocal.mirror_watch = False
        # The mute re-enters the step loop (and the vocal's gate state
        # just changed shape): both skip caches are stale.
        vocal._skip_until = 0
        mute._skip_until = 0
        vocal.mirror_trigger = False
        mute.mirror_passive = False

    def mirror_sync(self) -> None:
        """Refresh the mute's observable counters without ending a window."""
        if self._mirror_active:
            sync_counters(self.vocal, self.mute)

    def _mirror_must_exit(self) -> bool:
        vocal, mute = self.vocal, self.mute
        return (
            vocal.mirror_trigger
            or vocal.fault_hook is not None
            or mute.fault_hook is not None
            or vocal.retire_hook is not None
            or mute.retire_hook is not None
            or vocal.tracer is not None
            or mute.tracer is not None
            # Impossible from modeled execution in-window (a fetched HALT
            # ends the window first): an externally frozen core.
            or vocal.halted
            or mute.halted
            # Likewise: recoveries cannot arise in-window, so a non-NORMAL
            # state means one was scheduled externally.
            or self.state is not PairState.NORMAL
        )

    def _step_mirror(self, now: int) -> None:
        """Pair machinery while the mute is a virtual copy of the vocal.

        Every closed vocal interval matches the virtual mute's identical
        interval by construction, so the comparison collapses to an
        immediate clear one comparison latency after the close — exactly
        the cycle dual execution would clear it (both lockstep gates
        close interval *k* at the same cycle, so ``max`` of the two close
        cycles is the vocal's).  Recoveries, watchdog timeouts and
        synchronizing requests are impossible in-window: no memory
        instruction has even been fetched.
        """
        vocal = self.vocal
        vocal_gate: CheckGate = vocal.gate  # type: ignore[assignment]
        # Inlined gate.maybe_timeout_close / clear_interval: this runs
        # every stepped cycle of a mirror window, which on compute-bound
        # workloads is nearly every cycle of the simulation.
        if (
            vocal_gate._count
            and now - vocal_gate._last_offer > self._interval_timeout
        ):
            vocal_gate._close(now)
        closed = vocal_gate._closed
        if closed:
            latency = self.redundancy.comparison_latency
            retire_time = vocal_gate._retire_time
            obs = self.obs
            compared = 0
            while closed:
                a = closed.popleft()
                retire_time[a.index] = a.close_cycle + latency
                compared += 1
                if obs is not None:
                    # The virtual mute's interval is identical by
                    # construction; emit the comparison a dual-mode pair
                    # would have performed this cycle.
                    obs.emit(
                        "fingerprint.compare",
                        now,
                        self._obs_source,
                        index=a.index,
                        vocal_fp=a.fingerprint,
                        mute_fp=a.fingerprint,
                        count=a.count,
                        matched=True,
                    )
            vocal_gate.fingerprints_compared += compared
            # Cleared intervals open the vocal's retire path at a cycle
            # its cached skip horizon could not have known about.
            vocal._skip_until = 0

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        """Advance pair-level machinery; call after both cores stepped."""
        if self.failed:
            return
        if self._mirror_active:
            if not self._mirror_must_exit():
                self._step_mirror(now)
                return
            self._exit_mirror()
        vocal_gate: CheckGate = self.vocal.gate  # type: ignore[assignment]
        mute_gate: CheckGate = self.mute.gate  # type: ignore[assignment]
        # maybe_timeout_close, inlined: this runs every pair-cycle and
        # pair gates are always plain CheckGates (never Strict), so the
        # attribute test replaces two method calls.
        if vocal_gate._count and now - vocal_gate._last_offer > vocal_gate._timeout_limit:
            vocal_gate._close(now)
        if mute_gate._count and now - mute_gate._last_offer > mute_gate._timeout_limit:
            mute_gate._close(now)

        if self.state is PairState.WAIT_RECOVERY:
            if now >= self._recovery_at:
                self._begin_recovery(now)
            return

        if vocal_gate._closed and mute_gate._closed:
            self._compare_intervals(now)
            if self.state is PairState.WAIT_RECOVERY:
                if now >= self._recovery_at:
                    self._begin_recovery(now)
                return
            if self._dynamic:
                self._evaluate_dynamic(now)

        if self.vocal.sync_request is not None and self.mute.sync_request is not None:
            self._service_sync_requests(now)
        if vocal_gate._closed or mute_gate._closed:
            self._watchdog(now)

        if self._exit_single_step_at is not None and now >= self._exit_single_step_at:
            self._exit_single_step(now)

    # -- event horizon (cycle-skipping kernel) ---------------------------------
    def next_event(self, now: int) -> int:
        """Conservative wake-up horizon for the cycle-skipping kernel.

        The pair's own events: beginning a scheduled recovery, comparing
        fingerprints once both sides have closed an interval, servicing a
        synchronizing request once both cores have parked one, the
        divergence watchdog, and leaving single-step mode.  Gate
        interval-timeout closes are performed by :meth:`step` but their
        horizons are reported by each gate's ``next_release`` (through
        the cores), so they are not repeated here.
        """
        if self.failed:
            return NEVER
        if self._mirror_active:
            # The only in-window pair events are exit triggers and the
            # auto-compare of a closed vocal interval; interval-timeout
            # closes and cleared-interval releases are reported by the
            # vocal gate's ``next_release`` through the vocal core.
            if self._mirror_must_exit() or self.vocal.gate.peek_closed() is not None:
                return now
            return NEVER
        if self.state is PairState.WAIT_RECOVERY:
            at = self._recovery_at
            return at if at > now else now
        wake = NEVER
        vocal_gate: CheckGate = self.vocal.gate  # type: ignore[assignment]
        mute_gate: CheckGate = self.mute.gate  # type: ignore[assignment]
        a = vocal_gate.peek_closed()
        b = mute_gate.peek_closed()
        if a is not None and b is not None:
            return now  # a comparison happens on the very next step
        waiting = a if a is not None else b
        if waiting is not None:
            # One side is waiting on its partner; the watchdog fires one
            # cycle past the divergence timeout.
            at = waiting.close_cycle + self.redundancy.divergence_timeout + 1
            if at <= now:
                return now
            if at < wake:
                wake = at
        if self.vocal.sync_request is not None and self.mute.sync_request is not None:
            return now
        at = self._exit_single_step_at
        if at is not None:
            if at <= now:
                return now
            if at < wake:
                wake = at
        return wake

    # -- fingerprint comparison ------------------------------------------------
    def _compare_intervals(self, now: int) -> None:
        vocal_gate: CheckGate = self.vocal.gate  # type: ignore[assignment]
        mute_gate: CheckGate = self.mute.gate  # type: ignore[assignment]
        latency = self.redundancy.comparison_latency
        obs = self.obs
        vocal_closed = vocal_gate._closed
        mute_closed = mute_gate._closed
        vocal_retire = vocal_gate._retire_time
        mute_retire = mute_gate._retire_time
        # Both sides have a closed interval, so at least one comparison
        # happens below: the cores' cached skip horizons predate the
        # retire times being set here.
        self.vocal._skip_until = 0
        self.mute._skip_until = 0
        while vocal_closed and mute_closed:
            a = vocal_closed.popleft()
            b = mute_closed.popleft()
            ready = max(a.close_cycle, b.close_cycle) + latency
            matched = (
                a.fingerprint == b.fingerprint
                and a.count == b.count
                and a.has_halt == b.has_halt
            )
            if obs is not None:
                obs.emit(
                    "fingerprint.compare",
                    now,
                    self._obs_source,
                    index=a.index,
                    vocal_fp=a.fingerprint,
                    mute_fp=b.fingerprint,
                    count=a.count,
                    matched=matched,
                )
            if matched:
                # clear_interval on both gates, inlined.
                vocal_retire[a.index] = ready
                vocal_gate.fingerprints_compared += 1
                mute_retire[b.index] = ready
                mute_gate.fingerprints_compared += 1
                if self.state is PairState.SINGLE_STEP and (a.has_sync or a.has_halt):
                    # Recovery has made forward progress through the
                    # synchronizing access: resume normal execution.
                    self._exit_single_step_at = ready
                continue
            # Divergence detected when the fingerprints arrive.
            if obs is not None:
                if a.count != b.count or a.has_halt != b.has_halt:
                    why = "count"
                else:
                    why = "fingerprint"
                obs.emit(
                    "fingerprint.mismatch",
                    now,
                    self._obs_source,
                    index=a.index,
                    vocal_fp=a.fingerprint,
                    mute_fp=b.fingerprint,
                    vocal_count=a.count,
                    mute_count=b.count,
                    cause=why,
                )
            self._schedule_recovery(
                ready,
                escalate=self.state is PairState.SINGLE_STEP,
                cause="mismatch",
            )
            self.mismatch_recoveries += 1
            return

    def _evaluate_dynamic(self, now: int) -> None:
        """Döbel-style load-adaptive protection, decided at comparison points.

        Runs right after a mismatch-free comparison batch, NORMAL state
        only.  Load is the vocal's check-stage backlog (instructions
        buffered behind fingerprint exchange).  When it reaches
        ``off_threshold``, the next ``off_intervals`` fingerprint
        intervals — numbered from the *larger* of the two gates' next
        interval index, so neither side has closed any of them yet and
        both gates make the identical skip decision — go unchecked.
        After a window expires, the first comparison either extends the
        pause (backlog still above ``on_threshold``) or resumes checking.
        Deterministic: comparisons fire at identical cycles under both
        kernels and both hot loops, so the backlog snapshot is too.
        """
        state = self.protection_state
        vocal_gate: CheckGate = self.vocal.gate  # type: ignore[assignment]
        mute_gate: CheckGate = self.mute.gate  # type: ignore[assignment]
        index = vocal_gate._index
        if mute_gate._index > index:
            index = mute_gate._index
        if index < state.skip_until:
            return  # an off-window is still scheduled or active
        policy = self.policy
        backlog = len(vocal_gate._pending)
        if self._dyn_paused:
            if backlog > policy.on_threshold:
                # Still loaded: extend the pause with a fresh window.
                state.skip_from = index
                state.skip_until = index + policy.off_intervals
                if self.obs is not None:
                    self.obs.emit(
                        "protection.off",
                        now,
                        self._obs_source,
                        from_index=index,
                        until_index=state.skip_until,
                        backlog=backlog,
                    )
            else:
                self._dyn_paused = False
                self.protection_toggles += 1
                if self.obs is not None:
                    self.obs.emit(
                        "protection.on", now, self._obs_source, backlog=backlog
                    )
        elif backlog >= policy.off_threshold:
            self._dyn_paused = True
            self.protection_toggles += 1
            state.skip_from = index
            state.skip_until = index + policy.off_intervals
            if self.obs is not None:
                self.obs.emit(
                    "protection.off",
                    now,
                    self._obs_source,
                    from_index=index,
                    until_index=state.skip_until,
                    backlog=backlog,
                )

    def _schedule_recovery(self, at: int, escalate: bool, cause: str = "") -> None:
        self.state = PairState.WAIT_RECOVERY
        self._recovery_at = at
        self._recovery_escalate = escalate
        self._recovery_cause = cause
        self._exit_single_step_at = None

    # -- the re-execution protocol ------------------------------------------------
    def _begin_recovery(self, now: int) -> None:
        """Rollback both cores to safe state and enter single-step mode."""
        self.vocal._skip_until = 0
        self.mute._skip_until = 0
        if self._recovery_escalate and self.phase >= 2:
            # Phase two already failed: unrecoverable (fingerprint
            # aliasing let a soft error retire).  Signal failure.
            self.failed = True
            self.failures += 1
            self.vocal.halted = True
            self.mute.halted = True
            if self.obs is not None:
                self.obs.emit(
                    "recovery.failure",
                    now,
                    self._obs_source,
                    cause=self._recovery_cause,
                )
            return

        self.recoveries += 1
        self.recovery_log.append(
            (now, "phase2" if self._recovery_escalate else "phase1")
        )
        if self.obs is not None:
            self.obs.emit(
                "recovery.start",
                now,
                self._obs_source,
                phase=2 if self._recovery_escalate else 1,
                cause=self._recovery_cause,
            )
        # Retire everything already cleared by matching comparisons, so
        # both ARFs reflect the identical compared prefix.
        self.vocal.drain_cleared(now)
        self.mute.drain_cleared(now)

        resume = self.vocal.next_retire_pc()
        penalty = self.redundancy.rollback_penalty
        if self._recovery_escalate:
            # Phase two: initialize the mute ARF from the vocal
            # (Definition 9) and retry.
            self.phase = 2
            self.phase2_recoveries += 1
            self.mute.arf.copy_from(self.vocal.arf)
            penalty += self.redundancy.arf_copy_latency
        else:
            self.phase = 1

        for core in (self.vocal, self.mute):
            core.flush_for_recovery(resume, now, penalty)
            core.single_step = True
            core.gate.single_step = True  # type: ignore[attr-defined]
        if self.protection_state is not None:
            # The flushes restarted both gates' interval numbering at 0;
            # a stale dynamic off-window would alias the new numbering.
            self.protection_state.clear_window()
            self._dyn_paused = False
        if self.obs is not None:
            self.obs.emit(
                "recovery.rollback",
                now,
                self._obs_source,
                resume_pc=resume,
                penalty=penalty,
            )
        self.state = PairState.SINGLE_STEP
        self._exit_single_step_at = None

    def _exit_single_step(self, now: int) -> None:
        for core in (self.vocal, self.mute):
            core.single_step = False
            core.gate.single_step = False  # type: ignore[attr-defined]
            core._skip_until = 0
        if self.obs is not None:
            self.obs.emit(
                "recovery.resume", now, self._obs_source, phase=self.phase
            )
        self.state = PairState.NORMAL
        self.phase = 0
        self._exit_single_step_at = None

    # -- synchronizing requests ---------------------------------------------------
    def _service_sync_requests(self, now: int) -> None:
        """Perform one coherent access on behalf of both cores.

        Atomics park in ``sync_request`` whenever they reach the head of
        their core's ROB; during single-step, the first load does too.
        The access happens once, when both cores have arrived.
        """
        vocal_entry = self.vocal.sync_request
        mute_entry = self.mute.sync_request
        if vocal_entry is None or mute_entry is None:
            return
        same_operation = (
            vocal_entry.pc == mute_entry.pc
            and vocal_entry.inst is mute_entry.inst
            and vocal_entry.addr == mute_entry.addr
            and vocal_entry.val2 == mute_entry.val2
        )
        if not same_operation:
            # The cores disagree before a non-idempotent operation even
            # executes: recover now, before anything becomes visible.
            self.vocal.sync_request = None
            self.mute.sync_request = None
            self.vocal._skip_until = 0
            self.mute._skip_until = 0
            self.mismatch_recoveries += 1
            self._schedule_recovery(
                now,
                escalate=self.state is PairState.SINGLE_STEP,
                cause="sync_divergence",
            )
            return

        self.sync_requests += 1
        if self.obs is not None:
            self.obs.emit(
                "sync.request",
                now,
                self._obs_source,
                pc=vocal_entry.pc,
                addr=vocal_entry.addr,
                op=vocal_entry.inst.op.name,
            )
        addr = vocal_entry.addr
        line_shift = self.config.l1.line_bytes.bit_length() - 1
        reply = self.controller.synchronizing_access(
            self.vocal.core_id, self.mute.core_id, addr >> line_shift, now
        )
        offset = (addr >> 3) & (self.config.l1.line_bytes // 8 - 1)
        old_value = reply.data[offset]

        op = vocal_entry.inst.op
        if op in (Op.ATOMIC, Op.CAS):
            rd_value, new_value = atomic_result(
                op, old_value, vocal_entry.val2 or 0, vocal_entry.inst.imm
            )
            if new_value is not None:
                # Both L1s hold the line with write permission after the
                # synchronizing fill; the single RMW updates both.
                self.vocal.port.rmw_write(addr, new_value)
                self.mute.port.rmw_write(addr, new_value)
            value = rd_value
        else:
            value = old_value

        vocal_entry.was_sync = True
        mute_entry.was_sync = True
        self.vocal.complete_sync(vocal_entry, value, reply.done)
        self.mute.complete_sync(mute_entry, value, reply.done)

    # -- external interrupts -----------------------------------------------------
    def post_interrupt(self, handler: list[Instruction] | None = None) -> int:
        """Replicate an external interrupt to both cores (Section 4.3).

        The vocal chooses a fingerprint-interval boundary far enough out
        that neither core has retired past it; both cores service the
        interrupt after comparing and retiring the preceding
        instructions.  Returns the chosen user-instruction count.
        """
        if handler is None:
            handler = default_interrupt_handler()
        if self._mirror_active:
            # The interrupt must be scheduled on two real cores (and the
            # handler's loads end symmetry anyway).
            self._exit_mirror()
        margin = (
            self.config.core.rob_size
            + self.redundancy.fingerprint_interval
            + 2 * self.config.core.width
        )
        target = max(self.vocal.user_retired, self.mute.user_retired) + margin
        self.vocal.schedule_interrupt(target, handler)
        self.mute.schedule_interrupt(target, handler)
        if self.obs is not None:
            self.obs.emit(
                "interrupt.post",
                None,
                self._obs_source,
                target=target,
                handler_len=len(handler),
            )
        return target

    # -- watchdog --------------------------------------------------------------------
    def _watchdog(self, now: int) -> None:
        """Detect one-sided divergence (a partner that stops checking in)."""
        vocal_gate: CheckGate = self.vocal.gate  # type: ignore[assignment]
        mute_gate: CheckGate = self.mute.gate  # type: ignore[assignment]
        a = vocal_gate.peek_closed()
        b = mute_gate.peek_closed()
        timeout = self.redundancy.divergence_timeout
        waiting = a if (a is not None and b is None) else b if (b is not None and a is None) else None
        if waiting is not None and now - waiting.close_cycle > timeout:
            self.timeout_recoveries += 1
            self._schedule_recovery(
                now,
                escalate=self.state is PairState.SINGLE_STEP,
                cause="timeout",
            )

    # -- reporting ---------------------------------------------------------------------
    def collect_stats(self, stats, prefix: str = "") -> None:
        base = prefix or f"pair{self.pair_id}."
        stats.set(base + "recoveries", self.recoveries)
        stats.set(base + "mismatch_recoveries", self.mismatch_recoveries)
        stats.set(base + "timeout_recoveries", self.timeout_recoveries)
        stats.set(base + "phase2_recoveries", self.phase2_recoveries)
        stats.set(base + "sync_requests", self.sync_requests)
        stats.set(base + "failures", self.failures)
        if self.protection_state is not None:
            # Partial policies only: full/little-mute pairs report
            # nothing here, keeping their snapshots byte-identical to
            # the pre-policy ones.
            stats.set(
                base + "unchecked_intervals",
                self.vocal.gate.intervals_unchecked,
            )
            stats.set(base + "protection_toggles", self.protection_toggles)
