"""The Strict oracle: strict input replication with ideal timing.

Section 5.1 of the paper defines *Strict* as the oracle performance model
for all strict-input-replication designs (lockstep, LVQ): it imposes no
penalty for input replication itself — the virtual partner has identical
timing — while still modelling the fundamental costs of checking:

* every fingerprint waits one comparison latency before retirement, so
  instructions occupy the ROB longer (the resource-occupancy penalty that
  hurts the paper's scientific workloads), and
* serializing instructions still stall for the full comparison latency,
  because they may not execute until all older instructions have been
  compared and retired (the penalty that dominates commercial workloads).

Implementation: a :class:`CheckGate` whose partner always produces a
matching fingerprint at exactly the same cycle.
"""

from __future__ import annotations

from repro.core.check_stage import CheckGate
from repro.pipeline.rob import DynInstr
from repro.sim.config import RedundancyConfig


class StrictCheckGate(CheckGate):
    """A check gate compared against an identically-timed virtual partner."""

    def __init__(self, config: RedundancyConfig) -> None:
        super().__init__(config)
        self._latency = config.comparison_latency

    def _self_compare(self) -> None:
        while self._closed:
            record = self.pop_closed()
            # The virtual partner's fingerprint matches, generated at the
            # same cycle: retirement happens one comparison latency later.
            self.clear_interval(record.index, record.close_cycle + self._latency)

    def offer(self, entry: DynInstr, now: int) -> None:
        super().offer(entry, now)
        self._self_compare()

    def offer_f(self, core, slot: int, now: int) -> None:
        super().offer_f(core, slot, now)
        self._self_compare()

    def close_open(self, now: int) -> None:
        super().close_open(now)
        self._self_compare()

    def maybe_timeout_close(self, now: int) -> None:
        super().maybe_timeout_close(now)
        self._self_compare()
