"""Committed-stream value logging (the RepTFD-style recording substrate).

RepTFD and MEEK observe that in fault-free, race-free windows a checker
core re-executing the leader's instruction stream computes — by
definition — exactly the values the leader already computed.  This
module provides the value log for that style of decoupled, replay-based
checking: when a :class:`ReplayTrace` is attached to a core's
``replay_log`` hook, the core records its in-order check-stage value
stream, squash-consistently (entries re-squashed by traps, interrupts or
recoveries are truncated and re-logged).

The live replay *fast path* no longer consumes this log: the pair's
mirror window (see :mod:`repro.core.mirror`) is self-contained — it
skips the mute only while the pair is a provably symmetric automaton and
falls back to full dual execution afterwards, so no per-instruction
value substitution happens anywhere.  The log remains the recording
substrate for decoupled offline checking (ROADMAP item 4) and for the
word-level fingerprint utilities below, which the differential tests use
to reason about interval contents without hashing.

Records are plain tuples ``(pc, result, addr, store_value, actual_next,
inst)`` indexed by committed user-instruction number.  The trace is
*speculative at the tail*: the vocal logs entries when they enter the
check stage (in-order, completed, all older branches resolved), which
can precede retirement.  The log is bounded: callers trim records below
the consumer's retired prefix (a recovery can never roll back below it),
keeping the backing list a small sliding window.
"""

from __future__ import annotations

#: Record field indices (plain tuples on the hot path).
REC_PC = 0
REC_RESULT = 1
REC_ADDR = 2
REC_STORE_VALUE = 3
REC_ACTUAL_NEXT = 4
REC_INST = 5

_WORD_MASK = (1 << 64) - 1


def update_words(inst, result, addr, store_value, actual_next) -> list[int]:
    """The 64-bit update words a fingerprint would hash for one instruction.

    Mirrors ``FingerprintAccumulator.add_instruction`` exactly (same
    fields, same order, same None guards, same 64-bit truncation).  Two
    instructions produce equal fingerprint contributions iff their word
    lists are equal, so comparing word lists per stream position is a
    collision-free fingerprint: the replay fast path uses it to reach
    the same divergence decisions as dual execution without hashing.
    """
    words = []
    if inst.writes_reg and result is not None:
        words.append(result & _WORD_MASK)
    if inst.is_store and addr is not None:
        words.append(addr & _WORD_MASK)
        if store_value is not None:
            words.append(store_value & _WORD_MASK)
    if inst.is_atomic and addr is not None:
        words.append(addr & _WORD_MASK)
    if inst.is_control and actual_next is not None:
        words.append(actual_next & _WORD_MASK)
    return words


def entry_words(entry) -> list[int]:
    """Fingerprint update words of a pipeline entry (mute side)."""
    return update_words(
        entry.inst, entry.result, entry.addr, entry.store_value, entry.actual_next
    )


def record_words(rec: tuple) -> list[int]:
    """Fingerprint update words of a logged trace record (vocal side)."""
    return update_words(rec[5], rec[1], rec[2], rec[3], rec[4])

#: Compact the backing list only once this many retired records pile up.
_TRIM_SLACK = 512


class ReplayTrace:
    """Append-only value log, indexed by committed user-instruction number.

    The vocal appends (and truncates, on squash); the mute reads.  The
    base offset moves forward as the mute retires, keeping the backing
    list a small sliding window.
    """

    __slots__ = ("base", "records")

    def __init__(self) -> None:
        self.base = 0
        self.records: list[tuple] = []

    def __len__(self) -> int:
        """One past the highest logged committed index."""
        return self.base + len(self.records)

    def append(self, record: tuple) -> None:
        self.records.append(record)

    def get(self, index: int):
        """The record at committed ``index``, or None if not (yet) logged."""
        i = index - self.base
        if 0 <= i < len(self.records):
            return self.records[i]
        return None

    def truncate_to(self, index: int) -> None:
        """Vocal squash: drop every record at committed ``index`` and above."""
        i = index - self.base
        if i < len(self.records):
            del self.records[max(i, 0) :]

    def trim(self, retired: int) -> None:
        """Release records below the mute's retired prefix (amortized)."""
        k = retired - self.base
        if k > _TRIM_SLACK:
            if k >= len(self.records):
                self.records.clear()
            else:
                del self.records[:k]
            self.base = retired
