"""The mute-core replay fast path: the vocal's speculative value trace.

RepTFD and MEEK observe that in fault-free, race-free windows a checker
core re-executing the leader's instruction stream computes — by
definition — exactly the values the leader already computed.  Simulating
that recomputation is pure overhead.  This module provides the shared
log that lets the mute core of a :class:`~repro.core.pair.LogicalPair`
*replay* the vocal core's results instead of recomputing them, while
every timing-relevant structure (the mute's L1, phantom requests, MSHRs,
check-stage occupancy, branch-predictor redirects) is still modeled
cycle-accurately.

The contract is **bit identity**: a system built with
``CMPSystem(execution="replay")`` must produce exactly the same
``Stats``, architectural register state, fingerprint-comparison
sequence, and recovery/timeout cycle counts as ``execution="dual"``.
That holds because a replayed value is only ever substituted where the
dual-execution value is *guaranteed equal*:

* the system has a single logical pair and no other cores, so no third
  party can hold a writable copy of a line the mute loads (no input
  incoherence, Section 3 of the paper);
* no fault injector is attached to either core (the pair disables
  replay the moment one is — see ``LogicalPair.disable_replay``);
* the mute only binds trace records while provably on the committed
  control-flow path (the sync/resync protocol in
  :mod:`repro.pipeline.ooo_core`).

The trace is *speculative at the tail*: the vocal logs entries when they
enter the check stage (in-order, completed, all older branches
resolved), which can precede retirement.  Entries squashed after that
point — trap, interrupt, or recovery squashes — are truncated and later
re-logged; the mute may have bound a since-truncated record, which is
harmless because the vocal's squashed speculative execution and the
mute's squashed speculative execution compute identical values from the
identical pre-squash architectural state.

Records are plain tuples ``(pc, result, addr, store_value, actual_next,
inst)`` indexed by committed user-instruction number.  The log is
bounded: the pair trims records the mute has retired past (a recovery
can never roll back below the retired prefix), so the live window is at
most the vocal-to-mute skew the fingerprint flow control already bounds.
"""

from __future__ import annotations

#: Record field indices (plain tuples on the hot path).
REC_PC = 0
REC_RESULT = 1
REC_ADDR = 2
REC_STORE_VALUE = 3
REC_ACTUAL_NEXT = 4
REC_INST = 5

_WORD_MASK = (1 << 64) - 1


def update_words(inst, result, addr, store_value, actual_next) -> list[int]:
    """The 64-bit update words a fingerprint would hash for one instruction.

    Mirrors ``FingerprintAccumulator.add_instruction`` exactly (same
    fields, same order, same None guards, same 64-bit truncation).  Two
    instructions produce equal fingerprint contributions iff their word
    lists are equal, so comparing word lists per stream position is a
    collision-free fingerprint: the replay fast path uses it to reach
    the same divergence decisions as dual execution without hashing.
    """
    words = []
    if inst.writes_reg and result is not None:
        words.append(result & _WORD_MASK)
    if inst.is_store and addr is not None:
        words.append(addr & _WORD_MASK)
        if store_value is not None:
            words.append(store_value & _WORD_MASK)
    if inst.is_atomic and addr is not None:
        words.append(addr & _WORD_MASK)
    if inst.is_control and actual_next is not None:
        words.append(actual_next & _WORD_MASK)
    return words


def entry_words(entry) -> list[int]:
    """Fingerprint update words of a pipeline entry (mute side)."""
    return update_words(
        entry.inst, entry.result, entry.addr, entry.store_value, entry.actual_next
    )


def record_words(rec: tuple) -> list[int]:
    """Fingerprint update words of a logged trace record (vocal side)."""
    return update_words(rec[5], rec[1], rec[2], rec[3], rec[4])

#: Compact the backing list only once this many retired records pile up.
_TRIM_SLACK = 512


class ReplayTrace:
    """Append-only value log, indexed by committed user-instruction number.

    The vocal appends (and truncates, on squash); the mute reads.  The
    base offset moves forward as the mute retires, keeping the backing
    list a small sliding window.
    """

    __slots__ = ("base", "records")

    def __init__(self) -> None:
        self.base = 0
        self.records: list[tuple] = []

    def __len__(self) -> int:
        """One past the highest logged committed index."""
        return self.base + len(self.records)

    def append(self, record: tuple) -> None:
        self.records.append(record)

    def get(self, index: int):
        """The record at committed ``index``, or None if not (yet) logged."""
        i = index - self.base
        if 0 <= i < len(self.records):
            return self.records[i]
        return None

    def truncate_to(self, index: int) -> None:
        """Vocal squash: drop every record at committed ``index`` and above."""
        i = index - self.base
        if i < len(self.records):
            del self.records[max(i, 0) :]

    def trim(self, retired: int) -> None:
        """Release records below the mute's retired prefix (amortized)."""
        k = retired - self.base
        if k > _TRIM_SLACK:
            if k >= len(self.records):
                self.records.clear()
            else:
                del self.records[:k]
            self.base = retired
