"""Reunion core: fingerprints, check stage, logical pairs, recovery."""

from repro.core.bandwidth import BandwidthMeter
from repro.core.check_stage import CheckGate, IntervalRecord
from repro.core.coverage import (
    DetectionBound,
    aliasing_probability,
    meets_budget,
    minimum_crc_bits,
    undetected_fit,
)
from repro.core.faults import FaultInjector, FaultRecord
from repro.core.fingerprint import FingerprintAccumulator, fingerprint_words
from repro.core.pair import LogicalPair, PairState
from repro.core.strict import StrictCheckGate

__all__ = [
    "BandwidthMeter",
    "CheckGate",
    "DetectionBound",
    "aliasing_probability",
    "meets_budget",
    "minimum_crc_bits",
    "undetected_fit",
    "FaultInjector",
    "FaultRecord",
    "FingerprintAccumulator",
    "IntervalRecord",
    "LogicalPair",
    "PairState",
    "StrictCheckGate",
    "fingerprint_words",
]
