"""Output-comparison bandwidth analysis (Section 2.4 of the paper).

Redundant cores must compare execution results; the question is how many
bits cross the inter-core channel.  The paper surveys three designs:

* **direct comparison** — every instruction's architectural updates
  (register writeback, store address/value, branch target) are shipped
  and compared;
* **dependence-chain comparison** (Gomaa et al. [9]) — only instructions
  that *end* dependence chains are compared, losslessly, saving ~20%;
* **fingerprinting** (Smolens et al. [21], what Reunion uses) — updates
  are hashed; only ``fingerprint_bits`` per interval cross the channel,
  cutting bandwidth by orders of magnitude at a bounded coverage cost.

:class:`BandwidthMeter` attaches to a core's retirement stream and
accounts all three schemes simultaneously over the same instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.ooo_core import OoOCore
from repro.pipeline.rob import DynInstr


def update_bits(entry: DynInstr) -> int:
    """Architectural update bits one instruction produces (64b words)."""
    bits = 0
    inst = entry.inst
    if inst.writes_reg and entry.result is not None:
        bits += 64
    if inst.is_store and entry.addr is not None:
        bits += 64
        if entry.store_value is not None:
            bits += 64
    if inst.is_atomic and entry.addr is not None:
        bits += 64
    if inst.is_control and entry.actual_next is not None:
        bits += 64
    return bits


def ends_dependence_chain(entry: DynInstr) -> bool:
    """True when no in-flight instruction consumed this result.

    Retirement-time approximation of Gomaa et al.'s chain-ending test:
    a register result with live consumers will be checked transitively
    through them; stores, branches and unconsumed results terminate
    chains and must be compared themselves.
    """
    if not entry.inst.writes_reg:
        return True  # stores/branches always end chains
    return not entry.consumed


@dataclass
class BandwidthMeter:
    """Accumulates comparison-bandwidth statistics at retirement."""

    fingerprint_bits: int = 16
    fingerprint_interval: int = 1

    instructions: int = 0
    direct_bits: int = 0
    chain_bits: int = 0
    chain_compared: int = 0

    def attach(self, core: OoOCore) -> None:
        core.retire_hook = self._hook

    def _hook(self, entry: DynInstr) -> None:
        self.instructions += 1
        bits = update_bits(entry)
        self.direct_bits += bits
        if ends_dependence_chain(entry):
            self.chain_bits += bits
            self.chain_compared += 1

    # -- per-instruction bandwidths ----------------------------------------
    @property
    def direct_bits_per_instr(self) -> float:
        return self.direct_bits / self.instructions if self.instructions else 0.0

    @property
    def chain_bits_per_instr(self) -> float:
        return self.chain_bits / self.instructions if self.instructions else 0.0

    @property
    def fingerprint_bits_per_instr(self) -> float:
        return self.fingerprint_bits / self.fingerprint_interval

    def summary(self) -> dict[str, float]:
        return {
            "direct": self.direct_bits_per_instr,
            "chain": self.chain_bits_per_instr,
            "fingerprint": self.fingerprint_bits_per_instr,
        }
