"""Fingerprints: hashed summaries of architectural state updates.

Following Smolens et al. [21] (the paper's own prior work), a fingerprint
compresses the stream of architectural updates — register writebacks,
store addresses and values, and branch targets — into a small hash that
two redundant executions exchange and compare.  A CRC is used so the
aliasing probability is bounded: at most ``2^-(N-1)`` for an ``N``-bit
CRC with the two-stage front end, ``2^-N`` without.

Two-stage compression (Section 4.3): a wide superscalar can retire more
update bits per cycle than a hash circuit can consume, so parity trees
first fold the raw ``M`` bits down to ``N`` bits in one stage ("space
compression"), and the CRC absorbs those ``N`` bits per step ("time
compression").  Folding by XOR is linear, so it exactly doubles the
aliasing probability — the trade the paper quantifies.
"""

from __future__ import annotations

try:  # numpy accelerates table construction and large batches; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

from repro.pipeline.rob import DynInstr


def _make_crc_table(poly: int, bits: int) -> list[int]:
    """Precompute a byte-at-a-time CRC table for an ``bits``-wide CRC."""
    top_bit = 1 << (bits - 1)
    mask = (1 << bits) - 1
    table = []
    for byte in range(256):
        crc = byte << (bits - 8)
        for _ in range(8):
            if crc & top_bit:
                crc = ((crc << 1) ^ poly) & mask
            else:
                crc = (crc << 1) & mask
        table.append(crc)
    return table


#: CRC generator polynomials by width (CCITT-16, CRC-32, and small CRCs
#: used only by aliasing experiments).  Widths below 8 take the
#: bit-serial path in :class:`FingerprintAccumulator` — the byte-at-a-
#: time table needs at least one full byte of CRC register.
_POLYS = {
    4: 0x3,  # CRC-4-ITU (x^4 + x + 1): the narrowest aliasing-study CRC
    8: 0x07,
    12: 0x80F,
    16: 0x1021,
    24: 0x864CFB,
    32: 0x04C11DB7,
}

_TABLES: dict[int, list[int]] = {}

#: Hot-path loop constants, hoisted once at import instead of being
#: rebuilt by ``range()``/shift arithmetic on every absorbed word.
_WORD_MASK_64 = (1 << 64) - 1
_BYTE_SHIFTS_64 = tuple(range(0, 64, 8))


def _table_for(bits: int) -> list[int]:
    if bits not in _POLYS:
        raise ValueError(f"no CRC polynomial for width {bits}; pick from {sorted(_POLYS)}")
    if bits < 8:
        raise ValueError(f"byte-at-a-time CRC table needs width >= 8, got {bits}")
    table = _TABLES.get(bits)
    if table is None:
        table = _make_crc_table(_POLYS[bits], bits)
        _TABLES[bits] = table
    return table


#: Wide tables for the 16-bit CRC (the paper's configuration and the hot
#: path): ``(LT16, MT16, MT16-as-ndarray-or-None)``, built lazily.
_WIDE16: tuple | None = None


def _wide_tables_16() -> tuple:
    """Halfword-at-a-time tables for the 16-bit CRC.

    One byte step is linear over GF(2) in its ``(crc, byte)`` input, so
    the composition of two steps absorbing a 16-bit message ``m`` into
    register ``crc`` splits exactly into independent contributions:
    ``step2(crc, m) == LT16[crc] ^ MT16[m]`` with ``LT16[c] =
    step2(c, 0)`` (advance the register 16 bits) and ``MT16[m] =
    step2(0, m)`` (the message's contribution).  This turns the per-word
    two-stage absorb into two list lookups and one XOR; the equivalence
    is pinned against the byte path and the bit-serial reference in
    ``tests/core/test_fingerprint_batched.py``.
    """
    global _WIDE16
    if _WIDE16 is not None:
        return _WIDE16
    table = _table_for(16)
    if _np is not None:
        t = _np.array(table, dtype=_np.uint32)
        c = _np.arange(65536, dtype=_np.uint32)
        x = ((c << 8) ^ t[(c >> 8) & 0xFF]) & 0xFFFF
        lt = ((x << 8) ^ t[(x >> 8) & 0xFF]) & 0xFFFF
        m = _np.arange(65536, dtype=_np.uint32)
        x = t[m & 0xFF]  # step(0, m_lo): register starts at zero
        mt = ((x << 8) ^ t[((x >> 8) ^ (m >> 8)) & 0xFF]) & 0xFFFF
        _WIDE16 = (lt.tolist(), mt.tolist(), mt.astype(_np.uint32))
    else:  # pragma: no cover - exercised only without numpy
        lt_list = []
        mt_list = []
        for v in range(65536):
            x = ((v << 8) ^ table[(v >> 8) & 0xFF]) & 0xFFFF
            lt_list.append(((x << 8) ^ table[(x >> 8) & 0xFF]) & 0xFFFF)
            x = table[v & 0xFF]
            mt_list.append(((x << 8) ^ table[((x >> 8) ^ (v >> 8)) & 0xFF]) & 0xFFFF)
        _WIDE16 = (lt_list, mt_list, None)
    return _WIDE16


#: Batch size at which ``add_words`` switches its space-compression fold
#: to one vectorized numpy pass (below it, ndarray setup costs more than
#: the plain loop saves).
_NP_BATCH_MIN = 64


class FingerprintAccumulator:
    """Accumulates one fingerprint interval's worth of updates."""

    __slots__ = (
        "bits",
        "two_stage",
        "_crc",
        "_table",
        "_mask",
        "_shift",
        "_byte_shifts",
        "_poly",
        "_lt",
        "_mt",
        "_mt_np",
    )

    def __init__(self, bits: int = 16, two_stage: bool = True) -> None:
        if bits not in _POLYS:
            raise ValueError(
                f"no CRC polynomial for width {bits}; pick from {sorted(_POLYS)}"
            )
        self.bits = bits
        self.two_stage = two_stage
        self._poly = _POLYS[bits]
        self._mask = (1 << bits) - 1
        self._crc = 0
        #: Halfword tables (16-bit CRCs only): ``_lt is not None`` routes
        #: absorbs through the two-lookup wide step.
        self._lt = None
        self._mt = None
        self._mt_np = None
        if bits < 8:
            # Narrow CRCs (aliasing experiments only) cannot hold a full
            # byte in the register, so they clock bit-serially; the
            # byte-table fields stay unset and ``_table is None`` routes
            # every absorb through :meth:`_clock_bits`.
            self._table = None
            self._shift = 0
            self._byte_shifts = ()
            return
        self._table = _table_for(bits)
        self._shift = bits - 8
        #: Byte lanes of one folded value (``bits`` wide), precomputed so
        #: the per-word absorb loop carries no range() construction.
        self._byte_shifts = tuple(range(0, bits, 8))
        if bits == 16:
            self._lt, self._mt, self._mt_np = _wide_tables_16()

    # -- narrow (bit-serial) path ------------------------------------------
    def _clock_bits(self, crc: int, value: int, nbits: int) -> int:
        """Clock ``nbits`` of ``value`` (MSB first) through the register.

        Same convention as the byte table — non-reflected, zero init, no
        final XOR — so the two paths agree wherever both are defined.
        """
        poly = self._poly
        mask = self._mask
        top = self.bits - 1
        for i in range(nbits - 1, -1, -1):
            if ((crc >> top) ^ (value >> i)) & 1:
                crc = ((crc << 1) ^ poly) & mask
            else:
                crc = (crc << 1) & mask
        return crc

    def _add_word_narrow(self, word: int) -> None:
        if self.two_stage:
            bits = self.bits
            mask = self._mask
            folded = word & mask
            word >>= bits
            while word:
                folded ^= word & mask
                word >>= bits
            self._crc = self._clock_bits(self._crc, folded, bits)
        else:
            # Same byte-lane order as the wide table path: low byte first.
            crc = self._crc
            for shift in _BYTE_SHIFTS_64:
                crc = self._clock_bits(crc, (word >> shift) & 0xFF, 8)
            self._crc = crc

    # -- raw update streams ------------------------------------------------
    def add_word(self, word: int) -> None:
        """Absorb one 64-bit state update."""
        word &= _WORD_MASK_64
        if self._table is None:
            self._add_word_narrow(word)
            return
        lt = self._lt
        if lt is not None:
            # 16-bit wide step: two lookups per halfword of message.
            mt = self._mt
            crc = self._crc
            if self.two_stage:
                folded = (word ^ (word >> 16) ^ (word >> 32) ^ (word >> 48)) & 0xFFFF
                crc = lt[crc] ^ mt[folded]
            else:
                crc = lt[crc] ^ mt[word & 0xFFFF]
                crc = lt[crc] ^ mt[(word >> 16) & 0xFFFF]
                crc = lt[crc] ^ mt[(word >> 32) & 0xFFFF]
                crc = lt[crc] ^ mt[(word >> 48) & 0xFFFF]
            self._crc = crc
            return
        crc = self._crc
        table = self._table
        top_shift = self._shift
        mask = self._mask
        if self.two_stage:
            # Parity trees: fold 64 bits to `bits` bits in one stage,
            # then feed the folded value to the CRC.
            bits = self.bits
            folded = word & mask
            word >>= bits
            while word:
                folded ^= word & mask
                word >>= bits
            for shift in self._byte_shifts:
                crc = (
                    (crc << 8)
                    ^ table[((crc >> top_shift) ^ (folded >> shift)) & 0xFF]
                ) & mask
        else:
            for shift in _BYTE_SHIFTS_64:
                crc = (
                    (crc << 8)
                    ^ table[((crc >> top_shift) ^ (word >> shift)) & 0xFF]
                ) & mask
        self._crc = crc

    def add_words(self, words) -> None:
        """Absorb a batch of 64-bit state updates (hot-path entry point).

        The batched loop carries the CRC register in a local and hoists
        every table/mask/shift lookup out of the per-word work, so an
        interval's worth of updates costs one attribute-resolution
        preamble instead of one per word.  Bit-identical to calling
        :meth:`add_word` per element (the differential test in
        ``tests/core/test_fingerprint_batched.py`` checks both against a
        bit-serial shift-register reference).
        """
        if self._table is None:
            for word in words:
                self._add_word_narrow(word & _WORD_MASK_64)
            return
        lt = self._lt
        if lt is not None:
            mt = self._mt
            crc = self._crc
            if self.two_stage:
                if self._mt_np is not None and len(words) >= _NP_BATCH_MIN:
                    # Vectorize the space-compression stage: fold every
                    # word to its 16-bit parity in one numpy pass and
                    # gather the message contributions in one table
                    # gather; only the inherently serial register chain
                    # stays in the loop (one lookup + one XOR per word).
                    w = _np.array(
                        [word & _WORD_MASK_64 for word in words], dtype=_np.uint64
                    )
                    folded = (w ^ (w >> 16) ^ (w >> 32) ^ (w >> 48)) & _np.uint64(0xFFFF)
                    for mv in self._mt_np[folded].tolist():
                        crc = lt[crc] ^ mv
                else:
                    for word in words:
                        word &= _WORD_MASK_64
                        folded = (
                            word ^ (word >> 16) ^ (word >> 32) ^ (word >> 48)
                        ) & 0xFFFF
                        crc = lt[crc] ^ mt[folded]
            else:
                for word in words:
                    word &= _WORD_MASK_64
                    crc = lt[crc] ^ mt[word & 0xFFFF]
                    crc = lt[crc] ^ mt[(word >> 16) & 0xFFFF]
                    crc = lt[crc] ^ mt[(word >> 32) & 0xFFFF]
                    crc = lt[crc] ^ mt[(word >> 48) & 0xFFFF]
            self._crc = crc
            return
        crc = self._crc
        table = self._table
        top_shift = self._shift
        mask = self._mask
        byte_shifts = self._byte_shifts
        if self.two_stage:
            bits = self.bits
            for word in words:
                word &= _WORD_MASK_64
                folded = word & mask
                word >>= bits
                while word:
                    folded ^= word & mask
                    word >>= bits
                for shift in byte_shifts:
                    crc = (
                        (crc << 8)
                        ^ table[((crc >> top_shift) ^ (folded >> shift)) & 0xFF]
                    ) & mask
        else:
            for word in words:
                word &= _WORD_MASK_64
                for shift in _BYTE_SHIFTS_64:
                    crc = (
                        (crc << 8)
                        ^ table[((crc >> top_shift) ^ (word >> shift)) & 0xFF]
                    ) & mask
        self._crc = crc

    def _absorb(self, value: int) -> None:
        if self._table is None:
            self._crc = self._clock_bits(self._crc, value & self._mask, self.bits)
            return
        if self._lt is not None:
            self._crc = self._lt[self._crc] ^ self._mt[value & 0xFFFF]
            return
        crc = self._crc
        table = self._table
        top_shift = self._shift
        mask = self._mask
        for shift in self._byte_shifts:
            crc = (
                (crc << 8) ^ table[((crc >> top_shift) ^ (value >> shift)) & 0xFF]
            ) & mask
        self._crc = crc

    def _absorb_byte(self, byte: int) -> None:
        if self._table is None:
            self._crc = self._clock_bits(self._crc, byte & 0xFF, 8)
            return
        self._crc = (
            (self._crc << 8) ^ self._table[((self._crc >> self._shift) ^ byte) & 0xFF]
        ) & self._mask

    # -- architectural updates -----------------------------------------------
    def add_instruction(self, entry: DynInstr) -> None:
        """Fold in the architectural effects of one retired instruction.

        Logically the fingerprint captures all register updates, branch
        targets, store addresses, and store values (Section 4.3).
        """
        inst = entry.inst
        words = []
        if inst.writes_reg and entry.result is not None:
            words.append(entry.result)
        if inst.is_store and entry.addr is not None:
            words.append(entry.addr)
            if entry.store_value is not None:
                words.append(entry.store_value)
        if inst.is_atomic and entry.addr is not None:
            words.append(entry.addr)
        if inst.is_control and entry.actual_next is not None:
            words.append(entry.actual_next)
        if words:
            self.add_words(words)

    def digest(self) -> int:
        return self._crc

    def reset(self) -> None:
        self._crc = 0


def fingerprint_words(words: list[int], bits: int = 16, two_stage: bool = True) -> int:
    """One-shot fingerprint of a list of update words (tests, analysis)."""
    acc = FingerprintAccumulator(bits, two_stage)
    acc.add_words(words)
    return acc.digest()
