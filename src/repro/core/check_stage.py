"""The check stage: fingerprint intervals gating retirement.

Each redundant core owns one :class:`CheckGate`, plugged into the
pipeline as its retire gate (Figure 3(b) of the paper: a *check* stage
between mis-speculation detection and architectural writeback).

Completed instructions enter the gate in program order.  User
instructions accumulate into the current *fingerprint interval*; the
interval closes when it reaches the configured length, at serializing
instructions, at HALT, or — during re-execution — after every single
instruction.  A closed interval's fingerprint is "sent" to the partner;
the pair controller (or the strict oracle) later marks the interval
cleared with a retire time, and the gate releases its instructions to
architectural retirement.

Injected instructions (software TLB handlers) pass through transparently:
they retire as soon as everything older has cleared, contribute nothing
to fingerprints, and never close intervals.  See
:mod:`repro.pipeline.tlb_handler` for why.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.opcodes import Op
from repro.pipeline.gates import NEVER
from repro.pipeline.rob import DynInstr
from repro.sim.config import RedundancyConfig


@dataclass(slots=True)
class IntervalRecord:
    """A closed fingerprint interval, ready for comparison."""

    index: int
    fingerprint: int
    count: int  # user instructions summarized
    close_cycle: int
    serializing: bool
    has_sync: bool  # contains a synchronizing-request instruction
    has_halt: bool
    #: Replay fast path: an instruction in this interval produced update
    #: words differing from the vocal's trace — the exact condition under
    #: which dual execution's fingerprints would mismatch.  The pair
    #: treats a poisoned interval as a fingerprint mismatch.
    poisoned: bool = False


class CheckGate:
    """One core's side of the output-comparison machinery."""

    def __init__(self, config: RedundancyConfig) -> None:
        from repro.core.fingerprint import FingerprintAccumulator

        self.config = config
        self._accum = FingerprintAccumulator(
            config.fingerprint_bits, config.two_stage_compression
        )
        # (entry, interval index or None for injected pass-through, offer cycle)
        self._pending: deque[tuple[DynInstr, int | None, int]] = deque()
        self._closed: deque[IntervalRecord] = deque()
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._index = 0
        self._last_offer = 0
        self._retire_time: dict[int, int] = {}
        self.single_step = False
        #: True when a LogicalPair drives this gate (and therefore calls
        #: maybe_timeout_close every pair step).  The cycle-skipping
        #: kernel must only schedule timeout-close wake-ups for paired
        #: gates — a StrictCheckGate never has its timeout invoked.
        self.paired = False
        #: Replay fast path: when True, skip hashing offered instructions
        #: into the accumulator.  Set symmetrically on BOTH gates of a
        #: pair by LogicalPair.enable_replay — intervals then compare by
        #: count/has_halt alone (0 == 0 for the unhashed fingerprints),
        #: which is decision-identical because replayed windows are by
        #: construction divergence-free.
        self._skip_fp = False
        #: Replay divergence detection (mute gate only): the open
        #: interval absorbed an instruction whose update words differ
        #: from the vocal's trace record at the same stream position.
        self._poison_open = False
        #: Offered instructions the vocal hadn't logged yet, awaiting a
        #: deferred word comparison: (entry, stream index, interval index).
        self._replay_checks: list[tuple[DynInstr, int, int]] = []
        #: Monotone counters for statistics.
        self.intervals_closed = 0
        self.fingerprints_compared = 0
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem;
        #: interval closes are emitted only at the ``full`` level.
        self.obs = None
        self.obs_source = ""

    # -- pipeline side ------------------------------------------------------
    def offer(self, entry: DynInstr, now: int) -> None:
        """A completed instruction, oldest first, enters the check stage."""
        if entry.injected:
            # Injected handler instructions are not fingerprinted (they
            # keep the vocal/mute user streams aligned), but serializing
            # ones still pay a full comparison-latency stall at the front
            # of the queue — see pop_retirable.
            self._pending.append((entry, None, now))
            return
        if not self._skip_fp:
            self._accum.add_instruction(entry)
        if entry.faulted:
            obs = self.obs
            if obs is not None:
                # Anchor for detection attribution (repro.core.faults):
                # records which fingerprint interval absorbed the upset,
                # so analysis can match the injection to *its* comparison
                # instead of the first recovery that happens along.
                obs.emit(
                    "fault.absorb",
                    now,
                    self.obs_source,
                    seq=entry.seq,
                    interval=self._index,
                )
        self._count += 1
        self._has_sync = self._has_sync or entry.was_sync
        is_halt = entry.inst.op is Op.HALT
        self._has_halt = self._has_halt or is_halt
        self._pending.append((entry, self._index, now))
        self._last_offer = now
        if (
            self._count >= self.config.fingerprint_interval
            or entry.serializing
            or is_halt
            or self.single_step
        ):
            self._close(now)

    def close_open(self, now: int) -> None:
        """Serializing instruction encountered: end the interval early.

        Section 4.4 — older instructions must be able to retire before
        the serializing instruction executes, so a partial interval is
        closed and sent immediately.
        """
        if self._count:
            self._close(now)

    def maybe_timeout_close(self, now: int) -> None:
        """Close a lingering partial interval so its instructions can retire.

        With long fingerprint intervals a drained pipeline would otherwise
        strand its last few instructions in check forever.
        """
        limit = max(8, self.config.fingerprint_interval // 2)
        if self._count and now - self._last_offer > limit:
            self._close(now)

    def _close(self, now: int) -> None:
        self._closed.append(
            IntervalRecord(
                index=self._index,
                fingerprint=self._accum.digest(),
                count=self._count,
                close_cycle=now,
                serializing=False,
                has_sync=self._has_sync,
                has_halt=self._has_halt,
                poisoned=self._poison_open,
            )
        )
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "fingerprint.close",
                now,
                self.obs_source,
                index=self._index,
                count=self._count,
                fingerprint=self._closed[-1].fingerprint,
            )
        self._accum.reset()
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._poison_open = False
        self._index += 1
        self.intervals_closed += 1

    # -- replay fast path (mute gate only) ---------------------------------
    def add_replay_check(self, entry: DynInstr, stream_index: int) -> None:
        """Defer the word comparison for ``entry`` until the vocal logs it."""
        self._replay_checks.append((entry, stream_index, self._index))

    def poison_open(self) -> None:
        """Mark the currently-open interval as containing a divergence."""
        self._poison_open = True

    def poison_interval(self, interval_index: int) -> None:
        """Mark interval ``interval_index`` (open or closed) poisoned."""
        if interval_index == self._index:
            self._poison_open = True
            return
        for record in self._closed:
            if record.index == interval_index:
                record.poisoned = True
                return
        # Already popped: that comparison can only have mismatched on
        # count (interval misalignment), so recovery is already pending.

    def resolve_replay_checks(self, trace) -> bool:
        """Run deferred word comparisons against newly-logged records.

        Returns True when a divergence was found (a poison was placed).
        Squashed entries are dropped: they re-offer after re-execution
        with a fresh check, and their pre-squash content matches the
        vocal's pre-squash records by the speculative-identity argument.
        """
        if not self._replay_checks:
            return False
        from repro.core.replay import entry_words, record_words

        poisoned = False
        keep = []
        for item in self._replay_checks:
            entry, stream_index, interval_index = item
            if entry.squashed:
                continue
            rec = trace.get(stream_index)
            if rec is None:
                keep.append(item)
                continue
            if entry_words(entry) != record_words(rec):
                self.poison_interval(interval_index)
                poisoned = True
        self._replay_checks = keep
        return poisoned

    def pop_retirable(self, now: int, limit: int) -> list[DynInstr]:
        out: list[DynInstr] = []
        pending = self._pending
        while pending and len(out) < limit:
            entry, index, offered = pending[0]
            if entry.squashed:
                pending.popleft()
                continue
            if index is None:
                # Injected handler instruction.  Serializing ones (the
                # handler's traps and MMU operations) must be compared
                # with the partner before younger instructions proceed —
                # Section 4.4 applies to them exactly as to user code —
                # so they wait a full comparison latency at the front.
                if entry.serializing and now < offered + self.config.comparison_latency:
                    break
                pending.popleft()
                out.append(entry)
                continue
            retire_at = self._retire_time.get(index)
            if retire_at is None or retire_at > now:
                break
            pending.popleft()
            out.append(entry)
        return out

    def next_release(self, now: int) -> int:
        """Conservative horizon: when could this gate next release work?

        Mirrors every ``now``-dependent branch of :meth:`pop_retirable`
        plus the interval timeout in :meth:`maybe_timeout_close`.  A
        closed-but-uncompared interval contributes nothing here — the
        comparison is the pair controller's event, reported by
        ``LogicalPair.next_event`` — but once :meth:`clear_interval` has
        run, the head's retire time is a known future cycle.
        """
        wake = NEVER
        pending = self._pending
        if pending:
            entry, index, offered = pending[0]
            if entry.squashed:
                return now
            if index is None:
                if entry.serializing:
                    release = offered + self.config.comparison_latency
                    return release if release > now else now
                return now
            else:
                retire_at = self._retire_time.get(index)
                if retire_at is not None:
                    return retire_at if retire_at > now else now
        if self._count and self.paired:
            # The pair controller will force-close a lingering partial
            # interval one cycle past the timeout limit.
            limit = max(8, self.config.fingerprint_interval // 2)
            timeout = self._last_offer + limit + 1
            if timeout <= now:
                return now
            if timeout < wake:
                wake = timeout
        return wake

    # -- partner side (driven by the pair controller / oracle) ----------------
    def peek_closed(self) -> IntervalRecord | None:
        """Oldest closed-but-uncompared interval, if any."""
        return self._closed[0] if self._closed else None

    def pop_closed(self) -> IntervalRecord:
        return self._closed.popleft()

    def clear_interval(self, index: int, retire_time: int) -> None:
        """Comparison matched: interval ``index`` may retire at ``retire_time``."""
        self._retire_time[index] = retire_time
        self.fingerprints_compared += 1

    @property
    def open_count(self) -> int:
        """User instructions in the currently-open interval."""
        return self._count

    @property
    def waiting(self) -> int:
        """Instructions buffered in check (resource-occupancy metric)."""
        return len(self._pending)

    def flush(self) -> None:
        """Recovery: drop all pending state and restart interval numbering."""
        self._pending.clear()
        self._closed.clear()
        self._retire_time.clear()
        self._accum.reset()
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._poison_open = False
        self._replay_checks.clear()
        self._index = 0
