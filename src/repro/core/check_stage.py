"""The check stage: fingerprint intervals gating retirement.

Each redundant core owns one :class:`CheckGate`, plugged into the
pipeline as its retire gate (Figure 3(b) of the paper: a *check* stage
between mis-speculation detection and architectural writeback).

Completed instructions enter the gate in program order.  User
instructions accumulate into the current *fingerprint interval*; the
interval closes when it reaches the configured length, at serializing
instructions, at HALT, or — during re-execution — after every single
instruction.  A closed interval's fingerprint is "sent" to the partner;
the pair controller (or the strict oracle) later marks the interval
cleared with a retire time, and the gate releases its instructions to
architectural retirement.

Injected instructions (software TLB handlers) pass through transparently:
they retire as soon as everything older has cleared, contribute nothing
to fingerprints, and never close intervals.  See
:mod:`repro.pipeline.tlb_handler` for why.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.isa.decode import (
    F_ATOMIC,
    F_CONTROL,
    F_HALT,
    F_SER,
    F_STORE,
    F_WRITES,
)
from repro.isa.opcodes import Op
from repro.pipeline.flat import M_FAULTED, M_INJECTED, M_SYNC
from repro.pipeline.gates import NEVER
from repro.pipeline.rob import DynInstr
from repro.sim.config import RedundancyConfig

#: Same 64-bit update-word domain as repro.core.fingerprint.
_WORD_MASK_64 = (1 << 64) - 1

#: Instructions whose address enters the fingerprint's store stream
#: (``Instruction.is_store``: plain stores *and* atomics).
_F_STORE_STREAM = F_STORE | F_ATOMIC


class IntervalRecord(NamedTuple):
    """A closed fingerprint interval, ready for comparison.

    A NamedTuple rather than a dataclass: one is built per retired user
    instruction at the paper's interval length of 1, and tuple
    construction is C-speed where a ``__init__`` frame is not.
    """

    index: int
    fingerprint: int
    count: int  # user instructions summarized
    close_cycle: int
    serializing: bool
    has_sync: bool  # contains a synchronizing-request instruction
    has_halt: bool


class ProtectionState:
    """Shared per-pair schedule of checked fingerprint intervals.

    One instance is shared by *both* gates of a partially protected pair
    (see :class:`~repro.sim.config.ProtectionPolicy`), so the vocal and
    the mute — which close interval ``k`` at different cycles — make
    identical checked/unchecked decisions from the interval index alone.

    Two mechanisms compose:

    * ``fraction`` — a static checked fraction (``interval-sampled``;
      ``0.0`` models ``unprotected``, ``None`` means "all checked" and
      is the ``dynamic`` baseline).  The decision is Bresenham-style —
      interval ``k`` is checked iff ``floor((k+1)*f) > floor(k*f)`` —
      spreading checked intervals evenly as a pure function of ``k``.
    * a skip window ``[skip_from, skip_until)`` — ``dynamic`` off
      periods scheduled by the pair controller at comparison points.

    Recovery flushes reset both gates' interval numbering to 0, so the
    pair controller clears the window then (:meth:`clear_window`) to
    keep decisions aligned with the restarted numbering.
    """

    __slots__ = ("fraction", "skip_from", "skip_until")

    def __init__(self, fraction: float | None = None) -> None:
        self.fraction = fraction
        self.skip_from = 0
        self.skip_until = 0

    def checked(self, index: int) -> bool:
        if self.skip_from <= index < self.skip_until:
            return False
        fraction = self.fraction
        if fraction is None:
            return True
        if fraction <= 0.0:
            return False
        return int((index + 1) * fraction) > int(index * fraction)

    def clear_window(self) -> None:
        self.skip_from = 0
        self.skip_until = 0


class CheckGate:
    """One core's side of the output-comparison machinery."""

    def __init__(self, config: RedundancyConfig) -> None:
        from repro.core.fingerprint import FingerprintAccumulator

        self.config = config
        accum = FingerprintAccumulator(
            config.fingerprint_bits, config.two_stage_compression
        )
        self._accum = accum
        # The paper configs close an interval per instruction, so _close
        # runs once per retired user instruction: with the 16-bit wide
        # tables available, fold short word batches inline instead of
        # paying add_words' per-call preamble.
        self._fast_lt = (
            accum._lt if (accum._lt is not None and accum.two_stage) else None
        )
        self._fast_mt = accum._mt
        #: Partial-interval timeout (see maybe_timeout_close), hoisted out
        #: of the per-cycle path — as are the interval length and the
        #: comparison latency, which offer / pop_retirable / has_retirable
        #: would otherwise chase through two attributes per instruction.
        self._timeout_limit = max(8, config.fingerprint_interval // 2)
        self._interval_len = config.fingerprint_interval
        self._cmp_latency = config.comparison_latency
        # (entry, interval index or None for injected pass-through, offer cycle)
        # — ``entry`` is a DynInstr in object mode, a packed flat-ROB ref
        # (int) in flat mode; a gate only ever serves one loop flavour.
        self._pending: deque[tuple] = deque()
        #: Reused pop_retirable output buffer (valid until the next pop).
        self._scratch: list = []
        #: Update words of the currently-open interval, captured at offer
        #: time and hashed in one batched :meth:`FingerprintAccumulator.
        #: add_words` call when the interval closes.  CRC chaining is
        #: sequential over words, so hashing the concatenation at close is
        #: bit-identical to hashing per instruction — but pays the table/
        #: mask attribute preamble once per interval and unlocks the numpy
        #: gather path for long intervals.
        self._words: list[int] = []
        self._closed: deque[IntervalRecord] = deque()
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._index = 0
        self._last_offer = 0
        self._retire_time: dict[int, int] = {}
        self.single_step = False
        #: True when a LogicalPair drives this gate (and therefore calls
        #: maybe_timeout_close every pair step).  The cycle-skipping
        #: kernel must only schedule timeout-close wake-ups for paired
        #: gates — a StrictCheckGate never has its timeout invoked.
        self.paired = False
        #: Monotone counters for statistics.
        self.intervals_closed = 0
        self.fingerprints_compared = 0
        self.intervals_unchecked = 0
        #: Cumulative user instructions offered, NOT reset by flush()
        #: (recovery re-offers count again, identically on both cores).
        #: The cores' offer loops consult it to service external
        #: interrupts at the in-order offer boundary — a pure function
        #: of the correct-path stream, so heterogeneous pairs (e.g. a
        #: narrow little-mute) pick the same service point even though
        #: their in-flight depths differ.
        self.users_offered = 0
        #: Partial-protection hooks (set by LogicalPair for
        #: interval-sampled / unprotected / dynamic policies).
        #: ``_check_all`` is the hot-path fast flag: full and little-mute
        #: gates — and every non-paired gate — pay exactly one attribute
        #: test per interval close and never consult the policy state.
        self._check_all = True
        self._policy_state: ProtectionState | None = None
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem;
        #: interval closes are emitted only at the ``full`` level.
        self.obs = None
        self.obs_source = ""

    # -- pipeline side ------------------------------------------------------
    def offer(self, entry: DynInstr, now: int) -> None:
        """A completed instruction, oldest first, enters the check stage."""
        if entry.injected:
            # Injected handler instructions are not fingerprinted (they
            # keep the vocal/mute user streams aligned), but serializing
            # ones still pay a full comparison-latency stall at the front
            # of the queue — see pop_retirable.
            self._pending.append((entry, None, now))
            return
        # Capture this instruction's architectural-update words (same
        # selection as FingerprintAccumulator.add_instruction) into the
        # open interval's buffer; the hash happens at _close.  Words are
        # captured *now*, so a later squash of a checked entry leaves the
        # fingerprint unchanged — exactly as the per-offer hashing did.
        inst = entry.inst
        words = self._words
        if inst.writes_reg and entry.result is not None:
            words.append(entry.result)
        if inst.is_store and entry.addr is not None:
            words.append(entry.addr)
            if entry.store_value is not None:
                words.append(entry.store_value)
        if inst.is_atomic and entry.addr is not None:
            words.append(entry.addr)
        if inst.is_control and entry.actual_next is not None:
            words.append(entry.actual_next)
        if entry.faulted:
            obs = self.obs
            if obs is not None:
                # Anchor for detection attribution (repro.core.faults):
                # records which fingerprint interval absorbed the upset,
                # so analysis can match the injection to *its* comparison
                # instead of the first recovery that happens along.
                obs.emit(
                    "fault.absorb",
                    now,
                    self.obs_source,
                    seq=entry.seq,
                    interval=self._index,
                )
        self._count += 1
        self.users_offered += 1
        self._has_sync = self._has_sync or entry.was_sync
        is_halt = entry.inst.op is Op.HALT
        self._has_halt = self._has_halt or is_halt
        self._pending.append((entry, self._index, now))
        self._last_offer = now
        if (
            self._count >= self._interval_len
            or entry.serializing
            or is_halt
            or self.single_step
        ):
            self._close(now)

    def offer_f(self, core, slot: int, now: int) -> None:
        """Flat twin of :meth:`offer` over the core's column arrays.

        Same decisions, same word-capture order (result → store addr/value
        → atomic addr → branch target), keyed off the decode ``F_*`` mask
        and the packed booleans instead of ``Instruction`` attributes.
        """
        packed = (core.f_seq[slot] << core._f_sbits) | slot
        mask = core.f_mask[slot]
        if mask & M_INJECTED:
            self._pending.append((packed, None, now))
            return
        flags = core.f_flags[slot]
        words = self._words
        if flags & F_WRITES:
            result = core.f_res[slot]
            if result is not None:
                words.append(result)
        if flags & _F_STORE_STREAM:
            addr = core.f_addr[slot]
            if addr is not None:
                words.append(addr)
                store_value = core.f_sval[slot]
                if store_value is not None:
                    words.append(store_value)
            if flags & F_ATOMIC and addr is not None:
                words.append(addr)
        if flags & F_CONTROL:
            actual_next = core.f_anext[slot]
            if actual_next is not None:
                words.append(actual_next)
        if mask & M_FAULTED:
            obs = self.obs
            if obs is not None:
                obs.emit(
                    "fault.absorb",
                    now,
                    self.obs_source,
                    seq=packed >> core._f_sbits,
                    interval=self._index,
                )
        self._count += 1
        self.users_offered += 1
        self._has_sync = self._has_sync or bool(mask & M_SYNC)
        is_halt = flags & F_HALT
        if is_halt:
            self._has_halt = True
        self._pending.append((packed, self._index, now))
        self._last_offer = now
        if (
            self._count >= self._interval_len
            or flags & F_SER
            or is_halt
            or self.single_step
        ):
            self._close(now)

    def close_open(self, now: int) -> None:
        """Serializing instruction encountered: end the interval early.

        Section 4.4 — older instructions must be able to retire before
        the serializing instruction executes, so a partial interval is
        closed and sent immediately.
        """
        if self._count:
            self._close(now)

    def maybe_timeout_close(self, now: int) -> None:
        """Close a lingering partial interval so its instructions can retire.

        With long fingerprint intervals a drained pipeline would otherwise
        strand its last few instructions in check forever.
        """
        if self._count and now - self._last_offer > self._timeout_limit:
            self._close(now)

    def _close(self, now: int) -> None:
        if (
            not self._check_all
            and not self.single_step
            and not self._policy_state.checked(self._index)
        ):
            # Unchecked interval under a partial protection policy: no
            # hash, no exchange, no comparison latency — the batch
            # retires immediately, and a fault absorbed here escapes by
            # construction.  Single-step recovery overrides the policy:
            # the re-execution protocol needs every interval compared
            # (matched has_sync/has_halt decisions on both sides).
            self._skip_close(now)
            return
        accum = self._accum
        words = self._words
        if words:
            lt = self._fast_lt
            if lt is not None and len(words) < 64:
                # Inline the accumulator's two-stage 16-bit lt/mt fold
                # (bit-identical to add_words; see fingerprint.add_word's
                # wide-table branch) — short intervals don't amortize the
                # batched path's preamble, and interval length 1 is the
                # paper default.
                crc = accum._crc
                mt = self._fast_mt
                for word in words:
                    word &= _WORD_MASK_64
                    crc = lt[crc] ^ mt[
                        (word ^ (word >> 16) ^ (word >> 32) ^ (word >> 48))
                        & 0xFFFF
                    ]
                accum._crc = crc
            else:
                accum.add_words(words)
            words.clear()
        # Positional construction: this runs once per retired user
        # instruction at the paper's interval length of 1.
        self._closed.append(
            IntervalRecord(
                self._index,
                accum._crc,
                self._count,
                now,
                False,
                self._has_sync,
                self._has_halt,
            )
        )
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "fingerprint.close",
                now,
                self.obs_source,
                index=self._index,
                count=self._count,
                fingerprint=self._closed[-1].fingerprint,
            )
        accum._crc = 0  # reset(), inlined
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._index += 1
        self.intervals_closed += 1

    def _skip_close(self, now: int) -> None:
        """Close an *unchecked* interval: retire immediately, hash nothing.

        The captured update words are discarded unhashed (the
        accumulator CRC is untouched — it is always 0 between closes),
        the interval never enters ``_closed``, and its instructions get
        ``now`` as their retire time, modeling fingerprint exchange
        switched off for this interval.  ``fingerprint.skip`` is the
        attribution anchor letting the campaign classifier mark SDCs
        that escaped through a coverage gap (rather than CRC aliasing).
        """
        self._words.clear()
        self._retire_time[self._index] = now
        obs = self.obs
        if obs is not None:
            obs.emit(
                "fingerprint.skip",
                now,
                self.obs_source,
                index=self._index,
                count=self._count,
            )
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._index += 1
        self.intervals_closed += 1
        self.intervals_unchecked += 1

    def pop_retirable(self, now: int, limit: int) -> list[DynInstr]:
        # ``out`` is the reused scratch buffer: valid until the next pop,
        # consumed immediately by every caller (retire loop, recovery
        # drain), never retained.
        out = self._scratch
        out.clear()
        pending = self._pending
        while pending and len(out) < limit:
            entry, index, offered = pending[0]
            if entry.squashed:
                pending.popleft()
                continue
            if index is None:
                # Injected handler instruction.  Serializing ones (the
                # handler's traps and MMU operations) must be compared
                # with the partner before younger instructions proceed —
                # Section 4.4 applies to them exactly as to user code —
                # so they wait a full comparison latency at the front.
                if entry.serializing and now < offered + self._cmp_latency:
                    break
                pending.popleft()
                out.append(entry)
                continue
            retire_at = self._retire_time.get(index)
            if retire_at is None or retire_at > now:
                break
            pending.popleft()
            out.append(entry)
        return out

    def has_retirable(self, now: int) -> bool:
        """Allocation-free precheck mirroring :meth:`pop_retirable`'s head test.

        The hot loop calls this every cycle; squashed heads count as
        "retirable" so the pop still discards them promptly.
        """
        pending = self._pending
        if not pending:
            return False
        entry, index, offered = pending[0]
        if entry.squashed:
            return True
        if index is None:
            return (
                not entry.serializing
                or now >= offered + self._cmp_latency
            )
        retire_at = self._retire_time.get(index)
        return retire_at is not None and retire_at <= now

    def pop_retirable_f(self, core, now: int, limit: int) -> list[int]:
        """Flat twin of :meth:`pop_retirable` over packed refs.

        Returned refs share the object pop's scratch-buffer lifetime and
        must be seq-re-validated by the caller (a TRAP/interrupt retire
        mid-batch squashes younger refs still in the batch).
        """
        out = self._scratch
        out.clear()
        pending = self._pending
        if not pending:
            return out
        f_seq = core.f_seq
        smask = core._f_smask
        sbits = core._f_sbits
        f_flags = core.f_flags
        while pending and len(out) < limit:
            packed, index, offered = pending[0]
            if f_seq[packed & smask] != packed >> sbits:
                pending.popleft()  # squashed after offer
                continue
            if index is None:
                # Injected handler instruction (see pop_retirable).
                if (
                    f_flags[packed & smask] & F_SER
                    and now < offered + self._cmp_latency
                ):
                    break
                pending.popleft()
                out.append(packed)
                continue
            retire_at = self._retire_time.get(index)
            if retire_at is None or retire_at > now:
                break
            pending.popleft()
            out.append(packed)
        return out

    def has_retirable_f(self, core, now: int) -> bool:
        pending = self._pending
        if not pending:
            return False
        packed, index, offered = pending[0]
        if core.f_seq[packed & core._f_smask] != packed >> core._f_sbits:
            return True  # squashed head: pop discards it
        if index is None:
            return (
                not core.f_flags[packed & core._f_smask] & F_SER
                or now >= offered + self._cmp_latency
            )
        retire_at = self._retire_time.get(index)
        return retire_at is not None and retire_at <= now

    def next_release_f(self, core, now: int) -> int:
        wake = NEVER
        pending = self._pending
        if pending:
            packed, index, offered = pending[0]
            if core.f_seq[packed & core._f_smask] != packed >> core._f_sbits:
                return now
            if index is None:
                if core.f_flags[packed & core._f_smask] & F_SER:
                    release = offered + self._cmp_latency
                    return release if release > now else now
                return now
            retire_at = self._retire_time.get(index)
            if retire_at is not None:
                return retire_at if retire_at > now else now
        if self._count and self.paired:
            timeout = self._last_offer + self._timeout_limit + 1
            if timeout <= now:
                return now
            if timeout < wake:
                wake = timeout
        return wake

    def next_release(self, now: int) -> int:
        """Conservative horizon: when could this gate next release work?

        Mirrors every ``now``-dependent branch of :meth:`pop_retirable`
        plus the interval timeout in :meth:`maybe_timeout_close`.  A
        closed-but-uncompared interval contributes nothing here — the
        comparison is the pair controller's event, reported by
        ``LogicalPair.next_event`` — but once :meth:`clear_interval` has
        run, the head's retire time is a known future cycle.
        """
        wake = NEVER
        pending = self._pending
        if pending:
            entry, index, offered = pending[0]
            if entry.squashed:
                return now
            if index is None:
                if entry.serializing:
                    release = offered + self._cmp_latency
                    return release if release > now else now
                return now
            else:
                retire_at = self._retire_time.get(index)
                if retire_at is not None:
                    return retire_at if retire_at > now else now
        if self._count and self.paired:
            # The pair controller will force-close a lingering partial
            # interval one cycle past the timeout limit.
            timeout = self._last_offer + self._timeout_limit + 1
            if timeout <= now:
                return now
            if timeout < wake:
                wake = timeout
        return wake

    # -- partner side (driven by the pair controller / oracle) ----------------
    def peek_closed(self) -> IntervalRecord | None:
        """Oldest closed-but-uncompared interval, if any."""
        return self._closed[0] if self._closed else None

    def pop_closed(self) -> IntervalRecord:
        return self._closed.popleft()

    def clear_interval(self, index: int, retire_time: int) -> None:
        """Comparison matched: interval ``index`` may retire at ``retire_time``."""
        self._retire_time[index] = retire_time
        self.fingerprints_compared += 1

    @property
    def open_count(self) -> int:
        """User instructions in the currently-open interval."""
        return self._count

    @property
    def waiting(self) -> int:
        """Instructions buffered in check (resource-occupancy metric)."""
        return len(self._pending)

    def flush(self) -> None:
        """Recovery: drop all pending state and restart interval numbering."""
        self._pending.clear()
        self._closed.clear()
        self._retire_time.clear()
        self._accum.reset()
        self._words.clear()
        self._count = 0
        self._has_sync = False
        self._has_halt = False
        self._index = 0
