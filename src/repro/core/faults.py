"""Transient-fault (soft error) injection.

The paper's fault model (Section 2.1): single-event upsets flip bits in
the unprotected datapath between fetch and retirement; architectural
arrays are ECC-protected.  We model this by flipping a bit in an
instruction's *result* as it is computed — the value that would flow
through bypass networks and into the fingerprint.

The paper's headline experiments inject no faults (input incoherence,
comparison, and recovery are the measured phenomena); this module powers
the reproduction's extension experiments: detection coverage, detection
latency, and recovery success under injected upsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.pipeline.ooo_core import OoOCore
from repro.pipeline.rob import DynInstr


@dataclass
class FaultRecord:
    """One injected upset, for post-run analysis."""

    core_id: int
    seq: int
    pc: int
    bit: int
    original: int
    corrupted: int
    cycle: int = 0  # core cycle at injection (detection-latency analysis)


@dataclass
class FaultInjector:
    """Flips one result bit every ``interval`` issued instructions.

    Attach to a core with :meth:`attach`; the injector hooks the core's
    issue path.  ``interval=0`` disables periodic injection, leaving only
    :meth:`inject_once`.
    """

    interval: int = 0
    seed: int = 0
    records: list[FaultRecord] = field(default_factory=list)
    _pending_once: int = field(default=0, repr=False)
    _count: int = field(default=0, repr=False)
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]
    _core_id: int = field(default=-1, repr=False)
    _core: OoOCore = field(default=None, repr=False)  # type: ignore[assignment]

    def attach(self, core: OoOCore) -> None:
        self._rng = random.Random(self.seed ^ core.core_id)
        self._core_id = core.core_id
        self._core = core
        if core.pair is not None:
            # A fault-armed pair must run full dual execution: replayed
            # values would let consumers ignore a corrupted result, so
            # the divergence the fingerprints must catch never forms.
            core.pair.disable_replay()
        core.fault_hook = self._hook

    def inject_once(self, after: int = 0) -> None:
        """Arm a single upset, ``after`` more instructions from now."""
        self._pending_once = self._count + after + 1

    def _hook(self, entry: DynInstr) -> None:
        if entry.result is None or entry.injected:
            return
        self._count += 1
        fire = False
        if self.interval and self._count % self.interval == 0:
            fire = True
        if self._pending_once and self._count >= self._pending_once:
            fire = True
            self._pending_once = 0
        if not fire:
            return
        bit = self._rng.randrange(64)
        original = entry.result
        entry.result = original ^ (1 << bit)
        self.records.append(
            FaultRecord(
                core_id=self._core_id,
                seq=entry.seq,
                pc=entry.pc,
                bit=bit,
                original=original,
                corrupted=entry.result,
                cycle=self._core.cycles,
            )
        )
        obs = self._core.obs
        if obs is not None:
            obs.emit(
                "fault.inject",
                None,
                f"core{self._core_id}",
                seq=entry.seq,
                pc=entry.pc,
                bit=bit,
                original=original,
                corrupted=entry.result,
            )


def detection_latencies(
    records: list[FaultRecord], recovery_log: list[tuple[int, str]]
) -> list[int]:
    """Cycles from each injection to the first subsequent recovery.

    Fingerprinting's selling point (Smolens et al. [21]) is *bounded*
    detection latency: an upset is caught no later than its fingerprint
    interval's comparison.  This pairs each injected fault with the
    first recovery the pair initiated at or after the injection cycle;
    faults with no subsequent recovery (masked or still in flight) are
    omitted.
    """
    latencies = []
    recovery_cycles = sorted(cycle for cycle, _cause in recovery_log)
    for record in records:
        for cycle in recovery_cycles:
            if cycle >= record.cycle:
                latencies.append(cycle - record.cycle)
                break
    return latencies
