"""Transient-fault (soft error) injection.

The paper's fault model (Section 2.1): single-event upsets flip bits in
the unprotected datapath between fetch and retirement; architectural
arrays are ECC-protected.  We model this by flipping a bit in one of the
value classes that flow through bypass networks into the fingerprint:

``result``
    An instruction's computed result — the classic datapath upset.
``store_addr``
    A store's effective address, corrupted after address generation
    (the store silently lands on the wrong line, and the fingerprint's
    store-address word diverges).
``branch_target``
    A control instruction's resolved next-PC — the fetch redirect and
    the fingerprint's branch-target word both see the corrupted value.

The paper's headline experiments inject no faults (input incoherence,
comparison, and recovery are the measured phenomena); this module powers
the reproduction's extension experiments: detection coverage, detection
latency, and recovery success under injected upsets (see
:mod:`repro.campaign`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.pipeline.ooo_core import OoOCore
from repro.pipeline.rob import DynInstr

#: The injectable fault-site classes, one per fingerprint input stream.
TARGETS = ("result", "store_addr", "branch_target")


@dataclass
class FaultRecord:
    """One injected upset, for post-run analysis."""

    core_id: int
    seq: int
    pc: int
    bit: int
    original: int
    corrupted: int
    cycle: int = 0  # core cycle at injection (detection-latency analysis)
    target: str = "result"  # which value class was corrupted


@dataclass
class FaultInjector:
    """Flips one bit of a ``target``-class value every ``interval`` hits.

    Attach to a core with :meth:`attach`; the injector hooks the core's
    issue path.  ``interval=0`` disables periodic injection, leaving only
    :meth:`inject_once`.  ``target`` selects the fault-site class (see
    :data:`TARGETS`); only instructions eligible for that class are
    counted, so ``interval``/``after`` are measured in *eligible*
    instructions.  ``bit`` pins the flipped bit position (campaigns
    stratify by it); ``None`` draws one per injection from the seeded
    RNG.
    """

    interval: int = 0
    seed: int = 0
    target: str = "result"
    bit: int | None = None
    records: list[FaultRecord] = field(default_factory=list)
    _pending_once: int = field(default=0, repr=False)
    _count: int = field(default=0, repr=False)
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]
    _core_id: int = field(default=-1, repr=False)
    _core: OoOCore = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"fault target must be one of {TARGETS}, got {self.target!r}")
        if self.bit is not None and not 0 <= self.bit < 64:
            raise ValueError(f"fault bit must be in [0, 64), got {self.bit}")

    def attach(self, core: OoOCore) -> None:
        self._rng = random.Random(self.seed ^ core.core_id)
        self._core_id = core.core_id
        self._core = core
        if core.pair is not None:
            # A fault-armed pair must run full dual execution: replayed
            # values would let consumers ignore a corrupted result, so
            # the divergence the fingerprints must catch never forms.
            core.pair.disable_replay()
        core.fault_hook = self._hook

    def inject_once(self, after: int = 0) -> None:
        """Arm a single upset, ``after`` more eligible instructions from now."""
        self._pending_once = self._count + after + 1

    # -- per-target eligibility and corruption ------------------------------
    def _victim_value(self, entry: DynInstr) -> int | None:
        """The value this injector's target class would corrupt, if any."""
        target = self.target
        if target == "result":
            return entry.result
        if target == "store_addr":
            if entry.inst.is_store:
                return entry.addr
            return None
        # branch_target
        if entry.inst.is_control:
            return entry.actual_next
        return None

    def _corrupt(self, entry: DynInstr, corrupted: int) -> None:
        target = self.target
        if target == "result":
            entry.result = corrupted
        elif target == "store_addr":
            entry.addr = corrupted
        else:
            entry.actual_next = corrupted

    def _hook(self, entry: DynInstr) -> None:
        if entry.injected:
            return
        original = self._victim_value(entry)
        if original is None:
            return
        self._count += 1
        fire = False
        if self.interval and self._count % self.interval == 0:
            fire = True
        if self._pending_once and self._count >= self._pending_once:
            fire = True
            self._pending_once = 0
        if not fire:
            return
        bit = self.bit if self.bit is not None else self._rng.randrange(64)
        corrupted = original ^ (1 << bit)
        self._corrupt(entry, corrupted)
        entry.faulted = True
        self.records.append(
            FaultRecord(
                core_id=self._core_id,
                seq=entry.seq,
                pc=entry.pc,
                bit=bit,
                original=original,
                corrupted=corrupted,
                cycle=self._core.cycles,
                target=self.target,
            )
        )
        obs = self._core.obs
        if obs is not None:
            obs.emit(
                "fault.inject",
                None,
                f"core{self._core_id}",
                seq=entry.seq,
                pc=entry.pc,
                bit=bit,
                target=self.target,
                original=original,
                corrupted=corrupted,
            )


# -- detection attribution --------------------------------------------------
@dataclass(slots=True)
class DetectionOutcome:
    """What the comparison machinery did about one injected fault."""

    record: FaultRecord
    #: The fault entered a fingerprint interval (False: squashed or
    #: still in flight when the run ended — microarchitecturally masked).
    absorbed: bool
    #: The pair's machinery caught a divergence attributable to this
    #: fault (its interval's comparison mismatched, or a watchdog /
    #: sync-divergence recovery fired while the fault was pending).
    detected: bool
    #: Detection mechanism: ``"fingerprint"`` or ``"count"`` (mismatch
    #: causes), ``"timeout"`` or ``"sync_divergence"`` (recovery
    #: causes), else None.
    cause: str | None
    #: Cycles from injection to the detection event, when detected.
    latency: int | None
    #: The faulted interval's fingerprints compared *equal*: the upset
    #: aliased through the CRC — the silent-data-corruption path.
    aliased: bool
    #: An unrelated recovery flushed the faulted interval before its
    #: comparison; re-execution wiped the corruption (masked by flush).
    flushed: bool
    #: The faulted interval closed *unchecked* under a partial
    #: protection policy (``fingerprint.skip``): the corruption escaped
    #: through a coverage gap, not through CRC aliasing.  Campaigns
    #: report these separately — an unchecked escape indicts the
    #: policy's coverage, not the fingerprint's strength.
    unchecked: bool = False


def attribute_detections(
    records: list[FaultRecord],
    events,
    pair_source: str | None = None,
) -> list[DetectionOutcome]:
    """Correlate injected faults with the pair events that caught them.

    ``events`` is an event stream (``Telemetry.log.snapshot()``) from a
    run armed at the ``events`` level.  Each fault is anchored by its
    gate's ``fault.absorb`` record — which fingerprint interval absorbed
    the corrupted entry — and then tracked to that *specific* interval's
    comparison:

    * comparison mismatched → detected (cause from the paired
      ``fingerprint.mismatch`` record: fingerprint / count);
    * comparison matched → the upset aliased through the CRC;
    * a ``recovery.start`` with cause ``mismatch`` arrived first → some
      *other* divergence was detected and the rollback flushed the
      faulted interval before it could compare (not attributed);
    * a ``recovery.start`` with cause ``timeout`` or ``sync_divergence``
      arrived while the fault was pending → attributed as a detection by
      that mechanism (a live single fault explains the divergence);
    * the interval closed with ``fingerprint.skip`` (partial protection
      policy) → ``unchecked``: the escape is a policy coverage gap, not
      CRC aliasing.

    ``pair_source`` restricts pair-event matching to one pair's records
    (``"pair0"``); None accepts any pair — correct for single-pair runs.
    """
    outcomes: list[DetectionOutcome] = []
    stream = list(events)
    for record in records:
        gate_source = f"core{record.core_id}"
        # Anchor: which interval absorbed this fault.
        absorb_pos = None
        interval = None
        for pos, event in enumerate(stream):
            if (
                event.kind == "fault.absorb"
                and event.source == gate_source
                and event.args.get("seq") == record.seq
                and event.cycle >= record.cycle
            ):
                absorb_pos = pos
                interval = event.args["interval"]
                break
        if absorb_pos is None:
            outcomes.append(
                DetectionOutcome(record, False, False, None, None, False, False)
            )
            continue

        detected = False
        cause: str | None = None
        latency: int | None = None
        aliased = False
        flushed = False
        unchecked = False
        for event in stream[absorb_pos + 1 :]:
            if (
                event.kind == "fingerprint.skip"
                and event.source == gate_source
                and event.args.get("index") == interval
            ):
                # The faulted interval closed unchecked (partial
                # protection policy): no comparison will ever arrive
                # for it.  Gate-sourced, so checked before the
                # pair-source filter below.
                unchecked = True
                break
            if pair_source is not None:
                if event.source != pair_source:
                    continue
            elif not event.source.startswith("pair"):
                continue
            kind = event.kind
            if kind == "fingerprint.compare" and event.args.get("index") == interval:
                if event.args.get("matched"):
                    aliased = True
                else:
                    detected = True
                    cause = "fingerprint"
                    latency = event.cycle - record.cycle
                break
            if kind == "fingerprint.mismatch" and event.args.get("index") == interval:
                # Paired with the compare above; refine the cause.
                detected = True
                cause = event.args.get("cause", "fingerprint")
                latency = event.cycle - record.cycle
                break
            if kind == "recovery.start":
                why = event.args.get("cause")
                if why in ("timeout", "sync_divergence"):
                    detected = True
                    cause = why
                    latency = event.cycle - record.cycle
                else:
                    flushed = True
                break
        if detected and cause == "fingerprint":
            # The compare event precedes its mismatch record in the
            # stream; look one step ahead for the refined cause.
            for event in stream[absorb_pos + 1 :]:
                if (
                    event.kind == "fingerprint.mismatch"
                    and event.args.get("index") == interval
                    and (
                        pair_source is None or event.source == pair_source
                    )
                ):
                    cause = event.args.get("cause", "fingerprint")
                    break
        outcomes.append(
            DetectionOutcome(
                record, True, detected, cause, latency, aliased, flushed, unchecked
            )
        )
    return outcomes


def detection_latencies(
    records: list[FaultRecord],
    recovery_log: list[tuple[int, str]] | None = None,
    *,
    events=None,
) -> list[int]:
    """Cycles from each injection to the event that detected *it*.

    Fingerprinting's selling point (Smolens et al. [21]) is *bounded*
    detection latency: an upset is caught no later than its fingerprint
    interval's comparison.  With ``events`` (a telemetry snapshot from a
    run armed at the ``events`` level), each fault is correlated with
    its own interval's comparison via :func:`attribute_detections`, so
    recoveries with unrelated causes are never counted.

    The legacy ``recovery_log`` path pairs each fault with the first
    recovery at or after the injection cycle.  That over-attributes —
    any unrelated recovery in the window (input incoherence, another
    fault) is charged to the injection — and is kept only for runs
    without telemetry; prefer ``events``.
    """
    if events is not None:
        return [
            outcome.latency
            for outcome in attribute_detections(records, events)
            if outcome.detected and outcome.latency is not None
        ]
    if recovery_log is None:
        raise ValueError("detection_latencies needs events= or a recovery_log")
    latencies = []
    recovery_cycles = sorted(cycle for cycle, _cause in recovery_log)
    for record in records:
        for cycle in recovery_cycles:
            if cycle >= record.cycle:
                latencies.append(cycle - record.cycle)
                break
    return latencies
