"""Reunion: complexity-effective multicore redundancy — a reproduction.

A from-scratch, cycle-level reproduction of Smolens et al., "Reunion:
Complexity-Effective Multicore Redundancy" (MICRO-39, 2006): a chip
multiprocessor simulator with out-of-order cores and a coherent cache
hierarchy, the Reunion execution model (vocal/mute pairs, relaxed input
replication, phantom and synchronizing requests, fingerprint checking,
and the re-execution protocol), the strict-input-replication oracle
baseline, the paper's workload suite, and a harness regenerating every
table and figure in the evaluation.

Quickstart::

    from repro import CMPSystem, DEFAULT_CONFIG, Mode, assemble

    program = assemble('''
        movi r1, 10
        movi r2, 0
    loop:
        add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    ''')
    config = DEFAULT_CONFIG.replace(n_logical=1).with_redundancy(mode=Mode.REUNION)
    system = CMPSystem(config, [program])
    system.run_until_idle()
    print(system.vocal_cores[0].arf.read(2))  # 55, redundantly computed
"""

from repro.core import FaultInjector, FingerprintAccumulator, LogicalPair
from repro.isa import Instruction, Op, Program, ProgramBuilder, RegisterFile, assemble
from repro.sim import (
    DEFAULT_CONFIG,
    PAPER_TABLE1,
    Consistency,
    Mode,
    PhantomStrength,
    RedundancyConfig,
    Stats,
    SystemConfig,
    TLBMode,
)
from repro.sim.cmp import CMPSystem
from repro.sim.sampling import Sample, matched_pair, run_sample

__version__ = "1.0.0"

__all__ = [
    "CMPSystem",
    "Consistency",
    "DEFAULT_CONFIG",
    "FaultInjector",
    "FingerprintAccumulator",
    "Instruction",
    "LogicalPair",
    "Mode",
    "Op",
    "PAPER_TABLE1",
    "PhantomStrength",
    "Program",
    "ProgramBuilder",
    "RedundancyConfig",
    "RegisterFile",
    "Sample",
    "Stats",
    "SystemConfig",
    "TLBMode",
    "assemble",
    "matched_pair",
    "run_sample",
    "__version__",
]
