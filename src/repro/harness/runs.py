"""Shared experiment infrastructure: scales, configurations, caching.

Every figure/table driver works at a chosen :class:`Scale`.  The paper
warms for 100K cycles and measures 50K per sample at Table 1 size; a
pure-Python reproduction defaults to much shorter windows on the scaled
:data:`~repro.sim.config.DEFAULT_CONFIG` system.  Set the environment
variable ``REPRO_SCALE`` to ``quick`` (default), ``standard``, or
``paper`` to trade wall-clock for fidelity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.sim.config import DEFAULT_CONFIG, PAPER_TABLE1, Mode, SystemConfig
from repro.sim.sampling import Sample, run_sample
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Scale:
    """How long to warm, how long to measure, and how many seeds."""

    name: str
    warmup: int
    measure: int
    seeds: tuple[int, ...]
    config: SystemConfig = DEFAULT_CONFIG


QUICK = Scale("quick", warmup=1200, measure=2500, seeds=(0,))
STANDARD = Scale("standard", warmup=2000, measure=6000, seeds=(0, 1))
PAPER = Scale(
    "paper", warmup=100_000, measure=50_000, seeds=(0, 1, 2), config=PAPER_TABLE1
)

_SCALES = {scale.name: scale for scale in (QUICK, STANDARD, PAPER)}


def current_scale() -> Scale:
    """The scale selected via ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    if name not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[name]


@dataclass
class Runner:
    """Runs and memoizes samples so figures sharing a config reuse them.

    The cache key covers everything that affects a simulation; figure
    drivers can therefore freely re-request the non-redundant baseline.
    """

    scale: Scale
    _cache: dict = field(default_factory=dict)

    def sample(self, config: SystemConfig, workload: Workload, seed: int) -> Sample:
        key = (config, workload.name, seed)
        if key not in self._cache:
            self._cache[key] = run_sample(
                config, workload, self.scale.warmup, self.scale.measure, seed
            )
        return self._cache[key]

    def samples(self, config: SystemConfig, workload: Workload) -> list[Sample]:
        return [self.sample(config, workload, seed) for seed in self.scale.seeds]

    def mean_ipc(self, config: SystemConfig, workload: Workload) -> float:
        samples = self.samples(config, workload)
        return sum(s.ipc for s in samples) / len(samples)

    def normalized_ipc(self, config: SystemConfig, workload: Workload) -> float:
        """IPC normalized to the non-redundant baseline, matched by seed."""
        base_config = self.scale.config.with_redundancy(mode=Mode.NONREDUNDANT)
        ratios = []
        for seed in self.scale.seeds:
            base = self.sample(base_config, workload, seed)
            test = self.sample(config, workload, seed)
            ratios.append(test.ipc / base.ipc if base.ipc else 0.0)
        return sum(ratios) / len(ratios)


def category_average(values: dict[str, float], workloads: list[Workload], category: str) -> float:
    """Average a per-workload metric over one Figure 5 category."""
    members = [w.name for w in workloads if w.category == category]
    return sum(values[name] for name in members) / len(members)
