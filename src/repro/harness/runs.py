"""Shared experiment infrastructure: scales, configurations, caching.

Every figure/table driver works at a chosen :class:`Scale`.  The paper
warms for 100K cycles and measures 50K per sample at Table 1 size; a
pure-Python reproduction defaults to much shorter windows on the scaled
:data:`~repro.sim.config.DEFAULT_CONFIG` system.  Set the environment
variable ``REPRO_SCALE`` to ``quick`` (default), ``standard``, or
``paper`` to trade wall-clock for fidelity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.exec.cache import ResultCache
from repro.exec.jobs import SampleJob, run_job
from repro.exec.pool import ExecutionPool
from repro.exec.progress import Progress, RunManifest
from repro.sim.config import DEFAULT_CONFIG, PAPER_TABLE1, Mode, SystemConfig
from repro.sim.options import SimOptions
from repro.sim.sampling import Sample
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Scale:
    """How long to warm, how long to measure, and how many seeds."""

    name: str
    warmup: int
    measure: int
    seeds: tuple[int, ...]
    config: SystemConfig = DEFAULT_CONFIG


QUICK = Scale("quick", warmup=1200, measure=2500, seeds=(0,))
STANDARD = Scale("standard", warmup=2000, measure=6000, seeds=(0, 1))
PAPER = Scale(
    "paper", warmup=100_000, measure=50_000, seeds=(0, 1, 2), config=PAPER_TABLE1
)

_SCALES = {scale.name: scale for scale in (QUICK, STANDARD, PAPER)}


def scale_by_name(name: str) -> Scale:
    """Look a scale preset up by name (quick/standard/paper)."""
    key = name.lower()
    if key not in _SCALES:
        raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[key]


def current_scale() -> Scale:
    """The scale selected via ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return scale_by_name(name)
    except ValueError:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        ) from None


@dataclass
class Runner:
    """Runs and memoizes samples so figures sharing a config reuse them.

    The in-memory memo key covers everything that affects a simulation
    at a fixed scale; figure drivers can therefore freely re-request the
    non-redundant baseline.  With a persistent ``cache`` attached, every
    completed sample is also stored on disk under a content-hash key
    that additionally covers the warmup/measure windows (so different
    scales never collide) and is reused across processes; see
    :mod:`repro.exec`.
    """

    scale: Scale
    cache: ResultCache | None = None
    #: Simulation options threaded into every job.  All SimOptions
    #: fields are result-neutral by contract, so the memo key and the
    #: persistent content-hash key both ignore them.
    options: SimOptions | None = None
    _cache: dict[tuple[SystemConfig, str, int], Sample] = field(default_factory=dict)

    def _job(self, config: SystemConfig, workload_name: str, seed: int) -> SampleJob:
        return SampleJob(
            config=config,
            workload_name=workload_name,
            seed=seed,
            warmup=self.scale.warmup,
            measure=self.scale.measure,
            options=self.options,
        )

    def sample(self, config: SystemConfig, workload: Workload, seed: int) -> Sample:
        key = (config, workload.name, seed)
        if key not in self._cache:
            job = self._job(config, workload.name, seed)
            sample = self.cache.get(job) if self.cache is not None else None
            if sample is None:
                sample = run_job(job)
                if self.cache is not None:
                    self.cache.put(job, sample)
            self._cache[key] = sample
        return self._cache[key]

    def samples(self, config: SystemConfig, workload: Workload) -> list[Sample]:
        return [self.sample(config, workload, seed) for seed in self.scale.seeds]

    def prefetch(
        self,
        requests: Iterable[tuple[SystemConfig, Workload]],
        jobs: int = 1,
        timeout: float | None = None,
        show_progress: bool = False,
    ) -> RunManifest:
        """Batch-execute every (config, workload) point across ``jobs`` workers.

        Expands each request over the scale's seeds, serves what it can
        from the memo and the persistent cache, fans the rest out over
        the process pool, and warms the memo with every result — after
        which the figure drivers' serial :meth:`sample` calls are pure
        lookups.  Results are bit-identical to serial execution.
        """
        batch: list[SampleJob] = []
        index: dict[str, tuple[SystemConfig, str, int]] = {}
        memo_served: set[tuple[SystemConfig, str, int]] = set()
        for config, workload in requests:
            for seed in self.scale.seeds:
                memo_key = (config, workload.name, seed)
                if memo_key in self._cache:
                    memo_served.add(memo_key)
                    continue
                job = self._job(config, workload.name, seed)
                if job.key not in index:
                    batch.append(job)
                    index[job.key] = memo_key
        # A running experiment service (repro serve) transparently takes
        # the batch; otherwise — or if it dies mid-sweep — run locally.
        from repro.serve.client import ServiceUnavailable, service_pool

        progress = Progress(len(batch), enabled=show_progress)
        pool = service_pool(client_id="prefetch")
        if pool is not None:
            try:
                results, manifest = pool.run(
                    batch, cache=self.cache, progress=progress
                )
            except ServiceUnavailable:
                pool = None
        if pool is None:
            local = ExecutionPool(workers=jobs, timeout=timeout)
            results, manifest = local.run(
                batch, cache=self.cache, progress=progress
            )
        for key, sample in results.items():
            self._cache[index[key]] = sample
        manifest.total += len(memo_served)
        manifest.memo_hits = len(memo_served)
        return manifest

    def mean_ipc(self, config: SystemConfig, workload: Workload) -> float:
        samples = self.samples(config, workload)
        return sum(s.ipc for s in samples) / len(samples)

    def normalized_ipc(self, config: SystemConfig, workload: Workload) -> float:
        """IPC normalized to the non-redundant baseline, matched by seed."""
        base_config = self.scale.config.with_redundancy(mode=Mode.NONREDUNDANT)
        ratios = []
        for seed in self.scale.seeds:
            base = self.sample(base_config, workload, seed)
            test = self.sample(config, workload, seed)
            ratios.append(test.ipc / base.ipc if base.ipc else 0.0)
        return sum(ratios) / len(ratios)


def category_average(values: dict[str, float], workloads: list[Workload], category: str) -> float:
    """Average a per-workload metric over one Figure 5 category."""
    members = [w.name for w in workloads if w.category == category]
    return sum(values[name] for name in members) / len(members)
