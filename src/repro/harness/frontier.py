"""The coverage-vs-throughput frontier across protection policies.

Reunion's headline experiments fix one protection posture — every pair
fully checked — and measure its cost.  The frontier sweep asks the
complementary question: what does *buying back* throughput with a
weaker :class:`~repro.sim.config.ProtectionPolicy` cost in detection
coverage?  For each (policy, workload) point it measures

* **IPC** — a normal sample at the chosen scale, on the scale's config
  with the policy applied uniformly
  (:meth:`~repro.sim.config.SystemConfig.with_protection`), riding the
  existing execution pool and persistent sample cache; and
* **coverage** — a fault-injection campaign
  (:func:`~repro.campaign.run.run_campaign` with
  ``allow_partial=True``) on the campaign-scale config with the same
  policy, reported with its Wilson interval plus the unchecked-escape
  split (SDCs that walked through a policy coverage gap vs. aliased
  through the CRC).

The two measurements deliberately use different system scales — IPC
needs the scale config the other figures use, coverage needs thousands
of short injected runs — but share the policy and workload, which is
the frontier's x/y pairing.  Both renderings are pure functions of the
inputs, so resumed sweeps reproduce them byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.plan import campaign_config
from repro.campaign.run import run_campaign
from repro.exec.jobs import resolve_workload
from repro.exec.progress import Progress
from repro.harness.report import render_table
from repro.harness.runs import Runner, Scale, current_scale
from repro.sim.config import Mode, ProtectionPolicy, parse_policy

#: The default sweep: the full-protection anchor, both heterogeneous
#: reductions, and both partial-coverage points.
DEFAULT_POLICIES = (
    "full",
    "little-mute:2",
    "interval-sampled:0.5",
    "dynamic:8,2,16",
    "unprotected",
)

#: One compute-bound and one memory-bound microbenchmark: the policies'
#: throughput give-back differs most across that axis.
DEFAULT_WORKLOADS = ("compute-kernel", "pointer-chase")

#: Default injections per (policy, workload) coverage point.  Modest —
#: the frontier's job is ordering policies, not tight rate estimates;
#: raise it for publication-grade intervals.
DEFAULT_INJECTIONS = 48


@dataclass(frozen=True)
class FrontierPoint:
    """One (policy, workload) point: throughput and coverage."""

    policy: str  # ProtectionPolicy.describe() spelling
    workload: str
    ipc: float
    coverage: float
    coverage_interval: tuple[float, float]
    coverage_trials: int
    sdc: int
    #: Of the SDCs, how many escaped through an unchecked interval
    #: (policy coverage gap) rather than aliasing through the CRC.
    sdc_unchecked: int
    injections: int


@dataclass(frozen=True)
class FrontierResult:
    """The full sweep, in (policy-order x workload-order)."""

    scale_name: str
    seed: int
    points: tuple[FrontierPoint, ...]

    def point(self, policy: str, workload: str) -> FrontierPoint:
        for point in self.points:
            if point.policy == policy and point.workload == workload:
                return point
        raise KeyError((policy, workload))

    def check_ordering(self) -> list[str]:
        """Coverage-monotonicity violations (empty list: frontier holds).

        Per workload, ``full`` must cover at least as much as
        ``interval-sampled``, which must cover at least as much as
        ``unprotected`` — and ``full`` must strictly dominate
        ``unprotected`` whenever any injection demanded detection.
        The comparison uses point estimates: the ordering is structural
        (unprotected has *no* detection mechanism), not statistical.
        """
        problems: list[str] = []
        for workload in dict.fromkeys(p.workload for p in self.points):
            ladder = [
                point
                for point in self.points
                if point.workload == workload
                and (
                    point.policy == "full"
                    or point.policy.startswith("interval-sampled")
                    or point.policy == "unprotected"
                )
            ]
            for higher, lower in zip(ladder, ladder[1:]):
                if higher.coverage < lower.coverage:
                    problems.append(
                        f"{workload}: {higher.policy} coverage "
                        f"{higher.coverage:.4f} < {lower.policy} "
                        f"{lower.coverage:.4f}"
                    )
            full = next((p for p in ladder if p.policy == "full"), None)
            bare = next((p for p in ladder if p.policy == "unprotected"), None)
            if (
                full is not None
                and bare is not None
                and full.coverage_trials
                and bare.coverage_trials
                and full.coverage <= bare.coverage
            ):
                problems.append(
                    f"{workload}: full coverage {full.coverage:.4f} does not "
                    f"strictly dominate unprotected {bare.coverage:.4f}"
                )
        return problems

    def render(self) -> str:
        rows = [
            [
                point.policy,
                point.workload,
                point.ipc,
                point.coverage,
                (
                    f"[{point.coverage_interval[0]:.3f}, "
                    f"{point.coverage_interval[1]:.3f}]"
                ),
                point.coverage_trials,
                f"{point.sdc_unchecked}/{point.sdc}",
            ]
            for point in self.points
        ]
        return render_table(
            f"Protection frontier — coverage vs throughput ({self.scale_name})",
            ["Policy", "Workload", "IPC", "Coverage", "Wilson 95%", "Trials",
             "SDC unchecked/total"],
            rows,
            "Coverage: detected / consequential injections (campaign scale). "
            "IPC: scale-config samples under the same policy. Unchecked SDCs "
            "escaped through policy coverage gaps, not CRC aliasing.",
        )

    def payload(self) -> dict:
        """The JSON report (deterministic; canonical key order via dump)."""
        return {
            "schema": 1,
            "kind": "frontier",
            "scale": self.scale_name,
            "seed": self.seed,
            "points": [
                {
                    "policy": point.policy,
                    "workload": point.workload,
                    "ipc": point.ipc,
                    "coverage": {
                        "rate": point.coverage,
                        "interval": list(point.coverage_interval),
                        "trials": point.coverage_trials,
                    },
                    "sdc": {"total": point.sdc, "unchecked": point.sdc_unchecked},
                    "injections": point.injections,
                }
                for point in self.points
            ],
        }

    def write(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.payload(), indent=2, sort_keys=True) + "\n"
        )


def _resolve_policies(specs) -> list[ProtectionPolicy]:
    return [parse_policy(spec) for spec in specs]


def run_frontier(
    scale: Scale | None = None,
    policies=DEFAULT_POLICIES,
    workload_names=DEFAULT_WORKLOADS,
    injections: int = DEFAULT_INJECTIONS,
    seed: int = 0,
    jobs: int = 1,
    runner: Runner | None = None,
    resume: bool = False,
    cache_root: str | None = None,
    progress_stream=None,
) -> FrontierResult:
    """Sweep the (policy x workload) grid; see the module docstring.

    ``runner`` supplies the IPC side (and its persistent sample cache);
    the coverage side checkpoints through the campaign cache under
    ``cache_root`` exactly like ``repro campaign`` (``resume=True``
    serves completed injections from it).
    """
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    resolved = _resolve_policies(policies)
    workloads = [resolve_workload(name) for name in workload_names]

    # IPC side first: one prefetch batch across the whole grid.
    reunion = scale.config.with_redundancy(mode=Mode.REUNION)
    ipc_configs = {
        policy.describe(): reunion.with_protection(policy) for policy in resolved
    }
    runner.prefetch(
        [
            (config, workload)
            for config in ipc_configs.values()
            for workload in workloads
        ],
        jobs=jobs,
        show_progress=progress_stream is not None,
    )

    points: list[FrontierPoint] = []
    for policy in resolved:
        label = policy.describe()
        for workload in workloads:
            ipc = runner.mean_ipc(ipc_configs[label], workload)
            campaign = run_campaign(
                workload.name,
                injections,
                seed=seed,
                config=campaign_config(policy=policy),
                workers=jobs,
                resume=resume,
                cache_root=cache_root,
                allow_partial=True,
                progress=(
                    Progress(total=injections, stream=progress_stream)
                    if progress_stream is not None
                    else None
                ),
            )
            stats = campaign.stats
            points.append(
                FrontierPoint(
                    policy=label,
                    workload=workload.name,
                    ipc=ipc,
                    coverage=stats.coverage,
                    coverage_interval=stats.coverage_interval,
                    coverage_trials=stats.coverage_trials,
                    sdc=stats.buckets["sdc"],
                    sdc_unchecked=stats.sdc_unchecked,
                    injections=stats.injections,
                )
            )
    return FrontierResult(
        scale_name=scale.name, seed=seed, points=tuple(points)
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_frontier().render())
