"""Plain-text table and series rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned, paper-style text table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append(
            "  ".join(
                cell.rjust(w) if idx else cell.ljust(w)
                for idx, (cell, w) in enumerate(zip(row, widths))
            )
        )
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    note: str = "",
) -> str:
    """Render line-series data (a figure's curves) as an aligned table."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x, *(values[index] for values in series.values())])
    return render_table(title, headers, rows, note)
