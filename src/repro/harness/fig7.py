"""Figure 7: phantom strengths and TLB architecture.

(a) Reunion normalized IPC per workload for the three phantom request
strengths at a 10-cycle comparison latency.  Shape: global performs
close to the Figure 5 result; shared and null suffer severely from
constant recovery; em3d's shared result approaches null because its
working set exceeds the shared cache.

(b) Average commercial performance with a hardware-managed TLB versus
the UltraSPARC III software-managed TLB (whose fast-miss handler's traps
and non-idempotent MMU operations serialize retirement), across
comparison latencies — a 28% penalty at 40 cycles in the paper.  The
companion SC experiment puts membar semantics on every store: over 60%
loss at 40 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import render_series, render_table
from repro.harness.runs import Runner, Scale, current_scale
from repro.sim.config import Consistency, Mode, PhantomStrength, TLBMode
from repro.workloads import by_name, suite

#: Commercial representatives for the 7(b) latency sweeps.
DEFAULT_COMMERCIAL = ["Apache", "Oracle OLTP", "DB2 DSS Q17"]
DEFAULT_LATENCIES = (0, 10, 20, 30, 40)


@dataclass
class Fig7aResult:
    rows: list[tuple[str, str, float, float, float]]
    # (workload, category, global, shared, null)

    def row(self, name: str) -> tuple[float, float, float]:
        for row in self.rows:
            if row[0] == name:
                return row[2:]
        raise KeyError(name)

    def render(self) -> str:
        return render_table(
            "Figure 7(a) — Reunion normalized IPC by phantom strength (latency 10)",
            ["Workload", "Class", "Global", "Shared", "Null"],
            [list(row) for row in self.rows],
            "Paper shape: Global >> Shared >= Null; em3d's Shared ~ Null "
            "(working set exceeds the shared cache).",
        )


def plan_fig7a(scale: Scale, comparison_latency: int = 10):
    """Every (config, workload) point Figure 7(a) needs."""
    configs = [scale.config.with_redundancy(mode=Mode.NONREDUNDANT)]
    configs += [
        scale.config.with_redundancy(
            mode=Mode.REUNION, comparison_latency=comparison_latency, phantom=strength
        )
        for strength in (PhantomStrength.GLOBAL, PhantomStrength.SHARED, PhantomStrength.NULL)
    ]
    return [(config, workload) for workload in suite() for config in configs]


def run_fig7a(
    scale: Scale | None = None,
    comparison_latency: int = 10,
    runner: Runner | None = None,
) -> Fig7aResult:
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    rows = []
    for workload in suite():
        values = []
        for strength in (PhantomStrength.GLOBAL, PhantomStrength.SHARED, PhantomStrength.NULL):
            config = scale.config.with_redundancy(
                mode=Mode.REUNION,
                comparison_latency=comparison_latency,
                phantom=strength,
            )
            values.append(runner.normalized_ipc(config, workload))
        rows.append((workload.name, workload.category, *values))
    return Fig7aResult(rows)


@dataclass
class Fig7bResult:
    latencies: tuple[int, ...]
    hardware: list[float]
    software: list[float]

    def render(self) -> str:
        return render_series(
            "Figure 7(b) — commercial avg normalized IPC: hardware vs software TLB",
            "latency",
            list(self.latencies),
            {"Hardware TLB": self.hardware, "Software-managed TLB": self.software},
            "Paper: the software-managed TLB's serializing handler costs 28% "
            "at a 40-cycle comparison latency.",
        )


def plan_fig7b(
    scale: Scale,
    latencies: tuple[int, ...] = DEFAULT_LATENCIES,
    workload_names: list[str] | None = None,
):
    """Every (config, workload) point Figure 7(b) needs."""
    workloads = [by_name(name) for name in workload_names or DEFAULT_COMMERCIAL]
    requests = []
    for tlb_mode in (TLBMode.HARDWARE, TLBMode.SOFTWARE):
        base_config = scale.config.with_tlb(mode=tlb_mode)
        configs = [base_config.with_redundancy(mode=Mode.NONREDUNDANT)]
        configs += [
            base_config.with_redundancy(mode=Mode.REUNION, comparison_latency=latency)
            for latency in latencies
        ]
        requests.extend(
            (config, workload) for workload in workloads for config in configs
        )
    return requests


def run_fig7b(
    scale: Scale | None = None,
    latencies: tuple[int, ...] = DEFAULT_LATENCIES,
    workload_names: list[str] | None = None,
    runner: Runner | None = None,
) -> Fig7bResult:
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    names = workload_names or DEFAULT_COMMERCIAL
    curves: dict[TLBMode, list[float]] = {TLBMode.HARDWARE: [], TLBMode.SOFTWARE: []}
    for tlb_mode in (TLBMode.HARDWARE, TLBMode.SOFTWARE):
        base_config = scale.config.with_tlb(mode=tlb_mode)
        for latency in latencies:
            config = base_config.with_redundancy(
                mode=Mode.REUNION, comparison_latency=latency
            )
            # Normalize against the non-redundant system with the *same*
            # TLB architecture, isolating the redundancy cost as the
            # paper does.
            nonred = base_config.with_redundancy(mode=Mode.NONREDUNDANT)
            total = 0.0
            for name in names:
                workload = by_name(name)
                ratios = []
                for seed in scale.seeds:
                    base = runner.sample(nonred, workload, seed)
                    test = runner.sample(config, workload, seed)
                    ratios.append(test.ipc / base.ipc if base.ipc else 0.0)
                total += sum(ratios) / len(ratios)
            curves[tlb_mode].append(total / len(names))
    return Fig7bResult(tuple(latencies), curves[TLBMode.HARDWARE], curves[TLBMode.SOFTWARE])


@dataclass
class SCResult:
    latencies: tuple[int, ...]
    tso: list[float]
    sc: list[float]

    def render(self) -> str:
        return render_series(
            "Section 5.5 — Reunion under TSO vs Sequential Consistency",
            "latency",
            list(self.latencies),
            {"TSO": self.tso, "SC": self.sc},
            "Paper: SC's store serialization loses over 60% at a 40-cycle "
            "comparison latency.",
        )


def plan_sc_comparison(
    scale: Scale,
    latencies: tuple[int, ...] = (10, 40),
    workload_names: list[str] | None = None,
):
    """Every (config, workload) point the Section 5.5 SC experiment needs."""
    workloads = [by_name(name) for name in workload_names or DEFAULT_COMMERCIAL]
    requests = []
    for consistency in (Consistency.TSO, Consistency.SC):
        base_config = scale.config.replace(consistency=consistency)
        configs = [base_config.with_redundancy(mode=Mode.NONREDUNDANT)]
        configs += [
            base_config.with_redundancy(mode=Mode.REUNION, comparison_latency=latency)
            for latency in latencies
        ]
        requests.extend(
            (config, workload) for workload in workloads for config in configs
        )
    return requests


def run_sc_comparison(
    scale: Scale | None = None,
    latencies: tuple[int, ...] = (10, 40),
    workload_names: list[str] | None = None,
    runner: Runner | None = None,
) -> SCResult:
    """The SC-vs-TSO store-serialization experiment from Section 5.5."""
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    names = workload_names or DEFAULT_COMMERCIAL
    curves: dict[Consistency, list[float]] = {Consistency.TSO: [], Consistency.SC: []}
    for consistency in (Consistency.TSO, Consistency.SC):
        base_config = scale.config.replace(consistency=consistency)
        nonred = base_config.with_redundancy(mode=Mode.NONREDUNDANT)
        for latency in latencies:
            config = base_config.with_redundancy(
                mode=Mode.REUNION, comparison_latency=latency
            )
            total = 0.0
            for name in names:
                workload = by_name(name)
                ratios = []
                for seed in scale.seeds:
                    base = runner.sample(nonred, workload, seed)
                    test = runner.sample(config, workload, seed)
                    ratios.append(test.ipc / base.ipc if base.ipc else 0.0)
                total += sum(ratios) / len(ratios)
            curves[consistency].append(total / len(names))
    return SCResult(tuple(latencies), curves[Consistency.TSO], curves[Consistency.SC])


if __name__ == "__main__":  # pragma: no cover
    print(run_fig7a().render())
    print()
    print(run_fig7b().render())
    print()
    print(run_sc_comparison().render())
