"""Table 3: input-incoherence frequency per phantom request strength.

The paper reports input-incoherence events per million retired
instructions under global, shared, and null phantom requests, alongside
TLB miss frequency as a comparably-priced system event.  The shape that
must hold: global is orders of magnitude below shared and null (which
make recovery a bottleneck), and commercial TLB misses dwarf
global-phantom incoherence.

Scaling note: absolute incoherence counts here are inflated relative to
the paper (roughly two orders of magnitude) because the scaled system's
shared heaps are proportionally hotter and windows far shorter; the
cross-strength ordering is the reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import render_table
from repro.harness.runs import Runner, Scale, current_scale
from repro.sim.config import Mode, PhantomStrength
from repro.workloads import suite


@dataclass
class Table3Result:
    """Per-workload incoherence rates and TLB miss rates, events / 1M instrs."""

    rows: list[tuple[str, float, float, float, float]]
    # (workload, global, shared, null, tlb_misses)

    def row(self, name: str) -> tuple[float, float, float, float]:
        for row in self.rows:
            if row[0] == name:
                return row[1:]
        raise KeyError(name)

    def render(self) -> str:
        return render_table(
            "Table 3 — input incoherence per 1M instructions, by phantom strength",
            ["Workload", "Global", "Shared", "Null", "TLB misses"],
            [
                [name, f"{g:,.1f}", f"{s:,.0f}", f"{n:,.0f}", f"{t:,.0f}"]
                for name, g, s, n, t in self.rows
            ],
            "Paper: Global 0.2-21, Shared 1.8K-17K, Null 4K-23K, "
            "TLB 206-3.3K.  Shape: Global << Shared <= Null.",
        )


def plan_table3(scale: Scale, comparison_latency: int = 10):
    """Every (config, workload) point Table 3 needs, for batch prefetch."""
    configs = [
        scale.config.with_redundancy(
            mode=Mode.REUNION, comparison_latency=comparison_latency, phantom=strength
        )
        for strength in (PhantomStrength.GLOBAL, PhantomStrength.SHARED, PhantomStrength.NULL)
    ]
    return [(config, workload) for workload in suite() for config in configs]


def run_table3(
    scale: Scale | None = None,
    comparison_latency: int = 10,
    runner: Runner | None = None,
) -> Table3Result:
    """Regenerate Table 3 at the chosen scale."""
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    rows = []
    for workload in suite():
        rates = {}
        tlb = 0.0
        for strength in (PhantomStrength.GLOBAL, PhantomStrength.SHARED, PhantomStrength.NULL):
            config = scale.config.with_redundancy(
                mode=Mode.REUNION,
                comparison_latency=comparison_latency,
                phantom=strength,
            )
            samples = runner.samples(config, workload)
            rates[strength] = sum(s.incoherence_per_minstr for s in samples) / len(samples)
            if strength is PhantomStrength.GLOBAL:
                tlb = sum(s.tlb_misses_per_minstr for s in samples) / len(samples)
        rows.append(
            (
                workload.name,
                rates[PhantomStrength.GLOBAL],
                rates[PhantomStrength.SHARED],
                rates[PhantomStrength.NULL],
                tlb,
            )
        )
    return Table3Result(rows)


if __name__ == "__main__":  # pragma: no cover
    print(run_table3().render())
