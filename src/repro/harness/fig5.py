"""Figure 5: baseline performance of Strict and Reunion.

The paper's Figure 5 shows, per workload, the IPC of the strict-input-
replication oracle and of Reunion normalized to the non-redundant
baseline, at a 10-cycle comparison latency.  Headline numbers: Strict
loses 5% (commercial) / 2% (scientific) on average; Reunion loses 10% /
8%, of which 5-6 points come from relaxed input replication itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import render_table
from repro.harness.runs import Runner, Scale, category_average, current_scale
from repro.sim.config import Mode
from repro.workloads import suite


@dataclass
class Fig5Result:
    """Per-workload normalized IPC for both redundant models."""

    rows: list[tuple[str, str, float, float]]  # name, category, strict, reunion
    comparison_latency: int

    def averages(self, model_index: int) -> dict[str, float]:
        """Category averages: model_index 2 = Strict, 3 = Reunion."""
        out: dict[str, float] = {}
        for category in ("Web", "OLTP", "DSS", "Scientific"):
            members = [row for row in self.rows if row[1] == category]
            out[category] = sum(row[model_index] for row in members) / len(members)
        return out

    def commercial_average(self, model_index: int) -> float:
        members = [row for row in self.rows if row[1] != "Scientific"]
        return sum(row[model_index] for row in members) / len(members)

    def scientific_average(self, model_index: int) -> float:
        members = [row for row in self.rows if row[1] == "Scientific"]
        return sum(row[model_index] for row in members) / len(members)

    def render(self) -> str:
        note = (
            f"Strict avg: commercial {self.commercial_average(2):.3f}, "
            f"scientific {self.scientific_average(2):.3f}.  "
            f"Reunion avg: commercial {self.commercial_average(3):.3f}, "
            f"scientific {self.scientific_average(3):.3f}.\n"
            "Paper: Strict 0.95 / 0.98; Reunion 0.90 / 0.92 "
            "(10-cycle comparison latency)."
        )
        return render_table(
            f"Figure 5 — normalized IPC, comparison latency = {self.comparison_latency}",
            ["Workload", "Class", "Strict", "Reunion"],
            [list(row) for row in self.rows],
            note,
        )


def plan_fig5(scale: Scale, comparison_latency: int = 10):
    """Every (config, workload) point Figure 5 needs, for batch prefetch."""
    configs = [
        scale.config.with_redundancy(mode=Mode.NONREDUNDANT),
        scale.config.with_redundancy(
            mode=Mode.STRICT, comparison_latency=comparison_latency
        ),
        scale.config.with_redundancy(
            mode=Mode.REUNION, comparison_latency=comparison_latency
        ),
    ]
    return [(config, workload) for workload in suite() for config in configs]


def run_fig5(
    scale: Scale | None = None,
    comparison_latency: int = 10,
    runner: Runner | None = None,
) -> Fig5Result:
    """Regenerate Figure 5 at the chosen scale."""
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    strict_config = scale.config.with_redundancy(
        mode=Mode.STRICT, comparison_latency=comparison_latency
    )
    reunion_config = scale.config.with_redundancy(
        mode=Mode.REUNION, comparison_latency=comparison_latency
    )
    rows = []
    for workload in suite():
        strict = runner.normalized_ipc(strict_config, workload)
        reunion = runner.normalized_ipc(reunion_config, workload)
        rows.append((workload.name, workload.category, strict, reunion))
    return Fig5Result(rows, comparison_latency)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig5().render())
