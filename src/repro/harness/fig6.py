"""Figure 6: sensitivity to the comparison latency.

(a) Strict: no statistically significant loss at zero latency; penalty
grows linearly, reaching ~17% (commercial) / ~11% (scientific) at 40
cycles.  Commercial workloads stall on serializing instructions;
scientific workloads lose memory-level parallelism to check-stage ROB
occupancy.

(b) Reunion: a nonzero penalty already at zero latency (the 5-6%
relaxed-input-replication cost: loose coupling and shared-cache
contention from mute requests), converging toward the Strict trend as
the comparison latency starts to dominate — ~22% / ~13% at 40 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import render_series
from repro.harness.runs import Runner, Scale, current_scale
from repro.sim.config import Mode
from repro.workloads import by_name

#: One representative per Figure 6 class keeps the sweep tractable at
#: laptop scale; `workload_names` can be overridden for full runs.
DEFAULT_REPRESENTATIVES = {
    "OLTP": ["Oracle OLTP"],
    "Web": ["Apache"],
    "DSS": ["DB2 DSS Q17"],
    "Scientific": ["ocean", "em3d"],
}

DEFAULT_LATENCIES = (0, 10, 20, 30, 40)


@dataclass
class Fig6Result:
    """Normalized IPC per class across comparison latencies."""

    model: Mode
    latencies: tuple[int, ...]
    series: dict[str, list[float]]  # class -> normalized IPC per latency

    def render(self) -> str:
        paper = (
            "Paper (a) Strict: ~1.0 at 0 cycles; commercial ~0.83, scientific "
            "~0.89 at 40."
            if self.model is Mode.STRICT
            else "Paper (b) Reunion: ~0.94-0.95 at 0 cycles; commercial ~0.78, "
            "scientific ~0.87 at 40."
        )
        sub = "a" if self.model is Mode.STRICT else "b"
        return render_series(
            f"Figure 6({sub}) — {self.model.value} normalized IPC vs comparison latency",
            "latency",
            list(self.latencies),
            self.series,
            paper,
        )


def plan_fig6(
    model: Mode,
    scale: Scale,
    latencies: tuple[int, ...] = DEFAULT_LATENCIES,
    representatives: dict[str, list[str]] | None = None,
):
    """Every (config, workload) point one Figure 6 panel needs."""
    representatives = representatives or DEFAULT_REPRESENTATIVES
    workloads = [
        by_name(name) for names in representatives.values() for name in names
    ]
    requests = [
        (scale.config.with_redundancy(mode=Mode.NONREDUNDANT), workload)
        for workload in workloads
    ]
    for latency in latencies:
        config = scale.config.with_redundancy(mode=model, comparison_latency=latency)
        requests.extend((config, workload) for workload in workloads)
    return requests


def run_fig6(
    model: Mode,
    scale: Scale | None = None,
    latencies: tuple[int, ...] = DEFAULT_LATENCIES,
    representatives: dict[str, list[str]] | None = None,
    runner: Runner | None = None,
) -> Fig6Result:
    """Regenerate one panel of Figure 6 (``model`` = STRICT or REUNION)."""
    if model not in (Mode.STRICT, Mode.REUNION):
        raise ValueError("Figure 6 compares the STRICT and REUNION models")
    scale = scale or (runner.scale if runner else current_scale())
    runner = runner or Runner(scale)
    representatives = representatives or DEFAULT_REPRESENTATIVES

    series: dict[str, list[float]] = {}
    for category, names in representatives.items():
        points = []
        for latency in latencies:
            config = scale.config.with_redundancy(
                mode=model, comparison_latency=latency
            )
            value = sum(
                runner.normalized_ipc(config, by_name(name)) for name in names
            ) / len(names)
            points.append(value)
        series[category] = points
    return Fig6Result(model, tuple(latencies), series)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig6(Mode.STRICT).render())
    print()
    print(run_fig6(Mode.REUNION).render())
