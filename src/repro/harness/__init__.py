"""Experiment harness: one driver per table/figure in the paper.

| Paper artifact | Driver |
|----------------|--------|
| Figure 5       | :func:`repro.harness.fig5.run_fig5` |
| Figure 6(a)    | :func:`repro.harness.fig6.run_fig6` with ``Mode.STRICT`` |
| Figure 6(b)    | :func:`repro.harness.fig6.run_fig6` with ``Mode.REUNION`` |
| Table 3        | :func:`repro.harness.table3.run_table3` |
| Figure 7(a)    | :func:`repro.harness.fig7.run_fig7a` |
| Figure 7(b)    | :func:`repro.harness.fig7.run_fig7b` |
| Section 5.5 SC | :func:`repro.harness.fig7.run_sc_comparison` |
"""

from repro.harness.fig5 import Fig5Result, plan_fig5, run_fig5
from repro.harness.fig6 import Fig6Result, plan_fig6, run_fig6
from repro.harness.frontier import (
    FrontierPoint,
    FrontierResult,
    run_frontier,
)
from repro.harness.fig7 import (
    Fig7aResult,
    Fig7bResult,
    SCResult,
    plan_fig7a,
    plan_fig7b,
    plan_sc_comparison,
    run_fig7a,
    run_fig7b,
    run_sc_comparison,
)
from repro.harness.report import render_series, render_table
from repro.harness.runs import (
    PAPER,
    QUICK,
    STANDARD,
    Runner,
    Scale,
    current_scale,
    scale_by_name,
)
from repro.harness.table3 import Table3Result, plan_table3, run_table3

__all__ = [
    "Fig5Result",
    "Fig6Result",
    "Fig7aResult",
    "Fig7bResult",
    "FrontierPoint",
    "FrontierResult",
    "PAPER",
    "QUICK",
    "Runner",
    "STANDARD",
    "SCResult",
    "Scale",
    "Table3Result",
    "current_scale",
    "plan_fig5",
    "plan_fig6",
    "plan_fig7a",
    "plan_fig7b",
    "plan_sc_comparison",
    "plan_table3",
    "render_series",
    "render_table",
    "run_fig5",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_frontier",
    "run_sc_comparison",
    "run_table3",
    "scale_by_name",
]
