"""Out-of-order pipeline substrate: core, ROB, predictor, retire gates."""

from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.gates import ImmediateGate, RetireGate
from repro.pipeline.ooo_core import OoOCore
from repro.pipeline.rob import DynInstr, DynState
from repro.pipeline.tlb_handler import TSB_BASE, handler_sequence
from repro.pipeline.trace import InstrTrace, PipelineTracer

__all__ = [
    "BranchPredictor",
    "DynInstr",
    "DynState",
    "ImmediateGate",
    "InstrTrace",
    "OoOCore",
    "PipelineTracer",
    "RetireGate",
    "TSB_BASE",
    "handler_sequence",
]
