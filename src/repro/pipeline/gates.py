"""Retire gates: the policy boundary between pipeline and redundancy.

The out-of-order core hands completed instructions, in program order, to
its *retire gate*.  The gate decides when each may update architectural
state:

* :class:`ImmediateGate` — non-redundant execution: instructions retire
  the cycle after they are offered.
* ``StrictCheckGate`` (in :mod:`repro.core.strict`) — oracle strict input
  replication: fingerprints are compared against a virtual partner with
  identical timing, so only the comparison latency and the resulting
  buffering are modelled.
* ``ReunionCheckGate`` (in :mod:`repro.core.check_stage`) — real
  fingerprint exchange between the vocal and mute cores of a pair.

Keeping the gate abstract lets one pipeline implementation serve all
three execution models, which is exactly the paper's dual-use argument.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from repro.pipeline.flat import M_INJECTED
from repro.pipeline.rob import DynInstr

#: Horizon sentinel for the cycle-skipping kernel: "no pending event".
#: Any real simulated cycle is far below this.
NEVER = 1 << 62


class RetireGate(Protocol):
    """What the core needs from a retirement-checking policy."""

    def offer(self, entry: DynInstr, now: int) -> None:
        """An instruction (oldest, completed) enters the check stage."""

    def pop_retirable(self, now: int, limit: int) -> list[DynInstr]:
        """Entries cleared for architectural retirement, oldest first.

        The returned list is a per-gate scratch buffer, valid only until
        the next ``pop_retirable``/``pop_retirable_f`` call on this gate
        — callers consume it immediately and never retain it.
        """

    def has_retirable(self, now: int) -> bool:
        """Cheap allocation-free precheck: would ``pop_retirable`` act?

        True whenever ``pop_retirable(now, ...)`` would return entries
        *or* discard squashed ones — the hot loop calls this every cycle
        and only pays for the real pop when something can happen.
        """

    # -- flat-ROB protocol (REPRO_HOTLOOP=soa) ---------------------------
    # The flat hot loop identifies in-flight instructions by packed int
    # references ``(seq << core._f_sbits) | slot`` into the core's column
    # arrays instead of DynInstr objects (see repro.pipeline.flat).  The
    # ``*_f`` methods mirror their object twins over those columns; a ref
    # whose slot seq no longer matches is squashed-or-freed and treated
    # exactly as ``entry.squashed``.

    def offer_f(self, core, slot: int, now: int) -> None:
        """Flat twin of :meth:`offer` for the live ring slot ``slot``."""

    def pop_retirable_f(self, core, now: int, limit: int) -> list[int]:
        """Packed refs cleared for retirement, oldest first.

        Same scratch-buffer lifetime as :meth:`pop_retirable`.  Callers
        must re-validate each ref's seq before acting on it: a TRAP or
        interrupt retired mid-batch squashes younger refs still in the
        returned batch.
        """

    def has_retirable_f(self, core, now: int) -> bool:
        """Flat twin of :meth:`has_retirable`."""

    def next_release_f(self, core, now: int) -> int:
        """Flat twin of :meth:`next_release`."""

    def close_open(self, now: int) -> None:
        """A serializing instruction is waiting: end the open interval now.

        Section 4.4: "the fingerprint interval immediately ends to allow
        older instructions to retire" when a serializing instruction is
        encountered.
        """

    def flush(self) -> None:
        """Drop all pending check state (squash / recovery)."""

    def next_release(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which this gate could release work.

        Conservative horizon for the cycle-skipping kernel: ``now`` means
        "may act on the very next step", :data:`NEVER` means the gate has
        no self-generated events (it can still be woken externally, e.g.
        by its pair partner's comparison).
        """

    @property
    def open_count(self) -> int:
        """User instructions in the currently-open fingerprint interval."""

    # Implementations also carry a ``users_offered`` attribute: the
    # cumulative count of *user* (non-injected) instructions offered,
    # never reset by :meth:`flush`.  The core's offer loops consult it
    # to service external interrupts at the in-order offer boundary.


class ImmediateGate:
    """Non-redundant retirement: no checking, no added latency."""

    __slots__ = ("_queue", "_scratch", "users_offered")

    def __init__(self) -> None:
        # Object mode queues DynInstr entries; flat mode queues packed
        # int refs.  A gate only ever serves one loop flavour.
        self._queue: deque = deque()
        #: Reused pop_retirable output buffer (valid until the next pop).
        self._scratch: list = []
        #: Cumulative user instructions offered (interrupt offer boundary).
        self.users_offered = 0

    def offer(self, entry: DynInstr, now: int) -> None:
        if not entry.injected:
            self.users_offered += 1
        self._queue.append(entry)

    def offer_f(self, core, slot: int, now: int) -> None:
        if not core.f_mask[slot] & M_INJECTED:
            self.users_offered += 1
        self._queue.append((core.f_seq[slot] << core._f_sbits) | slot)

    def pop_retirable(self, now: int, limit: int) -> list[DynInstr]:
        out = self._scratch
        out.clear()
        queue = self._queue
        while queue and len(out) < limit:
            out.append(queue.popleft())
        return out

    def pop_retirable_f(self, core, now: int, limit: int) -> list[int]:
        # Queued refs may have gone stale (squashed after offer); the
        # caller re-validates seqs, exactly as the object loop re-tests
        # entry.squashed on popped entries.
        return self.pop_retirable(now, limit)

    def has_retirable(self, now: int) -> bool:
        return bool(self._queue)

    def has_retirable_f(self, core, now: int) -> bool:
        return bool(self._queue)

    def close_open(self, now: int) -> None:
        pass  # no intervals without checking

    def flush(self) -> None:
        self._queue.clear()

    def next_release(self, now: int) -> int:
        # Queued entries retire on the very next step; otherwise nothing.
        return now if self._queue else NEVER

    def next_release_f(self, core, now: int) -> int:
        return now if self._queue else NEVER

    open_count = 0  # no fingerprint intervals without checking
