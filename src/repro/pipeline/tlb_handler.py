"""The software TLB-miss handler, as an injectable instruction sequence.

Section 5.5 of the paper identifies the UltraSPARC III software-managed
TLB's fast-miss handler as the dominant source of system-specific
serializing instructions in commercial workloads: the handler "includes
two traps, for entry and exit, and executes three non-idempotent memory
requests to the memory management unit", around the TSB loads that fetch
the translation.

The pipeline injects this sequence when a memory operation misses a
software-managed TLB.  Injected instructions:

* are real dynamic instructions — they occupy ROB entries, access the
  cache hierarchy (the TSB loads), and their traps/MMU operations stall
  retirement for a full comparison latency under redundant checking;
* write only ``r0`` so user architectural state is untouched;
* are *not* fingerprinted and do not count as user instructions.  The
  paper measures user instructions per cycle, and keeping handlers out of
  the fingerprint stream makes vocal/mute TLB-timing divergence (possible
  after a recovery) a pure timing event rather than a spurious mismatch.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op

#: Base byte address of the software TSB / page-table region.  High enough
#: to stay clear of every workload's data; handler loads hit real cache
#: lines here, so hot pages keep their TSB entries L1-resident, as on
#: real hardware.
TSB_BASE = 0x4000_0000

#: Number of distinct TSB lines; translations hash onto these.
TSB_LINES = 4096


def tsb_address(page: int, which: int) -> int:
    """Address of a TSB entry word for ``page`` (two words per entry)."""
    return TSB_BASE + (page % TSB_LINES) * 16 + 8 * which


def handler_sequence(page: int) -> list[Instruction]:
    """The fast-miss handler for a miss on ``page``.

    Two traps (entry/exit), two TSB loads, three non-idempotent MMU
    operations — seven instructions, five of them serializing.
    """
    return [
        Instruction(Op.TRAP),
        Instruction(Op.LOAD, rd=0, rs1=0, imm=tsb_address(page, 0)),
        Instruction(Op.LOAD, rd=0, rs1=0, imm=tsb_address(page, 1)),
        Instruction(Op.MMUOP),
        Instruction(Op.MMUOP),
        Instruction(Op.MMUOP),
        Instruction(Op.TRAP),
    ]
