"""Pipeline tracing: per-instruction event timelines.

Attach a :class:`PipelineTracer` to a core and every dynamic instruction
records its dispatch, issue, completion, and retirement cycles (plus
squashes).  ``render()`` produces a classic text waterfall — the tool
you want when a retirement stall or a recovery needs explaining.

Tracing costs one attribute check per pipeline event when disabled and
is therefore always compiled in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.rob import DynInstr


@dataclass
class InstrTrace:
    """Lifecycle timestamps of one dynamic instruction."""

    seq: int
    pc: int
    text: str
    injected: bool
    dispatched: int = -1
    issued: int = -1
    completed: int = -1
    retired: int = -1
    squashed: bool = False

    @property
    def lifetime(self) -> int:
        """Dispatch-to-retire cycles (-1 while unfinished or squashed)."""
        if self.retired < 0 or self.dispatched < 0:
            return -1
        return self.retired - self.dispatched


class PipelineTracer:
    """Collects instruction lifecycles from one core."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._records: dict[int, InstrTrace] = {}
        self.order: list[int] = []

    # -- recording (called from the core) ----------------------------------
    def dispatch(self, entry: DynInstr, cycle: int) -> None:
        if len(self.order) >= self.capacity:
            return
        record = InstrTrace(
            seq=entry.seq,
            pc=entry.pc,
            text=str(entry.inst),
            injected=entry.injected,
            dispatched=cycle,
        )
        self._records[entry.seq] = record
        self.order.append(entry.seq)

    def issue(self, entry: DynInstr, cycle: int) -> None:
        record = self._records.get(entry.seq)
        if record is not None:
            record.issued = cycle

    def complete(self, entry: DynInstr, cycle: int) -> None:
        record = self._records.get(entry.seq)
        if record is not None:
            record.completed = cycle

    def retire(self, entry: DynInstr, cycle: int) -> None:
        record = self._records.get(entry.seq)
        if record is not None:
            record.retired = cycle

    def squash(self, entry: DynInstr) -> None:
        record = self._records.get(entry.seq)
        if record is not None:
            record.squashed = True

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.order)

    def record_for(self, seq: int) -> InstrTrace | None:
        return self._records.get(seq)

    def retired_records(self) -> list[InstrTrace]:
        return [
            self._records[seq]
            for seq in self.order
            if self._records[seq].retired >= 0 and not self._records[seq].squashed
        ]

    def mean_lifetime(self) -> float:
        """Average dispatch-to-retire cycles of retired instructions.

        This is the check-occupancy metric: under redundant execution it
        grows by roughly the comparison latency (Section 5.2).
        """
        lifetimes = [r.lifetime for r in self.retired_records() if r.lifetime >= 0]
        return sum(lifetimes) / len(lifetimes) if lifetimes else 0.0

    # -- rendering ----------------------------------------------------------------
    def render(self, last: int = 24, width: int = 56) -> str:
        """A text waterfall of the most recent ``last`` instructions."""
        records = [self._records[seq] for seq in self.order][-last:]
        if not records:
            return "(no instructions traced)"
        start = min(r.dispatched for r in records)
        end = max(max(r.retired, r.completed, r.issued, r.dispatched) for r in records)
        span = max(1, end - start)
        scale = min(1.0, width / span)

        def col(cycle: int) -> int:
            return int((cycle - start) * scale) if cycle >= 0 else -1

        lines = [f"cycle {start} .. {end}  (D=dispatch X=issue C=complete R=retire)"]
        for record in records:
            lane = [" "] * (int(span * scale) + 2)
            for cycle, mark in (
                (record.dispatched, "D"),
                (record.issued, "X"),
                (record.completed, "C"),
                (record.retired, "R"),
            ):
                position = col(cycle)
                if position >= 0:
                    lane[position] = mark
            flag = "!" if record.squashed else "i" if record.injected else " "
            lines.append(f"{record.seq:>5}{flag} {record.text[:26]:<26} |{''.join(lane)}|")
        return "\n".join(lines)
