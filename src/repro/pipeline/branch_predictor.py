"""A gshare-style branch direction predictor.

Targets come from the static instruction (the toy ISA has only direct
branches), so no BTB is modelled — only direction prediction, which is
what redirects fetch and creates squash/refill penalties.
"""

from __future__ import annotations


class BranchPredictor:
    """Global-history-XOR-PC indexed table of 2-bit saturating counters."""

    __slots__ = ("_table", "_mask", "_history")

    def __init__(self, entries: int = 1024) -> None:
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self._table = [2] * entries  # weakly taken
        self._mask = entries - 1
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift global history."""
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._mask
