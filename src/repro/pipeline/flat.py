"""Cold-path views over the flat-array ROB.

The flat hot loop (``REPRO_HOTLOOP=soa``, see
:meth:`repro.pipeline.ooo_core.OoOCore.use_soa_hotloop`) keeps all
in-flight instruction state in preallocated per-core column lists — a
power-of-two ring of slots indexed by ``packed = (seq << sbits) | slot``
references.  The steady-state dispatch→issue→complete→retire loop never
builds a Python object per instruction; everything that still wants a
``DynInstr``-shaped entry (fault injection, bandwidth metering, pipeline
tracing, sync-request servicing, replay bookkeeping) receives a
:class:`FlatView` instead.

A view is a per-slot singleton owned by the core (``core._f_views``),
re-stamped with the slot's current ``seq`` each time the core hands it
out.  That makes views safe to pass to transient consumers — every hook
in the tree reads the entry during the call and stores nothing — while
``squashed`` stays meaningful afterwards: a view whose stamped seq no
longer matches the column is stale, which is exactly the
squashed-or-freed condition the object loop expresses via
``DynInstr.squashed`` / ``DynState.RETIRED``.

Write-through setters cover the fields cold paths mutate (fault
corruption of results/addresses/branch targets, sync-request value
delivery, the pair controller's ``was_sync`` stamp).

Alongside the columns, the flat loop hoists per-core config scalars
into ``_c_*`` attributes at ``use_soa_hotloop`` time.  Anything that
mutates one of those after construction must refresh the hoisted copy —
``OoOCore.set_issue_width`` (the little-mute protection policy's
narrowed issue stage, ``_c_issue_width``) is the one mutable example,
and it re-stamps the hoist itself so both hot loops read the same
width whichever order the policy and the loop selection are applied in.
"""

from __future__ import annotations

from repro.isa.decode import F_SER

#: Packed-boolean bits of the ``f_mask`` column (one int per slot).
M_INJECTED = 1
M_SYNC = 2  # was_sync: satisfied as a synchronizing request
M_CONSUMED = 4  # a younger dispatch captured this entry's result
M_FAULTED = 8  # the fault injector corrupted this entry


class FlatView:
    """A ``DynInstr``-shaped window onto one flat-ROB slot."""

    __slots__ = ("_c", "_s", "_q")

    def __init__(self, core, slot: int) -> None:
        self._c = core
        self._s = slot
        self._q = -1  # stamped seq; -1 never matches a live slot

    # -- identity -------------------------------------------------------
    @property
    def seq(self) -> int:
        # The stamp, not the column: a squash/retire frees the column
        # (seq -1) but consumers like the tracer still key by the old seq.
        return self._q

    @property
    def squashed(self) -> bool:
        return self._c.f_seq[self._s] != self._q

    # -- read-only columns ----------------------------------------------
    @property
    def pc(self) -> int:
        return self._c.f_pc[self._s]

    @property
    def inst(self):
        return self._c.f_inst[self._s]

    @property
    def state(self) -> int:
        return self._c.f_state[self._s]

    @property
    def pending(self) -> int:
        return self._c.f_pend[self._s]

    @property
    def val1(self):
        return self._c.f_v1[self._s]

    @property
    def val2(self):
        return self._c.f_v2[self._s]

    @property
    def predicted_next(self):
        return self._c.f_pred[self._s]

    @property
    def complete_cycle(self) -> int:
        return self._c.f_ccyc[self._s]

    @property
    def fill_addr(self):
        return self._c.f_fill[self._s]

    @property
    def flags(self) -> int:
        return self._c.f_flags[self._s]

    @property
    def replay_index(self):
        return self._c.f_ridx[self._s]

    @property
    def serializing(self) -> bool:
        return bool(self._c.f_flags[self._s] & F_SER)

    # -- packed booleans -------------------------------------------------
    @property
    def injected(self) -> bool:
        return bool(self._c.f_mask[self._s] & M_INJECTED)

    @property
    def was_sync(self) -> bool:
        return bool(self._c.f_mask[self._s] & M_SYNC)

    @was_sync.setter
    def was_sync(self, value: bool) -> None:
        if value:
            self._c.f_mask[self._s] |= M_SYNC
        else:
            self._c.f_mask[self._s] &= ~M_SYNC

    @property
    def consumed(self) -> bool:
        return bool(self._c.f_mask[self._s] & M_CONSUMED)

    @property
    def faulted(self) -> bool:
        return bool(self._c.f_mask[self._s] & M_FAULTED)

    @faulted.setter
    def faulted(self, value: bool) -> None:
        if value:
            self._c.f_mask[self._s] |= M_FAULTED
        else:
            self._c.f_mask[self._s] &= ~M_FAULTED

    # -- mutable value columns (write-through) ---------------------------
    @property
    def result(self):
        return self._c.f_res[self._s]

    @result.setter
    def result(self, value) -> None:
        self._c.f_res[self._s] = value

    @property
    def addr(self):
        return self._c.f_addr[self._s]

    @addr.setter
    def addr(self, value) -> None:
        self._c.f_addr[self._s] = value

    @property
    def store_value(self):
        return self._c.f_sval[self._s]

    @store_value.setter
    def store_value(self, value) -> None:
        self._c.f_sval[self._s] = value

    @property
    def actual_next(self):
        return self._c.f_anext[self._s]

    @actual_next.setter
    def actual_next(self, value) -> None:
        self._c.f_anext[self._s] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatView(slot={self._s}, seq={self._q}, pc={self.pc}, "
            f"state={self.state}, squashed={self.squashed})"
        )
