"""Dynamic instruction records — the reorder buffer (RUU) entries.

A :class:`DynInstr` tracks one in-flight instruction from dispatch to
retirement.  Operand values are captured eagerly at dispatch when the
producer has completed, or filled in later by the producer's wake-up.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction


class DynState:
    """Lifecycle states of a dynamic instruction (plain ints for speed)."""

    DISPATCHED = 0  # in ROB, waiting for operands
    ISSUED = 1  # executing
    COMPLETED = 2  # result available, waiting to enter check/retire
    IN_CHECK = 3  # offered to the retire gate (fingerprint sent)
    RETIRED = 4  # architectural state updated


class DynInstr:
    """One reorder-buffer entry."""

    __slots__ = (
        "seq",
        "pc",
        "inst",
        "injected",
        "state",
        "squashed",
        "pending",
        "val1",
        "val2",
        "dependents",
        "result",
        "addr",
        "store_value",
        "predicted_next",
        "actual_next",
        "complete_cycle",
        "fill_addr",
        "handler_resume",
        "serializing",
        "tlb_missed",
        "was_sync",
        "consumed",
        "faulted",
        "flags",
        "replay_index",
        "wait_on",
        "prev_producer",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction, injected: bool = False) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.injected = injected
        self.state = DynState.DISPATCHED
        self.squashed = False
        self.pending = 0  # unresolved source operands
        self.val1: int | None = None  # rs1 value
        self.val2: int | None = None  # rs2 value
        self.dependents: list[tuple["DynInstr", int]] = []
        self.result: int | None = None
        self.addr: int | None = None  # effective address (memory ops)
        self.store_value: int | None = None
        self.predicted_next: int | None = None
        self.actual_next: int | None = None
        self.complete_cycle: int = -1
        self.fill_addr: int | None = None  # TLB fill on handler completion
        self.handler_resume: int | None = None  # injected-sequence bookkeeping
        self.serializing = False  # dynamic (covers SC store semantics)
        self.tlb_missed = False
        self.was_sync = False  # completed via a synchronizing request
        self.consumed = False  # some younger instruction read this result
        self.faulted = False  # carries an injected upset (see core/faults.py)
        self.flags = 0  # F_* decode mask (SoA hot loop; see isa/decode.py)
        self.replay_index: int | None = None  # committed-stream index
        #: A load's memoized disambiguation blocker: the youngest older
        #: store whose address was unresolved at the last issue attempt.
        #: While it stays unresolved (and unsquashed) a rescan of the
        #: store entries provably returns "blocked" again — every store
        #: between it and the load had a resolved non-matching address
        #: (addresses are immutable once set) and dispatch order means no
        #: new older stores can appear — so issue retries skip the scan.
        self.wait_on: DynInstr | None = None
        #: For register writers: the rename-map entry this one displaced
        #: at dispatch (None if the register was unmapped).  Squash
        #: rollback restores it; retirement clears it so retired entries
        #: never chain-retain their predecessors.
        self.prev_producer: DynInstr | None = None

    def set_src(self, slot: int, value: int) -> None:
        """Producer wake-up: fill operand ``slot`` (1 or 2)."""
        if slot == 1:
            self.val1 = value
        else:
            self.val2 = value
        self.pending -= 1

    @property
    def ready(self) -> bool:
        return self.pending == 0 and self.state == DynState.DISPATCHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "I" if self.injected else ""
        flags += "X" if self.squashed else ""
        return f"<#{self.seq}@{self.pc} {self.inst} s={self.state}{flags}>"
