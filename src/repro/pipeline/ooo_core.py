"""The out-of-order core timing model.

A simplified but value-accurate out-of-order pipeline in the style of the
paper's baseline (Section 4.1, Figure 3): in-order fetch/decode into a
register-update-unit (ROB), out-of-order issue and execution, and
in-order retirement through a pluggable *retire gate* that implements
non-redundant, strict, or Reunion checking.

Key behaviours the evaluation depends on:

* **Value accuracy** — operands and load values are real; a mute core fed
  a stale value computes and branches differently, which is how input
  incoherence becomes a detectable fingerprint mismatch.
* **Serializing instructions** (traps, membars, atomics, non-idempotent
  MMU ops; every store under SC) execute only when they are the oldest
  instruction in the machine — i.e. after all older instructions have
  been compared and retired — and no younger instruction may begin
  execution until they retire (Section 4.4).
* **Store buffering** — stores sit speculatively in the ROB, move to a
  non-speculative drain queue at retirement (after checking), and drain
  to the L1 in order; loads forward from both.
* **Software TLB misses** inject the UltraSPARC-style fast-miss handler
  into the pipeline (see :mod:`repro.pipeline.tlb_handler`).
* **Pair coordination hooks** — in Reunion mode, atomics (and loads
  during single-step re-execution) park in ``sync_request`` until the
  pair controller performs the synchronizing access.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import islice
from operator import attrgetter
from typing import Callable

from repro.core.replay import entry_words, record_words
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import RegisterFile
from repro.isa.semantics import (
    alu_result,
    atomic_result,
    branch_taken,
    effective_address,
)
from repro.memory.port import CoreMemPort
from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.gates import NEVER, ImmediateGate, RetireGate
from repro.pipeline.rob import DynInstr, DynState
from repro.pipeline.tlb_handler import handler_sequence
from repro.sim.config import Consistency, SystemConfig, TLBMode

#: Sort key for the ready list (program order); hoisted out of _do_issue.
_BY_SEQ = attrgetter("seq")


class _Fetched:
    """A fetched, pre-decoded instruction waiting for dispatch."""

    __slots__ = ("ready_cycle", "pc", "inst", "injected", "predicted_next", "fill_addr")

    def __init__(self, ready_cycle, pc, inst, injected, predicted_next, fill_addr=None):
        self.ready_cycle = ready_cycle
        self.pc = pc
        self.inst = inst
        self.injected = injected
        self.predicted_next = predicted_next
        self.fill_addr = fill_addr


class OoOCore:
    """One physical core: frontend, ROB, execution, store buffer, retire."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        program: Program,
        port: CoreMemPort,
        gate: RetireGate | None = None,
        synthetic_itlb: Callable[[int], bool] | None = None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.core_cfg = config.core
        self.program = program
        self.port = port
        self.gate: RetireGate = gate if gate is not None else ImmediateGate()
        self.synthetic_itlb = synthetic_itlb
        self.sc_mode = config.consistency is Consistency.SC
        self.sw_tlb = config.tlb.mode is TLBMode.SOFTWARE

        self.arf = RegisterFile()
        for index, value in program.initial_regs.items():
            self.arf.write(index, value)

        # Frontend.
        self.pc = program.entry
        self.fetch_queue: deque[_Fetched] = deque()
        self.injection: deque[tuple[Instruction, int | None]] = deque()
        self._injection_resume: int | None = None
        self.predictor = BranchPredictor(self.core_cfg.branch_predictor_entries)
        self.fetch_stalled = False  # set after fetching HALT

        # Backend.
        self.rob: deque[DynInstr] = deque()
        self.rename: dict[int, DynInstr] = {}
        self._prev_producer: dict[int, DynInstr | None] = {}
        self.ready: list[DynInstr] = []
        self.completions: list[tuple[int, int, DynInstr]] = []  # heap
        self._store_entries: deque[DynInstr] = deque()
        self._ser_heap: list[tuple[int, DynInstr]] = []
        self._next_seq = 0

        # Store buffer: speculative stores live in the ROB; checked stores
        # wait in `drain` and leave one at a time through the L1 write port.
        self.drain: deque[tuple[int, int]] = deque()
        self.sb_count = 0
        self._drain_inflight: tuple[int, int, int] | None = None  # (addr, val, done)

        # Pair-coordination state (Reunion).
        self.pair_sync_atomics = False  # pair controller flips this on
        self.single_step = False
        self.sync_request: DynInstr | None = None
        self.resume_normal_after: DynInstr | None = None
        #: Owning LogicalPair, if any (lets the fault injector disable
        #: the replay fast path when it hooks a paired core).
        self.pair = None

        # Replay fast path (see repro.core.replay).  At most one of these
        # is set, by the pair controller: the vocal *logs* its in-order
        # check-stage stream; the mute *binds* dispatched instructions to
        # logged records and reuses their values instead of recomputing.
        self.replay_log = None  # ReplayTrace the vocal appends to
        self.replay_trace = None  # ReplayTrace the mute binds from
        self._replay_cursor = 0  # next committed index to bind (mute)
        self._replay_synced = True  # cursor provably equals next dispatch
        self._replay_offer_cursor = 0  # next committed index to offer (mute)
        #: A load observed a value differing from the vocal's trace: the
        #: mute has genuinely diverged (input incoherence).  No binding
        #: or resync until recovery rolls back to the compared prefix.
        self._replay_diverged = False
        #: Instructions issued from bound records.  Diagnostic only — the
        #: bind rate depends on vocal/mute skew, so this must never be
        #: folded into :class:`Stats`.
        self.replayed_binds = 0

        # Mirror window (see repro.core.mirror).  On the vocal,
        # ``mirror_watch`` arms fetch-side detection of the first
        # instruction that could end the pair-symmetric window, and
        # ``mirror_trigger`` latches that detection for the pair
        # controller.  On the mute, ``mirror_passive`` tells the system
        # loop not to step (or poll) this core at all.
        self.mirror_watch = False
        self.mirror_trigger = False
        self.mirror_passive = False

        # External interrupts: (service at user-instruction count, handler).
        # Both cores of a pair schedule the same count, so they service at
        # an identical point in the retired instruction stream (Sec. 4.3).
        self._interrupts: deque[tuple[int, list[Instruction]]] = deque()
        self.interrupts_serviced = 0

        self.halted = False
        self.stall_fetch_until = 0
        self._check_pending = 0  # offered-but-unretired prefix of the ROB

        #: Optional fault-injection hook, called with each entry right
        #: after its result is computed (see repro.core.faults).
        self.fault_hook: Callable[[DynInstr], None] | None = None
        #: Optional retirement observer (see repro.core.bandwidth).
        self.retire_hook: Callable[[DynInstr], None] | None = None
        #: Optional pipeline tracer (see repro.pipeline.trace).
        self.tracer = None
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem;
        #: the fault injector stamps its injections through this.
        self.obs = None

        # Counters (plain attributes: hot path).
        self.cycles = 0
        self.user_retired = 0
        self.total_retired = 0
        self.injected_retired = 0
        self.dtlb_misses = 0
        self.itlb_misses = 0
        self.mispredicts = 0
        self.serializing_retired = 0
        self.user_mem_retired = 0

    # ------------------------------------------------------------------
    # Per-cycle step: completions -> drain -> retire -> issue -> dispatch
    # -> fetch.
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self.cycles += 1
        self._do_completions(now)
        self._do_drain(now)
        self._do_retire(now)
        self._do_issue(now)
        self._do_dispatch(now)
        self._do_fetch(now)

    @property
    def idle(self) -> bool:
        """True when nothing is in flight and the core has halted."""
        return self.halted and not self.rob and not self.drain and self._drain_inflight is None

    # -- event horizon (cycle-skipping kernel) --------------------------
    def next_event(self, now: int) -> int:
        """Conservative wake-up horizon for the cycle-skipping kernel.

        Returns the earliest cycle ``>= now`` at which :meth:`step` could
        change any state (architectural, microarchitectural, or
        statistics).  ``now`` itself means "cannot skip: the very next
        step may act"; :data:`NEVER` means the core generates no further
        events on its own (it can still be woken by its pair partner,
        whose horizon is computed separately).

        The contract is *conservative*: returning a cycle earlier than
        the true next event merely costs a no-op step (under-skipping is
        safe); returning a later cycle would silently drop work
        (over-skipping is a bug).  Every ``now``-dependent branch of
        ``step()`` must therefore be reflected here:

        * the completion heap head,
        * the in-flight store drain (and any queued drain store, which
          retries — and counts MSHR-stall statistics — every cycle),
        * the retire gate's next release / interval-timeout close,
        * pending offers of completed ROB entries into the check stage,
        * the ready list (issue is attempted every cycle it is nonempty),
        * a serializing instruction at the ROB head or at the check
          boundary (Section 4.4 stalls),
        * the fetch queue head's dispatch-ready cycle, and
        * the frontend's ``stall_fetch_until``.
        """
        wake = NEVER
        # Completions: nothing executes out of the heap before its head.
        heap = self.completions
        if heap:
            t = heap[0][0]
            if t <= now:
                return now
            wake = t
        # Store drain: an in-flight drain completes at a known cycle; a
        # queued drain store is attempted (or MSHR-retried, which counts
        # stall statistics) every single cycle.
        inflight = self._drain_inflight
        if inflight is not None:
            t = inflight[2]
            if t <= now:
                return now
            if t < wake:
                wake = t
        elif self.drain:
            return now
        # Retire gate: cleared intervals, injected-serializing stalls,
        # and (for paired gates) the interval-timeout close.
        t = self.gate.next_release(now)
        if t <= now:
            return now
        if t < wake:
            wake = t
        rob = self.rob
        check_pending = self._check_pending
        if check_pending < len(rob):
            waiting = rob[check_pending]
            # Completed entries are offered to the gate width-per-cycle.
            if waiting.state == DynState.COMPLETED:
                return now
            # A ready serializing instruction at the check boundary ends
            # the open fingerprint interval (gate.close_open).
            if (
                self.gate.open_count
                and waiting.pending == 0
                and waiting.state == DynState.DISPATCHED
                and (waiting.serializing or waiting.inst.op is Op.HALT)
            ):
                return now
        # Issue: a nonempty ready list is rescanned every cycle.
        if self.ready:
            return now
        if rob:
            head = rob[0]
            if (
                head.state == DynState.DISPATCHED
                and head.pending == 0
                and (head.serializing or head.inst.op is Op.HALT)
            ):
                op = head.inst.op
                needs_drain = (
                    op is Op.MEMBAR
                    or op is Op.ATOMIC
                    or op is Op.CAS
                    or (self.sc_mode and op is Op.STORE)
                )
                if not needs_drain or self.drain_empty:
                    return now
                # Otherwise blocked on the drain, whose horizon is above.
        # Dispatch: the fetch-queue head becomes eligible at ready_cycle;
        # structural blocks (ROB, store buffer, single-step) are lifted
        # only by retire/drain events already accounted for.
        fetch_queue = self.fetch_queue
        if fetch_queue:
            head = fetch_queue[0]
            t = head.ready_cycle
            if t > now:
                if t < wake:
                    wake = t
            elif len(rob) < self.core_cfg.rob_size and not (self.single_step and rob):
                if not (
                    head.inst.op is Op.STORE
                    and self.sb_count >= self.core_cfg.store_buffer_size
                ):
                    return now
        # Fetch: active whenever there is room and the frontend is not
        # stalled; a hardware-TLB refill stall expires at a known cycle.
        if (
            not self.halted
            and not self.fetch_stalled
            and len(fetch_queue) < self.core_cfg.fetch_queue_size
        ):
            t = self.stall_fetch_until
            if t <= now:
                return now
            if t < wake:
                wake = t
        return wake

    # -- completions ----------------------------------------------------
    def _do_completions(self, now: int) -> None:
        heap = self.completions
        if not heap or heap[0][0] > now:
            return
        # Hot path: hoist bound methods and the ready list out of the loop.
        heappop = heapq.heappop
        ready_append = self.ready.append
        completed = DynState.COMPLETED
        dispatched = DynState.DISPATCHED
        while heap and heap[0][0] <= now:
            entry = heappop(heap)[2]
            if entry.squashed:
                continue
            entry.state = completed
            entry.complete_cycle = now
            if self.tracer is not None:
                self.tracer.complete(entry, now)
            result = entry.result
            if result is not None:
                for dependent, slot in entry.dependents:
                    if not dependent.squashed:
                        dependent.set_src(slot, result)
                        if dependent.pending == 0 and dependent.state == dispatched:
                            ready_append(dependent)
                entry.dependents = []
            if entry.inst.is_branch:
                self.predictor.update(entry.pc, entry.actual_next != entry.pc + 1)
                if entry.actual_next != entry.predicted_next:
                    self.mispredicts += 1
                    self._squash_after(entry)
                    self._replay_resync(entry)
                    self._redirect_fetch(entry.actual_next)

    # -- store drain ------------------------------------------------------
    def _do_drain(self, now: int) -> None:
        inflight = self._drain_inflight
        if inflight is not None:
            if now < inflight[2]:
                return
            self._drain_inflight = None
            self.sb_count -= 1
        if self.drain:
            addr, value = self.drain[0]
            access = self.port.store(addr, value, now)
            if access.retry:
                return
            self.drain.popleft()
            self._drain_inflight = (addr, value, access.done)

    @property
    def drain_empty(self) -> bool:
        return not self.drain and self._drain_inflight is None

    # -- retirement -------------------------------------------------------
    def _do_retire(self, now: int) -> None:
        width = self.core_cfg.width
        # 1. Architecturally retire entries the gate has cleared.
        for entry in self.gate.pop_retirable(now, width):
            if entry.squashed:
                continue
            self._retire(entry, now)
        # 2. Offer the oldest completed-but-unchecked entries to the gate.
        # The first `_check_pending` ROB entries are already in check.
        offered = 0
        log = self.replay_log
        trace = self.replay_trace
        for entry in islice(self.rob, self._check_pending, None):
            if entry.state != DynState.COMPLETED or offered >= width:
                break
            entry.state = DynState.IN_CHECK
            if not entry.injected:
                if log is not None:
                    # Vocal: log the in-order value stream for the mute.
                    # Offered entries can still be squashed (trap,
                    # interrupt, recovery); _squash_to truncates the log.
                    entry.replay_index = len(log)
                    log.append(
                        (
                            entry.pc,
                            entry.result,
                            entry.addr,
                            entry.store_value,
                            entry.actual_next,
                            entry.inst,
                        )
                    )
                elif trace is not None:
                    # Mute: offer order IS the mute's committed-stream
                    # order, so compare this entry's fingerprint update
                    # words against the vocal's record at the same
                    # position — the exact condition under which dual
                    # execution's hashed fingerprints would differ.
                    index = self._replay_offer_cursor
                    self._replay_offer_cursor = index + 1
                    entry.replay_index = index
                    rec = trace.get(index)
                    if rec is None:
                        self.gate.add_replay_check(entry, index)
                    elif entry_words(entry) != record_words(rec):
                        self._replay_diverged = True
                        self.gate.poison_open()
            self.gate.offer(entry, now)
            self._check_pending += 1
            offered += 1

    def _retire(self, entry: DynInstr, now: int) -> None:
        """Update architectural state for one checked instruction."""
        assert self.rob and self.rob[0] is entry, "retirement must be in order"
        self.rob.popleft()
        self._check_pending -= 1
        self._prev_producer.pop(entry.seq, None)
        entry.state = DynState.RETIRED
        if self.tracer is not None:
            self.tracer.retire(entry, now)
        inst = entry.inst
        self.total_retired += 1
        if inst.op is Op.STORE and self._store_entries and self._store_entries[0] is entry:
            self._store_entries.popleft()

        if inst.writes_reg and entry.result is not None:
            self.arf.write(inst.rd, entry.result)
        if self.rename.get(inst.rd) is entry:
            del self.rename[inst.rd]

        if inst.op is Op.STORE:
            self.drain.append((entry.addr, entry.store_value))
            # sb_count is released when the drain completes.
        elif inst.op is Op.HALT:
            self.halted = True

        if entry.injected:
            self.injected_retired += 1
            if entry.fill_addr is not None:
                self.port.dtlb_fill(entry.fill_addr)
            return

        self.user_retired += 1
        if self.retire_hook is not None:
            self.retire_hook(entry)
        if inst.is_mem:
            self.user_mem_retired += 1
        if entry.serializing:
            self.serializing_retired += 1

        if inst.op is Op.TRAP:
            # User-level traps redirect fetch through the trap vector:
            # model as a full pipeline flush and refetch.
            self._squash_after(entry)
            self._replay_resync(entry)
            self._redirect_fetch(entry.pc + 1)
        elif not self.single_step:
            if (
                self._interrupts
                and self.user_retired >= self._interrupts[0][0]
            ):
                self._service_interrupt(entry)
            elif self.synthetic_itlb is not None and self.synthetic_itlb(
                self.user_retired
            ):
                self.itlb_misses += 1
                self._take_synthetic_tlb_miss(entry, now)

    # -- external interrupts ----------------------------------------------
    def schedule_interrupt(self, at_user_count: int, handler: list[Instruction]) -> None:
        """Service an interrupt after retiring ``at_user_count`` user instrs.

        The pair controller schedules the *same* count on vocal and mute,
        so both service the interrupt at an identical program point —
        the paper's fingerprint-comparison-based alignment (Section 4.3).
        """
        self._interrupts.append((at_user_count, handler))

    def _service_interrupt(self, entry: DynInstr) -> None:
        _, handler = self._interrupts.popleft()
        self.interrupts_serviced += 1
        resume = entry.actual_next if entry.actual_next is not None else entry.pc + 1
        self._squash_after(entry)
        self._replay_resync(entry)
        self.fetch_queue.clear()
        self.injection.clear()
        for inst in handler:
            self.injection.append((inst, None))
        self._injection_resume = resume
        self.fetch_stalled = False

    def _take_synthetic_tlb_miss(self, entry: DynInstr, now: int) -> None:
        """Instruction-fetch TLB miss charged at retirement of instr n."""
        resume = entry.actual_next if entry.actual_next is not None else entry.pc + 1
        if self.config.tlb.mode is TLBMode.SOFTWARE:
            self._squash_after(entry)
            self._replay_resync(entry)
            self._inject_handler(page=self.user_retired, fill_addr=None, resume_pc=resume)
        else:
            self.stall_fetch_until = max(
                self.stall_fetch_until, now + self.config.tlb.hw_fill_latency
            )

    # -- issue ---------------------------------------------------------------
    def _do_issue(self, now: int) -> None:
        self._issue_serializing(now)

        if not self.ready:
            return
        self.ready.sort(key=_BY_SEQ)
        issue_budget = self.core_cfg.width
        load_ports = self.core_cfg.load_ports
        ser_limit = self._oldest_active_serializing()
        remaining: list[DynInstr] = []
        # Hot path: cache the append bound method and state constant.
        defer = remaining.append
        dispatched = DynState.DISPATCHED

        for entry in self.ready:
            if entry.squashed or entry.state != dispatched:
                continue
            if issue_budget == 0:
                defer(entry)
                continue
            op = entry.inst.op
            if entry.serializing or op is Op.HALT:
                defer(entry)  # handled by _issue_serializing
                continue
            if ser_limit is not None and entry.seq > ser_limit:
                defer(entry)  # blocked behind a serializing op
                continue
            if op is Op.LOAD:
                if load_ports == 0:
                    defer(entry)
                    continue
                outcome = self._issue_load(entry, now)
                if outcome == "trap":
                    return  # pipeline flushed; ready list rebuilt
                if outcome == "wait":
                    defer(entry)
                    continue
                load_ports -= 1
            elif op is Op.STORE:
                if not self._issue_store(entry, now):
                    return  # TLB trap flush
            else:
                self._issue_simple(entry, now)
            issue_budget -= 1

        self.ready = remaining

    def _issue_simple(self, entry: DynInstr, now: int) -> None:
        """ALU ops, branches, jumps, nops: compute and schedule completion."""
        inst = entry.inst
        op = inst.op
        latency = self.core_cfg.alu_latency
        rec = entry.replay
        if rec is not None:
            # Replay fast path: reuse the vocal's values — guaranteed
            # equal on the committed path.  Timing is untouched.
            if inst.is_alu:
                entry.result = rec[1]
                if op is Op.MUL:
                    latency = self.core_cfg.mul_latency
            elif inst.is_branch:
                entry.actual_next = rec[4]
            elif op is Op.JUMP:
                entry.actual_next = rec[4]
        elif inst.is_alu:
            entry.result = alu_result(op, entry.val1 or 0, entry.val2 or 0, inst.imm)
            if op is Op.MUL:
                latency = self.core_cfg.mul_latency
        elif inst.is_branch:
            taken = branch_taken(op, entry.val1 or 0, entry.val2 or 0)
            entry.actual_next = inst.target if taken else entry.pc + 1
        elif op is Op.JUMP:
            entry.actual_next = inst.target
        if self.fault_hook is not None:
            self.fault_hook(entry)
        entry.state = DynState.ISSUED
        self._schedule(entry, now + latency, now)

    def _issue_load(self, entry: DynInstr, now: int) -> str:
        """Try to issue a load; returns 'done', 'wait', or 'trap'."""
        inst = entry.inst
        rec = entry.replay
        if rec is not None:
            entry.addr = rec[2]
        else:
            entry.addr = effective_address(entry.val1 or 0, inst.imm)

        if self.single_step and self.pair_sync_atomics and not entry.injected:
            # Re-execution protocol: the first load is issued by both
            # cores as a synchronizing request (Definition 11).
            if not self.drain_empty:
                return "wait"
            self.port.dtlb_fill(entry.addr)
            entry.state = DynState.ISSUED
            self.sync_request = entry
            return "done"

        forwarded = self._forward_from_stores(entry)
        if forwarded == "blocked":
            return "wait"
        if isinstance(forwarded, int):
            entry.result = forwarded
            if self.fault_hook is not None:
                # Store-to-load forwarding is unprotected datapath — one of
                # the coverage gaps of a strict LVQ that relaxed input
                # replication closes (Section 2.3).
                self.fault_hook(entry)
            entry.state = DynState.ISSUED
            self._schedule(entry, now + 1, now)
            return "done"

        extra = 0
        if not entry.injected and not self.port.dtlb_hit(entry.addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._take_dtlb_trap(entry, now)
                return "trap"
            extra = self.config.tlb.hw_fill_latency
            self.port.dtlb_fill(entry.addr)

        access = self.port.load(entry.addr, now)
        if access.retry:
            return "wait"
        entry.result = access.value
        if self.replay_trace is not None and not entry.injected and not self._replay_diverged:
            rec = entry.replay
            if rec is None and entry.replay_index is not None:
                # Late lookup: the vocal may have logged this position
                # since dispatch.
                rec = self.replay_trace.get(entry.replay_index)
                if rec is not None and rec[0] != entry.pc:
                    rec = None
            if rec is None:
                # The vocal hasn't vouched for this memory value: if it
                # is stale, dependents must recompute from it exactly as
                # in dual execution.
                self._replay_cut(entry)
            elif rec[1] != entry.result:
                # Incoherent read — the mute has genuinely diverged.
                # Stop replaying; the check stage flags the divergence
                # when this entry's update words are compared.
                self._replay_diverged = True
                self._replay_cut(entry)
        if self.fault_hook is not None:
            self.fault_hook(entry)
        entry.state = DynState.ISSUED
        self._schedule(entry, access.done + extra, now)
        return "done"

    def _issue_store(self, entry: DynInstr, now: int) -> bool:
        """Compute a store's address and value (no memory access yet)."""
        inst = entry.inst
        rec = entry.replay
        if rec is not None:
            entry.addr = rec[2]
            entry.store_value = rec[3]
        else:
            entry.addr = effective_address(entry.val1 or 0, inst.imm)
            entry.store_value = entry.val2 or 0
        if not entry.injected and not self.port.dtlb_hit(entry.addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._take_dtlb_trap(entry, now)
                return False
            self.port.dtlb_fill(entry.addr)
            # Hardware fill overlaps with the store's time in the buffer.
        if self.fault_hook is not None:
            # Store address/value generation is unprotected datapath too:
            # an upset here corrupts the fingerprint's store-stream words
            # (the other input class besides results and branch targets).
            self.fault_hook(entry)
        entry.state = DynState.ISSUED
        self._schedule(entry, now + 1, now)
        return True

    def _forward_from_stores(self, load: DynInstr) -> int | str | None:
        """Store-to-load forwarding across ROB stores and the drain queue.

        Returns a value when forwarding succeeds, "blocked" when an older
        store is unresolved (conservative disambiguation), or None when
        the load may go to memory.
        """
        addr = load.addr
        for store in reversed(self._store_entries):
            if store.squashed:
                continue
            if store.seq >= load.seq:
                continue
            if store.state == DynState.RETIRED:
                break  # retired stores are visible via the drain queue
            if store.addr is None:
                return "blocked"
            if store.addr == addr:
                if store.store_value is None:
                    return "blocked"
                return store.store_value
        for drain_addr, drain_value in reversed(self.drain):
            if drain_addr == addr:
                return drain_value
        inflight = self._drain_inflight
        if inflight is not None and inflight[0] == addr:
            return inflight[1]
        return None

    def _issue_serializing(self, now: int) -> None:
        """Serializing ops (and HALT) execute only at the head of the ROB.

        Being at the head means every older instruction has been compared
        and retired — requirement (1) of Section 4.4.  Requirement (2),
        that younger instructions stall, is enforced in ``_do_issue`` via
        ``_oldest_active_serializing``.
        """
        if not self.rob:
            return
        # When the next unchecked instruction is serializing and ready,
        # end the open fingerprint interval immediately so the older
        # instructions ahead of it can compare and retire (Section 4.4).
        if self._check_pending < len(self.rob):
            waiting = self.rob[self._check_pending]
            if (
                (waiting.serializing or waiting.inst.op is Op.HALT)
                and waiting.pending == 0
                and waiting.state == DynState.DISPATCHED
            ):
                self.gate.close_open(now)
        entry = self.rob[0]
        if entry.state != DynState.DISPATCHED or entry.pending != 0:
            return
        inst = entry.inst
        if not (entry.serializing or inst.op is Op.HALT):
            return

        op = inst.op
        if op in (Op.MEMBAR, Op.ATOMIC, Op.CAS) and not self.drain_empty:
            return
        if self.sc_mode and op is Op.STORE and not self.drain_empty:
            return

        if op is Op.HALT or op is Op.MEMBAR or op is Op.TRAP:
            entry.state = DynState.ISSUED
            self._schedule(entry, now + 1, now)
        elif op is Op.MMUOP:
            entry.state = DynState.ISSUED
            self._schedule(entry, now + self.core_cfg.mmuop_latency, now)
        elif op is Op.STORE:  # SC-mode serializing store
            self._issue_store(entry, now)
        elif op in (Op.ATOMIC, Op.CAS):
            self._issue_atomic(entry, now)

    def _issue_atomic(self, entry: DynInstr, now: int) -> None:
        inst = entry.inst
        rec = entry.replay
        if rec is not None:
            entry.addr = rec[2]
        else:
            entry.addr = effective_address(entry.val1 or 0, inst.imm)
        if not entry.injected and not self.port.dtlb_hit(entry.addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._take_dtlb_trap(entry, now)
                return
            self.port.dtlb_fill(entry.addr)
        if self.pair_sync_atomics:
            # Reunion: atomics are synchronizing requests, performed once
            # by the shared cache controller when both cores arrive.
            entry.state = DynState.ISSUED
            self.sync_request = entry
            return
        access = self.port.rmw_read(entry.addr, now)
        if access.retry:
            return
        rd_value, new_value = atomic_result(inst.op, access.value, entry.val2 or 0, inst.imm)
        entry.result = rd_value
        if new_value is not None:
            self.port.rmw_write(entry.addr, new_value)
        entry.state = DynState.ISSUED
        self._schedule(entry, access.done, now)

    def complete_sync(self, entry: DynInstr, value: int, done: int) -> None:
        """Pair controller delivers a synchronizing-request reply.

        For atomics the controller has already applied the memory update;
        ``value`` is the single coherent value returned to both cores.
        """
        if entry.squashed:
            self.sync_request = None
            return
        entry.result = value
        self.sync_request = None
        self._schedule(entry, done)

    def _oldest_active_serializing(self) -> int | None:
        """Smallest seq of an unretired serializing instruction, if any."""
        heap = self._ser_heap
        while heap:
            seq, entry = heap[0]
            if entry.squashed or entry.state == DynState.RETIRED:
                heapq.heappop(heap)
                continue
            return seq
        return None

    def _schedule(self, entry: DynInstr, cycle: int, now: int | None = None) -> None:
        if self.tracer is not None:
            self.tracer.issue(entry, cycle if now is None else now)
        heapq.heappush(self.completions, (cycle, entry.seq, entry))

    # -- TLB traps -------------------------------------------------------------
    def _take_dtlb_trap(self, entry: DynInstr, now: int) -> None:
        """Software TLB miss on a data access: flush and run the handler."""
        page = entry.addr >> self.config.tlb.page_bits
        self._squash_from(entry)
        self._replay_resync(entry, rerun=True)
        self._inject_handler(page=page, fill_addr=entry.addr, resume_pc=entry.pc)

    def _inject_handler(self, page: int, fill_addr: int | None, resume_pc: int) -> None:
        """Queue the software fast-miss handler for injection at fetch."""
        self.fetch_queue.clear()
        self.injection.clear()
        sequence = handler_sequence(page)
        for index, inst in enumerate(sequence):
            is_last = index == len(sequence) - 1
            self.injection.append((inst, fill_addr if is_last else None))
        self._injection_resume = resume_pc
        self.fetch_stalled = False

    # -- dispatch ----------------------------------------------------------------
    def _do_dispatch(self, now: int) -> None:
        width = self.core_cfg.width
        rob_size = self.core_cfg.rob_size
        sb_size = self.core_cfg.store_buffer_size
        dispatched = 0
        while dispatched < width and self.fetch_queue:
            fetched = self.fetch_queue[0]
            if fetched.ready_cycle > now or len(self.rob) >= rob_size:
                break
            inst = fetched.inst
            if inst.op is Op.STORE and self.sb_count >= sb_size:
                break
            if self.single_step and self.rob:
                break  # one instruction at a time during re-execution
            self.fetch_queue.popleft()
            self._dispatch_one(fetched, now)
            dispatched += 1

    def _dispatch_one(self, fetched: _Fetched, now: int) -> None:
        inst = fetched.inst
        entry = DynInstr(self._next_seq, fetched.pc, inst, injected=fetched.injected)
        self._next_seq += 1
        entry.predicted_next = fetched.predicted_next
        entry.fill_addr = fetched.fill_addr
        entry.serializing = inst.is_serializing or (self.sc_mode and inst.op is Op.STORE)

        trace = self.replay_trace
        if trace is not None and not fetched.injected and not self._replay_diverged:
            # Replay fast path: bind this dispatch to the vocal's logged
            # record for the same committed-stream position, when the
            # cursor provably tracks the committed control-flow path.
            if not self._replay_synced and not self.rob:
                # Empty ROB at a user dispatch: everything older has
                # retired, so this IS committed instruction user_retired.
                self._replay_synced = True
                self._replay_cursor = self.user_retired
            if self._replay_synced:
                index = self._replay_cursor
                self._replay_cursor = index + 1
                entry.replay_index = index
                rec = trace.get(index)
                if rec is not None and rec[0] != entry.pc:
                    # Impossible while genuinely synced — never bind on a
                    # mismatch; fall back to full execution.
                    rec = None
                    self._replay_synced = False
                if rec is None:
                    if inst.is_branch:
                        # Vocal hasn't logged this far: without rec we
                        # can't vet the prediction, so sync is lost until
                        # the next anchor (resolution resyncs us).
                        self._replay_synced = False
                else:
                    entry.replay = rec
                    self.replayed_binds += 1
                    if inst.is_branch and rec[4] != fetched.predicted_next:
                        # Known mispredict: fetch now runs down the wrong
                        # path until this branch resolves and resyncs.
                        self._replay_synced = False

        # Capture operands / subscribe to producers.
        op = inst.op
        if op is not Op.MOVI:
            needs1 = inst.rs1 != 0 and (
                inst.is_alu or inst.is_mem or inst.is_branch
            )
            needs2 = inst.rs2 != 0 and (
                (inst.is_alu and not inst.imm_form)
                or inst.is_branch
                or op is Op.STORE
                or op is Op.ATOMIC
                or op is Op.CAS
            )
            if needs1:
                self._capture(entry, 1, inst.rs1)
            else:
                entry.val1 = 0 if inst.rs1 == 0 else None
                if entry.val1 is None:
                    entry.val1 = self.arf.read(inst.rs1)
            if needs2:
                self._capture(entry, 2, inst.rs2)
            else:
                entry.val2 = 0

        if inst.writes_reg:
            self._prev_producer[entry.seq] = self.rename.get(inst.rd)
            self.rename[inst.rd] = entry

        if op is Op.STORE:
            self.sb_count += 1
            self._store_entries.append(entry)
        if entry.serializing or op is Op.HALT:
            heapq.heappush(self._ser_heap, (entry.seq, entry))

        # Non-branch control flow resolves immediately; branches carry the
        # prediction and verify at completion.
        if not inst.is_control or op is Op.HALT:
            entry.actual_next = entry.pc + 1
        elif op is Op.JUMP:
            entry.actual_next = inst.target

        self.rob.append(entry)
        if self.tracer is not None:
            self.tracer.dispatch(entry, now)
        if entry.pending == 0:
            self.ready.append(entry)

    def _capture(self, entry: DynInstr, slot: int, reg: int) -> None:
        producer = self.rename.get(reg)
        if producer is not None and not producer.squashed:
            producer.consumed = True
        if producer is None or producer.squashed:
            value = self.arf.read(reg)
            if slot == 1:
                entry.val1 = value
            else:
                entry.val2 = value
        elif producer.result is not None:
            if slot == 1:
                entry.val1 = producer.result
            else:
                entry.val2 = producer.result
        else:
            entry.pending += 1
            producer.dependents.append((entry, slot))

    # -- fetch ---------------------------------------------------------------------
    def _do_fetch(self, now: int) -> None:
        if self.halted or now < self.stall_fetch_until:
            return
        width = self.core_cfg.width
        cap = self.core_cfg.fetch_queue_size
        fetched = 0
        ready = now + self.core_cfg.frontend_latency
        while fetched < width and len(self.fetch_queue) < cap and not self.fetch_stalled:
            if self.injection:
                inst, fill_addr = self.injection.popleft()
                if self.mirror_watch:
                    # Injected handlers perform loads; end the window.
                    self.mirror_trigger = True
                self.fetch_queue.append(
                    _Fetched(ready, self._injection_resume or 0, inst, True, None, fill_addr)
                )
                if not self.injection and self._injection_resume is not None:
                    self.pc = self._injection_resume
                    self._injection_resume = None
                fetched += 1
                continue
            inst = self.program.fetch(self.pc)
            if self.mirror_watch and (
                inst.is_mem or inst.is_serializing or inst.op is Op.HALT
            ):
                # The first memory / serializing / halt instruction ends
                # the mirror window.  Fetch leads dispatch by a cycle and
                # issue by two, so the pair controller (which runs after
                # this core's step) materializes the mute strictly before
                # this instruction can touch shared state.
                self.mirror_trigger = True
            predicted_next = None
            pc = self.pc
            if inst.is_branch:
                taken = self.predictor.predict(pc)
                predicted_next = inst.target if taken else pc + 1
                self.pc = predicted_next
            elif inst.op is Op.JUMP:
                self.pc = inst.target
            elif inst.op is Op.HALT:
                self.fetch_stalled = True
            else:
                self.pc = pc + 1
            self.fetch_queue.append(_Fetched(ready, pc, inst, False, predicted_next))
            fetched += 1
            if self.single_step:
                break

    # -- squash / recovery -------------------------------------------------------------
    def _squash_after(self, entry: DynInstr) -> None:
        """Squash everything younger than ``entry`` (branch/trap redirect)."""
        self._squash_to(entry.seq + 1)

    def _squash_from(self, entry: DynInstr) -> None:
        """Squash ``entry`` and everything younger (TLB trap)."""
        self._squash_to(entry.seq)

    def _squash_to(self, first_bad_seq: int) -> None:
        rob = self.rob
        log = self.replay_log
        trace = self.replay_trace
        truncate = -1
        rewind = -1
        while rob and rob[-1].seq >= first_bad_seq:
            victim = rob.pop()
            victim.squashed = True
            if victim.replay_index is not None:
                if log is not None:
                    # Vocal: un-log squashed speculative records; they are
                    # re-logged (with identical content) after re-execution.
                    truncate = victim.replay_index  # popped youngest-first
                elif trace is not None and victim.state == DynState.IN_CHECK:
                    # Mute: squashed offered entries re-offer after
                    # re-execution at the same stream positions.
                    rewind = victim.replay_index

            if self.tracer is not None:
                self.tracer.squash(victim)
            if victim.state == DynState.IN_CHECK:
                self._check_pending -= 1
            inst = victim.inst
            if inst.op is Op.STORE and victim.state != DynState.RETIRED:
                self.sb_count -= 1
            if inst.writes_reg and self.rename.get(inst.rd) is victim:
                previous = self._prev_producer.get(victim.seq)
                if previous is not None and not previous.squashed and previous.state != DynState.RETIRED:
                    self.rename[inst.rd] = previous
                else:
                    del self.rename[inst.rd]
            self._prev_producer.pop(victim.seq, None)
        if truncate >= 0:
            log.truncate_to(truncate)
        if rewind >= 0:
            self._replay_offer_cursor = rewind
        self._store_entries = deque(s for s in self._store_entries if not s.squashed)
        if self.sync_request is not None and self.sync_request.squashed:
            self.sync_request = None
        self.ready = [e for e in self.ready if not e.squashed]
        self.fetch_queue.clear()
        self.injection.clear()
        self._injection_resume = None
        self.fetch_stalled = False

    def _redirect_fetch(self, new_pc: int) -> None:
        self.pc = new_pc
        self.fetch_stalled = False

    def _replay_resync(self, entry: DynInstr, rerun: bool = False) -> None:
        """Re-anchor the replay cursor after squashing ``entry``'s path.

        Every caller has just squashed younger instructions because of an
        event on the *committed* path (mispredict resolution, trap,
        interrupt, synthetic ITLB miss, DTLB trap).  Such an ``entry``
        carries its committed-stream index, so fetch provably continues
        at that index (``rerun``, when the entry itself re-dispatches)
        or right after it.  Entries dispatched while out of sync carry
        no index, in which case the cursor stays unsynced until the next
        anchor (or an empty ROB at a user dispatch).
        """
        if (
            self.replay_trace is not None
            and not self._replay_diverged
            and entry.replay_index is not None
        ):
            self._replay_cursor = entry.replay_index + (0 if rerun else 1)
            self._replay_synced = True

    def _replay_cut(self, entry: DynInstr) -> None:
        """Stop trusting dispatch-time bindings younger than ``entry``.

        Called when a load obtains a memory value the vocal's trace
        cannot vouch for (or contradicts): if the value is stale (input
        incoherence), every dependent must recompute from it exactly as
        in dual execution, and no younger squash may re-anchor the
        cursor on what is now potentially a divergent path.  Younger
        entries cannot have been offered yet (offers are blocked behind
        this load's completion), so stripping their indices is safe.
        """
        self._replay_synced = False
        seq = entry.seq
        for e in self.rob:
            if e.seq > seq:
                e.replay = None
                e.replay_index = None

    def hard_reset(self, program: Program, now: int) -> None:
        """Reset all architectural and microarchitectural state for a new
        program — used when a core is repurposed (dual-use switching)."""
        if self.rob:
            self._squash_to(self.rob[0].seq)
        self.gate.flush()
        self.completions.clear()
        self.rename.clear()
        self._prev_producer.clear()
        self.ready.clear()
        self._store_entries.clear()
        self._ser_heap.clear()
        self.drain.clear()
        self._drain_inflight = None
        self.sb_count = 0
        self._check_pending = 0
        self.sync_request = None
        self.single_step = False
        self._interrupts.clear()
        self.replay_log = None
        self.replay_trace = None
        self._replay_cursor = 0
        self._replay_synced = True
        self._replay_offer_cursor = 0
        self._replay_diverged = False
        self.program = program
        self.arf = RegisterFile()
        for index, value in program.initial_regs.items():
            self.arf.write(index, value)
        self.pc = program.entry
        self.halted = False
        self.fetch_stalled = False
        self.stall_fetch_until = max(self.stall_fetch_until, now + 1)

    # -- recovery support (called by the pair controller) ----------------------------
    def drain_cleared(self, now: int) -> None:
        """Retire every instruction the gate has already cleared.

        Used at the start of recovery so both cores' architectural state
        reflects the full compared prefix before rollback.
        """
        while True:
            cleared = self.gate.pop_retirable(now, 1 << 30)
            if not cleared:
                return
            for entry in cleared:
                if not entry.squashed:
                    self._retire(entry, now)

    def next_retire_pc(self) -> int:
        """PC of the oldest unretired instruction (rollback target)."""
        if self.rob:
            return self.rob[0].pc
        if self.fetch_queue:
            return self.fetch_queue[0].pc
        return self.pc

    def flush_for_recovery(self, resume_pc: int, now: int, penalty: int) -> None:
        """Precise-exception rollback to the last safe state.

        Discards every unretired instruction and all check state; the ARF
        and non-speculative store buffer (drain queue) are untouched —
        they *are* the safe state.
        """
        if self.rob:
            self._squash_to(self.rob[0].seq)
        else:
            self._squash_to(0)
        self.gate.flush()
        self.completions.clear()
        self._check_pending = 0
        if self.replay_trace is not None:
            # Rollback lands exactly on the retired prefix, so the next
            # user dispatch (and the next offer) is committed
            # instruction `user_retired`; divergent state is gone.
            self._replay_cursor = self.user_retired
            self._replay_synced = True
            self._replay_offer_cursor = self.user_retired
            self._replay_diverged = False
        self.pc = resume_pc
        self.fetch_stalled = False
        self.halted = False
        self.stall_fetch_until = max(self.stall_fetch_until, now + penalty)
        self.sync_request = None
