"""The out-of-order core timing model.

A simplified but value-accurate out-of-order pipeline in the style of the
paper's baseline (Section 4.1, Figure 3): in-order fetch/decode into a
register-update-unit (ROB), out-of-order issue and execution, and
in-order retirement through a pluggable *retire gate* that implements
non-redundant, strict, or Reunion checking.

Key behaviours the evaluation depends on:

* **Value accuracy** — operands and load values are real; a mute core fed
  a stale value computes and branches differently, which is how input
  incoherence becomes a detectable fingerprint mismatch.
* **Serializing instructions** (traps, membars, atomics, non-idempotent
  MMU ops; every store under SC) execute only when they are the oldest
  instruction in the machine — i.e. after all older instructions have
  been compared and retired — and no younger instruction may begin
  execution until they retire (Section 4.4).
* **Store buffering** — stores sit speculatively in the ROB, move to a
  non-speculative drain queue at retirement (after checking), and drain
  to the L1 in order; loads forward from both.
* **Software TLB misses** inject the UltraSPARC-style fast-miss handler
  into the pipeline (see :mod:`repro.pipeline.tlb_handler`).
* **Pair coordination hooks** — in Reunion mode, atomics (and loads
  during single-step re-execution) park in ``sync_request`` until the
  pair controller performs the synchronizing access.
"""

from __future__ import annotations

import heapq
from collections import deque
from operator import attrgetter
from typing import Callable

from repro.isa.decode import (
    F_ALU,
    F_BRANCH,
    F_CONTROL,
    F_HALT,
    F_JUMP,
    F_LOAD,
    F_MEM,
    F_MUL,
    F_NEEDS1,
    F_NEEDS2,
    F_SER,
    F_STORE,
    F_WINDOW_END,
    F_WRITES,
    decode_program,
    flags_of,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import WORD_MASK, RegisterFile
from repro.isa.semantics import (
    alu_result,
    atomic_result,
    branch_taken,
    effective_address,
)
from repro.memory.port import CoreMemPort
from repro.pipeline.branch_predictor import BranchPredictor
from repro.pipeline.flat import M_CONSUMED, M_INJECTED, FlatView
from repro.pipeline.gates import NEVER, ImmediateGate, RetireGate
from repro.pipeline.rob import DynInstr, DynState
from repro.pipeline.tlb_handler import handler_sequence
from repro.sim.config import Consistency, SystemConfig, TLBMode

#: Sort key for the ready list (program order); hoisted out of _do_issue.
_BY_SEQ = attrgetter("seq")

#: Serializing-or-HALT: deferred to _issue_serializing by both loops.
_F_SER_HALT = F_SER | F_HALT

# A fetched instruction waiting for dispatch is a plain 7-tuple (cheaper
# to build and copy than a slotted object at fetch-queue rates):
#   (ready_cycle, pc, inst, injected, predicted_next, fill_addr, row)
# ``row`` indexes the pre-decoded tables (see repro.isa.decode) and is
# -1 for injected instructions and for entries produced by the object
# reference loop, which does not consult the tables.


class OoOCore:
    """One physical core: frontend, ROB, execution, store buffer, retire."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        program: Program,
        port: CoreMemPort,
        gate: RetireGate | None = None,
        synthetic_itlb: Callable[[int], bool] | None = None,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.core_cfg = config.core
        #: Issue-stage width.  Equals ``core_cfg.width`` except on a
        #: "little" mute checking a full vocal (a MEEK-style reduced
        #: checker; see repro.sim.config.ProtectionPolicy): per-pair
        #: protection policies narrow *issue* only, while fetch/dispatch/
        #: retire keep the configured width so fingerprints still cover
        #: every instruction.  Result-affecting — always derived from the
        #: hashed config, never from SimOptions.  Set via
        #: :meth:`set_issue_width` so the SoA hoist stays coherent.
        self.issue_width = config.core.width
        self.program = program
        self.port = port
        self.gate: RetireGate = gate if gate is not None else ImmediateGate()
        self.synthetic_itlb = synthetic_itlb
        self.sc_mode = config.consistency is Consistency.SC
        self.sw_tlb = config.tlb.mode is TLBMode.SOFTWARE

        self.arf = RegisterFile()
        for index, value in program.initial_regs.items():
            self.arf.write(index, value)

        # Frontend.
        self.pc = program.entry
        self.fetch_queue: deque[tuple] = deque()
        self.injection: deque[tuple[Instruction, int | None]] = deque()
        self._injection_resume: int | None = None
        self.predictor = BranchPredictor(self.core_cfg.branch_predictor_entries)
        self.fetch_stalled = False  # set after fetching HALT

        # Backend.
        self.rob: deque[DynInstr] = deque()
        self.rename: dict[int, DynInstr] = {}
        self.ready: list[DynInstr] = []
        self.completions: list[tuple[int, int, DynInstr]] = []  # heap
        self._store_entries: deque[DynInstr] = deque()
        self._ser_heap: list[tuple[int, DynInstr]] = []
        self._next_seq = 0

        # Store buffer: speculative stores live in the ROB; checked stores
        # wait in `drain` and leave one at a time through the L1 write port.
        self.drain: deque[tuple[int, int]] = deque()
        self.sb_count = 0
        self._drain_inflight: tuple[int, int, int] | None = None  # (addr, val, done)

        # Pair-coordination state (Reunion).
        self.pair_sync_atomics = False  # pair controller flips this on
        self.single_step = False
        self.sync_request: DynInstr | None = None
        self.resume_normal_after: DynInstr | None = None
        #: Owning LogicalPair, if any (lets the fault injector disable
        #: the replay fast path when it hooks a paired core).
        self.pair = None

        # Committed-stream logging hook (see repro.core.replay): when a
        # ReplayTrace is attached, the core logs its in-order check-stage
        # value stream (squash-consistent).  Unused by the pair fast path
        # since mirror windows became self-contained; kept as the
        # recording substrate for decoupled replay-based checking
        # (RepTFD, ROADMAP item 4).
        self.replay_log = None  # ReplayTrace appended to at offer

        # Structure-of-arrays hot loop (REPRO_HOTLOOP=soa, the default).
        # ``use_soa_hotloop`` pre-decodes the program into flat tables
        # (repro.isa.decode) and rebinds ``step`` to ``_step_soa``; the
        # object loop stays as the bit-identical reference.
        self._soa = False
        self._decoded = None

        # Mirror window (see repro.core.mirror).  On the vocal,
        # ``mirror_watch`` arms fetch-side detection of the first
        # instruction that could end the pair-symmetric window, and
        # ``mirror_trigger`` latches that detection for the pair
        # controller.  On the mute, ``mirror_passive`` tells the system
        # loop not to step (or poll) this core at all.
        self.mirror_watch = False
        self.mirror_trigger = False
        self.mirror_passive = False

        # External interrupts: (service at user-instruction count, handler).
        # Both cores of a pair schedule the same count, so they service at
        # an identical point in the retired instruction stream (Sec. 4.3).
        self._interrupts: deque[tuple[int, list[Instruction]]] = deque()
        self.interrupts_serviced = 0

        self.halted = False
        self.stall_fetch_until = 0
        self._check_pending = 0  # offered-but-unretired prefix of the ROB
        #: The not-yet-offered suffix of the ROB (same entries, same
        #: order).  Kept separately so the per-cycle check-boundary tests
        #: in _do_retire / _issue_serializing / next_event are O(1) head
        #: peeks instead of O(depth) deque indexing.
        self._unchecked: deque[DynInstr] = deque()

        #: Per-core skip cache for the event kernel: every cycle strictly
        #: before this one is a proven no-op for this core (same contract
        #: as :meth:`next_event`, whose result it caches).  Refreshed
        #: after each real step; reset to 0 by anything that mutates core
        #: state from outside ``step`` — the pair controller (comparison
        #: clears, sync servicing, recovery, mirror exit) and the
        #: external APIs (``schedule_interrupt``, ``complete_sync``,
        #: ``drain_cleared``).  The naive kernel never reads it.
        self._skip_until = 0

        #: Optional fault-injection hook, called with each entry right
        #: after its result is computed (see repro.core.faults).
        self.fault_hook: Callable[[DynInstr], None] | None = None
        #: Optional retirement observer (see repro.core.bandwidth).
        self.retire_hook: Callable[[DynInstr], None] | None = None
        #: Optional pipeline tracer (see repro.pipeline.trace).
        self.tracer = None
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem;
        #: the fault injector stamps its injections through this.
        self.obs = None

        # Counters (plain attributes: hot path).
        self.cycles = 0
        self.user_retired = 0
        self.total_retired = 0
        self.injected_retired = 0
        self.dtlb_misses = 0
        self.itlb_misses = 0
        self.mispredicts = 0
        self.serializing_retired = 0
        self.user_mem_retired = 0

    # ------------------------------------------------------------------
    # Per-cycle step: completions -> drain -> retire -> issue -> dispatch
    # -> fetch.
    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        self.cycles += 1
        self._do_completions(now)
        self._do_drain(now)
        self._do_retire(now)
        self._do_issue(now)
        self._do_dispatch(now)
        self._do_fetch(now)

    # ------------------------------------------------------------------
    # Flat-array hot loop (REPRO_HOTLOOP=soa, the default).
    #
    # Same pipeline, same cycle-by-cycle decisions, different data
    # layout.  The program is pre-decoded once into flat parallel tables
    # (repro.isa.decode), and ALL in-flight instruction state lives in
    # preallocated per-core column lists over a power-of-two ring of
    # ``rob_size``-bounded slots: the steady-state dispatch → issue →
    # complete → retire loop never constructs a Python object per
    # instruction.  In-flight references are packed ints
    # ``(seq << _f_sbits) | slot``; a reference is live iff
    # ``f_seq[slot] == packed >> _f_sbits`` (seqs are globally unique and
    # monotone, so a freed-and-reused slot can never false-match), and
    # packed order equals program (seq) order, so sorts and heap
    # tie-breaks are bit-identical to the object loop's.
    #
    # DynInstr-shaped views (repro.pipeline.flat.FlatView, per-slot
    # singletons) materialize lazily only on cold paths: fault-injection
    # / retire / tracer hooks, sync-request servicing, squash logging,
    # and mirror materialization.  gates.py / check_stage.py keep their
    # interfaces via the ``*_f`` flat protocol.
    #
    # The object loop above stays selectable (REPRO_HOTLOOP=object) as
    # the bit-identical reference; tests/sim/test_hotloop.py fuzzes the
    # two against each other, including the cold paths.
    # ------------------------------------------------------------------
    def use_soa_hotloop(self) -> None:
        """Switch to the flat-array loop (call before the first step).

        Binds the pre-decoded tables, allocates the flat ring, and
        rebinds ``step`` / ``next_event`` as instance attributes so
        selection costs nothing per cycle.  The ring starts empty, so
        this must run before any instruction is in flight (CMPSystem
        calls it at construction).
        """
        self._soa = True
        self._bind_decode()
        cc = self.core_cfg
        self._c_width = cc.width
        self._c_issue_width = self.issue_width
        self._c_rob_size = cc.rob_size
        self._c_sb_size = cc.store_buffer_size
        self._c_load_ports = cc.load_ports
        self._c_alu_lat = cc.alu_latency
        self._c_mul_lat = cc.mul_latency
        # Bound-method hoist: the DTLB object lives for the port's (and
        # core's) lifetime — TLB flushes clear in place, never reassign.
        self._dtlb_lookup = self.port.tlbs.dtlb.lookup
        self._init_flat()
        self.step = self._step_soa  # type: ignore[method-assign]
        self.next_event = self._next_event_flat  # type: ignore[method-assign]

    def set_issue_width(self, width: int) -> None:
        """Narrow (or restore) the issue stage — little-mute policies.

        Keeps the SoA loop's hoisted copy coherent whichever order the
        policy and :meth:`use_soa_hotloop` are applied in.
        """
        if width < 1 or width > self.core_cfg.width:
            raise ValueError(
                f"issue width must be in [1, {self.core_cfg.width}], got {width}"
            )
        self.issue_width = width
        if self._soa:
            self._c_issue_width = width

    def _init_flat(self) -> None:
        """Allocate the ring columns (plain lists, not int arrays).

        The columns deliberately stay plain Python lists rather than the
        ``array('q')``/numpy columns one might expect: ``None`` is a
        load-bearing value in the reference semantics (an unresolved
        store address means "conservatively block younger loads", an
        absent result means "do not write the ARF / fingerprint"), and
        the object loop's values are arbitrary-precision ints.  The win
        here is removing the per-instruction allocation and 28 slot
        writes, not narrowing storage.
        """
        size = self.core_cfg.rob_size
        cap = 1 << max(1, (size - 1).bit_length())  # power of two >= size
        self._f_cap = cap
        self._f_sbits = cap.bit_length() - 1
        self._f_smask = cap - 1
        #: Slot of the youngest live entry; first alloc lands on slot 0.
        #: Dispatch allocates ``(tail + 1) & mask``; squash rewinds it.
        #: Liveness is bounded by the ROB-size dispatch guard, so an
        #: allocation can never collide with a live slot.
        self._f_tail = cap - 1
        self.f_seq = [-1] * cap  # -1 = free slot
        self.f_pc = [0] * cap
        self.f_inst = [None] * cap
        self.f_state = [0] * cap  # DynState ints
        self.f_pend = [0] * cap
        self.f_v1 = [None] * cap
        self.f_v2 = [None] * cap
        self.f_res = [None] * cap
        self.f_addr = [None] * cap
        self.f_sval = [None] * cap
        self.f_pred = [None] * cap
        self.f_anext = [None] * cap
        self.f_ccyc = [-1] * cap
        self.f_fill = [None] * cap
        self.f_flags = [0] * cap  # decode F_* masks
        self.f_mask = [0] * cap  # packed booleans (repro.pipeline.flat M_*)
        self.f_ridx = [None] * cap  # replay-log index
        self.f_wo = [-1] * cap  # wait_on: packed ref of the blocking store
        self.f_pp = [-1] * cap  # prev_producer: displaced rename packed ref
        self.f_row = [-1] * cap  # decode row (-1 for injected/cold fetches)
        #: Dependents edge lists, reused across slot generations: each
        #: edge is ``(consumer_packed << 1) | (operand - 1)``.
        self.f_deps = [[] for _ in range(cap)]
        self._f_views = [FlatView(self, s) for s in range(cap)]
        # One-shot hoist bundle: the hot methods unpack this tuple into
        # locals (a single LOAD_ATTR + UNPACK_SEQUENCE) instead of ~20
        # separate attribute loads per call — the per-call fixed cost
        # matters because a typical call touches only 1-2 instructions.
        # The column list objects are never reassigned (mirror
        # materialization copies contents in place), so the bundle stays
        # valid for the core's lifetime.
        self._f_cols = (
            self.f_seq,
            self.f_pc,
            self.f_inst,
            self.f_state,
            self.f_pend,
            self.f_v1,
            self.f_v2,
            self.f_res,
            self.f_addr,
            self.f_sval,
            self.f_pred,
            self.f_anext,
            self.f_ccyc,
            self.f_fill,
            self.f_flags,
            self.f_mask,
            self.f_ridx,
            self.f_wo,
            self.f_pp,
            self.f_deps,
        )
        # Flat-path containers hold slot indices (rob / _unchecked — the
        # deques only ever contain live slots) or packed refs (everything
        # else, validated lazily), not DynInstr objects.
        self.rob = deque()
        self.rename = {}
        self.ready = []
        self.completions = []
        self._store_entries = deque()
        self._ser_heap = []
        self._unchecked = deque()
        self.sync_request = None

    def _view(self, slot: int) -> FlatView:
        """The slot's singleton view, stamped with its current seq."""
        view = self._f_views[slot]
        view._q = self.f_seq[slot]
        return view

    def _bind_decode(self) -> None:
        d = decode_program(self.program, self.sc_mode)
        self._decoded = d
        # Hoist bundle for fetch/dispatch/issue (see _f_cols): rebuilt
        # whenever the program is rebound (hard_reset), so it is always
        # current.
        self._d_cols = (
            d.flags, d.rs1, d.rs2, d.rd, d.target, d.inst, d.n,
            d.kern, d.btake,
        )

    def _step_soa(self, now: int) -> None:
        self.cycles += 1
        heap = self.completions
        if heap and heap[0][0] <= now:
            self._flat_completions(now)
        if self._drain_inflight is not None or self.drain:
            self._do_drain(now)
        rob = self.rob
        if rob or self.gate.open_count:
            self._flat_retire(now)
            # _flat_issue is _flat_issue_serializing plus the ready scan;
            # skip its call (and local setup) on ready-less stall cycles.
            if self.ready:
                self._flat_issue(now)
            elif rob and self._ser_heap:
                # An empty ser-heap proves no serializing/HALT entry is
                # in flight (they are pushed at dispatch), so the head-of
                # -ROB serializing scan would be a guaranteed no-op.
                self._flat_issue_serializing(now)
        fq = self.fetch_queue
        if fq and fq[0][0] <= now:
            self._flat_dispatch(now)
        self._do_fetch_soa(now)

    def _flat_issue(self, now: int) -> None:
        """`_do_issue` + `_issue_simple` over the ring columns, fused."""
        if self._ser_heap:
            self._flat_issue_serializing(now)
            ser_limit = self._flat_oldest_ser()
        else:
            # No serializing/HALT entry in flight: skip the head-of-ROB
            # scan and the heap peek entirely.
            ser_limit = None
        ready = self.ready
        if not ready:
            return
        ready.sort()  # packed order == program (seq) order
        (
            f_seq,
            f_pc,
            f_inst,
            f_state,
            _,
            f_v1,
            f_v2,
            f_res,
            f_addr,
            _,
            _,
            f_anext,
            _,
            _,
            f_flags,
            _,
            _,
            f_wo,
            _,
            _,
        ) = self._f_cols
        smask = self._f_smask
        sbits = self._f_sbits
        issue_budget = self._c_issue_width
        load_ports = self._c_load_ports
        alu_latency = self._c_alu_lat
        mul_latency = self._c_mul_lat
        completions = self.completions
        heappush = heapq.heappush
        fault_hook = self.fault_hook
        tracer = self.tracer
        f_row = self.f_row
        _, _, _, _, d_target, _, _, d_kern, d_btake = self._d_cols
        remaining: list[int] = []
        defer = remaining.append
        for packed in ready:
            slot = packed & smask
            if f_seq[slot] != packed >> sbits or f_state[slot] != 0:
                continue  # squashed, or already issued on an earlier scan
            f = f_flags[slot]
            if (
                issue_budget == 0
                or f & _F_SER_HALT
                or (ser_limit is not None and packed >> sbits > ser_limit)
            ):
                defer(packed)
                continue
            if f & F_LOAD:
                if load_ports == 0:
                    defer(packed)
                    continue
                blocker = f_wo[slot]
                if (
                    blocker >= 0
                    and f_seq[blocker & smask] == blocker >> sbits
                    and f_addr[blocker & smask] is None
                ):
                    # Memoized disambiguation block: don't burn a load port
                    # (or the _flat_issue_load call) on a known "wait".
                    defer(packed)
                    continue
                outcome = self._flat_issue_load(slot, packed, now)
                if outcome == 2:
                    return  # TLB trap: pipeline flushed, ready list rebuilt
                if outcome == 1:
                    defer(packed)
                    continue
                load_ports -= 1
            elif f & F_STORE:
                if not self._flat_issue_store(slot, packed, now):
                    return  # TLB trap flush
            else:
                # ALU / branch / jump / nop: _issue_simple over columns.
                latency = alu_latency
                if f & F_ALU:
                    row = f_row[slot]
                    if row >= 0:
                        # Pre-bound kernel: no op dispatch, imm baked in.
                        f_res[slot] = d_kern[row](
                            f_v1[slot] or 0, f_v2[slot] or 0
                        )
                    else:  # injected/cold fetch: no decode row
                        inst = f_inst[slot]
                        f_res[slot] = alu_result(
                            inst.op, f_v1[slot] or 0, f_v2[slot] or 0, inst.imm
                        )
                    if f & F_MUL:
                        latency = mul_latency
                elif f & F_BRANCH:
                    row = f_row[slot]
                    if row >= 0:
                        f_anext[slot] = (
                            d_target[row]
                            if d_btake[row](f_v1[slot] or 0, f_v2[slot] or 0)
                            else f_pc[slot] + 1
                        )
                    else:
                        inst = f_inst[slot]
                        f_anext[slot] = (
                            inst.target
                            if branch_taken(inst.op, f_v1[slot] or 0, f_v2[slot] or 0)
                            else f_pc[slot] + 1
                        )
                elif f & F_JUMP:
                    f_anext[slot] = f_inst[slot].target
                if fault_hook is not None:
                    fault_hook(self._view(slot))
                f_state[slot] = 1  # DynState.ISSUED
                if tracer is not None:
                    tracer.issue(self._view(slot), now)
                heappush(completions, (now + latency, packed))
            issue_budget -= 1
        self.ready = remaining

    def _flat_issue_load(self, slot: int, packed: int, now: int) -> int:
        """Flat `_issue_load`: 0 = done, 1 = wait, 2 = trap."""
        f_addr = self.f_addr
        addr = f_addr[slot]
        if addr is None:
            # Operands are immutable once captured, so compute the
            # effective address once across issue retries.
            addr = effective_address(self.f_v1[slot] or 0, self.f_inst[slot].imm)
            f_addr[slot] = addr

        if self.single_step and self.pair_sync_atomics and not self.f_mask[slot] & M_INJECTED:
            # Re-execution protocol: the first load is issued by both
            # cores as a synchronizing request (Definition 11).
            if not self.drain_empty:
                return 1
            self.port.dtlb_fill(addr)
            self.f_state[slot] = 1
            self.sync_request = self._view(slot)
            return 0

        blocker = self.f_wo[slot]
        if blocker >= 0:
            smask = self._f_smask
            if (
                self.f_seq[blocker & smask] == blocker >> self._f_sbits
                and f_addr[blocker & smask] is None
            ):
                return 1  # memoized "blocked" (see f_wo)
            self.f_wo[slot] = -1

        if self._store_entries or self.drain or self._drain_inflight is not None:
            forwarded = self._flat_forward(slot, packed, addr)
        else:
            forwarded = None
        if forwarded == "blocked":
            return 1
        if isinstance(forwarded, int):
            self.f_res[slot] = forwarded
            if self.fault_hook is not None:
                # Store-to-load forwarding is unprotected datapath — one of
                # the coverage gaps of a strict LVQ that relaxed input
                # replication closes (Section 2.3).
                self.fault_hook(self._view(slot))
            self.f_state[slot] = 1
            self._flat_sched(packed, now + 1, now)
            return 0

        extra = 0
        if not self.f_mask[slot] & M_INJECTED and not self._dtlb_lookup(addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._flat_take_dtlb_trap(slot, now)
                return 2
            extra = self.config.tlb.hw_fill_latency
            self.port.dtlb_fill(addr)

        access = self.port.load_f(addr, now)
        if access is None:
            return 1  # no MSHR free: retry
        value, done = access
        self.f_res[slot] = value
        if self.fault_hook is not None:
            self.fault_hook(self._view(slot))
        self.f_state[slot] = 1
        self._flat_sched(packed, done + extra, now)
        return 0

    def _flat_issue_store(self, slot: int, packed: int, now: int) -> bool:
        """Flat `_issue_store` (no memory access yet)."""
        addr = effective_address(self.f_v1[slot] or 0, self.f_inst[slot].imm)
        self.f_addr[slot] = addr
        self.f_sval[slot] = self.f_v2[slot] or 0
        if not self.f_mask[slot] & M_INJECTED and not self._dtlb_lookup(addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._flat_take_dtlb_trap(slot, now)
                return False
            self.port.dtlb_fill(addr)
            # Hardware fill overlaps with the store's time in the buffer.
        if self.fault_hook is not None:
            # Store address/value generation is unprotected datapath too.
            self.fault_hook(self._view(slot))
        self.f_state[slot] = 1
        self._flat_sched(packed, now + 1, now)
        return True

    def _flat_forward(self, slot: int, packed: int, addr):
        """Flat `_forward_from_stores`: value, "blocked", or None."""
        f_seq = self.f_seq
        smask = self._f_smask
        sbits = self._f_sbits
        f_addr = self.f_addr
        f_sval = self.f_sval
        for sp in reversed(self._store_entries):
            ss = sp & smask
            if f_seq[ss] != sp >> sbits:
                continue  # squashed/retired (filtered at squash; defensive)
            if sp >= packed:
                continue  # younger than the load
            store_addr = f_addr[ss]
            if store_addr is None:
                self.f_wo[slot] = sp  # memoize: skip rescans until resolved
                return "blocked"
            if store_addr == addr:
                value = f_sval[ss]
                if value is None:
                    return "blocked"
                return value
        for drain_addr, drain_value in reversed(self.drain):
            if drain_addr == addr:
                return drain_value
        inflight = self._drain_inflight
        if inflight is not None and inflight[0] == addr:
            return inflight[1]
        return None

    def _flat_issue_serializing(self, now: int) -> None:
        """Flat `_issue_serializing`: head-of-ROB only (Section 4.4)."""
        rob = self.rob
        if not rob:
            return
        f_state = self.f_state
        f_pend = self.f_pend
        f_flags = self.f_flags
        unchecked = self._unchecked
        if unchecked:
            waiting = unchecked[0]
            if (
                f_flags[waiting] & _F_SER_HALT
                and f_pend[waiting] == 0
                and f_state[waiting] == 0
            ):
                self.gate.close_open(now)
        slot = rob[0]
        if f_state[slot] != 0 or f_pend[slot] != 0:
            return
        if not f_flags[slot] & _F_SER_HALT:
            return
        op = self.f_inst[slot].op
        if op in (Op.MEMBAR, Op.ATOMIC, Op.CAS) and not self.drain_empty:
            return
        if self.sc_mode and op is Op.STORE and not self.drain_empty:
            return
        packed = (self.f_seq[slot] << self._f_sbits) | slot
        if op is Op.HALT or op is Op.MEMBAR or op is Op.TRAP:
            f_state[slot] = 1
            self._flat_sched(packed, now + 1, now)
        elif op is Op.MMUOP:
            f_state[slot] = 1
            self._flat_sched(packed, now + self.core_cfg.mmuop_latency, now)
        elif op is Op.STORE:  # SC-mode serializing store
            self._flat_issue_store(slot, packed, now)
        elif op in (Op.ATOMIC, Op.CAS):
            self._flat_issue_atomic(slot, packed, now)

    def _flat_issue_atomic(self, slot: int, packed: int, now: int) -> None:
        inst = self.f_inst[slot]
        addr = effective_address(self.f_v1[slot] or 0, inst.imm)
        self.f_addr[slot] = addr
        if not self.f_mask[slot] & M_INJECTED and not self._dtlb_lookup(addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._flat_take_dtlb_trap(slot, now)
                return
            self.port.dtlb_fill(addr)
        if self.pair_sync_atomics:
            # Reunion: atomics are synchronizing requests, performed once
            # by the shared cache controller when both cores arrive.
            self.f_state[slot] = 1
            self.sync_request = self._view(slot)
            return
        access = self.port.rmw_read(addr, now)
        if access.retry:
            return
        rd_value, new_value = atomic_result(
            inst.op, access.value, self.f_v2[slot] or 0, inst.imm
        )
        self.f_res[slot] = rd_value
        if new_value is not None:
            self.port.rmw_write(addr, new_value)
        self.f_state[slot] = 1
        self._flat_sched(packed, access.done, now)

    def _flat_oldest_ser(self):
        """Flat `_oldest_active_serializing` over the packed-ref heap."""
        heap = self._ser_heap
        f_seq = self.f_seq
        smask = self._f_smask
        sbits = self._f_sbits
        while heap:
            packed = heap[0]
            if f_seq[packed & smask] != packed >> sbits:
                heapq.heappop(heap)  # squashed or retired: slot freed
                continue
            return packed >> sbits
        return None

    def _flat_sched(self, packed: int, cycle: int, now: int | None = None) -> None:
        if self.tracer is not None:
            self.tracer.issue(
                self._view(packed & self._f_smask), cycle if now is None else now
            )
        heapq.heappush(self.completions, (cycle, packed))

    def _flat_dispatch(self, now: int) -> None:
        """`_do_dispatch` + `_dispatch_one` + `_capture`, fused over columns.

        Allocates the next ring slot and writes the columns directly —
        the steady state constructs no per-instruction object at all.
        """
        fq = self.fetch_queue
        rob = self.rob
        width = self._c_width
        rob_size = self._c_rob_size
        sb_size = self._c_sb_size
        d_flags, d_rs1, d_rs2, d_rd, d_target, d_inst, _, _, _ = self._d_cols
        (
            f_seq,
            f_pc,
            f_inst,
            f_state,
            f_pend,
            f_v1,
            f_v2,
            f_res,
            f_addr,
            f_sval,
            f_pred,
            f_anext,
            f_ccyc,
            f_fill,
            f_flags,
            f_mask,
            f_ridx,
            f_wo,
            f_pp,
            f_deps,
        ) = self._f_cols
        smask = self._f_smask
        sbits = self._f_sbits
        rename = self.rename
        rename_get = rename.get
        arf_regs = self.arf._regs  # RegisterFile.read, inlined
        f_row = self.f_row
        ready_append = self.ready.append
        rob_append = rob.append
        unchecked_append = self._unchecked.append
        tracer = self.tracer
        single_step = self.single_step
        fq_popleft = fq.popleft
        seq = self._next_seq
        tail = self._f_tail
        dispatched = 0
        while dispatched < width and fq:
            fetched = fq[0]
            if fetched[0] > now or len(rob) >= rob_size:
                break
            row = fetched[6]
            if row < 0:
                # Injected handler instruction (or a post-injection user
                # fetch from the shared path): no decode row.  The cold
                # helper reads/writes the seq and tail attributes, so
                # sync the locals around the call.
                if fetched[2].op is Op.STORE and self.sb_count >= sb_size:
                    break
                if single_step and rob:
                    break
                fq_popleft()
                self._next_seq = seq
                self._f_tail = tail
                self._flat_dispatch_cold(fetched, now)
                seq = self._next_seq
                tail = self._f_tail
                dispatched += 1
                continue
            f = d_flags[row]
            if f & F_STORE and self.sb_count >= sb_size:
                break
            if single_step and rob:
                break  # one instruction at a time during re-execution
            fq_popleft()
            slot = tail = (tail + 1) & smask
            packed = (seq << sbits) | slot
            pc = fetched[1]
            # Slots are recycled: every column a later stage may read
            # before writing must be reset here.  Columns proven
            # write-before-read for this instruction class are skipped —
            # f_addr/f_sval are only read for memory ops (forwarding,
            # fingerprint words, fault targeting), f_wo only for loads,
            # f_fill only when M_INJECTED is set (never on this path),
            # and f_deps is cleared at completion/squash, not here.
            f_seq[slot] = seq
            f_pc[slot] = pc
            f_inst[slot] = d_inst[row]
            f_state[slot] = 0  # DynState.DISPATCHED
            f_mask[slot] = 0
            f_res[slot] = None
            f_pred[slot] = fetched[4]
            f_ccyc[slot] = -1
            f_flags[slot] = f
            f_ridx[slot] = None
            f_row[slot] = row
            if f & F_MEM:
                f_addr[slot] = None
                f_sval[slot] = None
                if f & F_LOAD:
                    f_wo[slot] = -1

            # Operand capture.  (Decoded MOVI rows take the register-0
            # path — val1/val2 become 0 instead of the object loop's
            # untouched None; both are unread for MOVI, so this is
            # value-identical.)
            pending = 0
            if f & F_NEEDS1:
                reg = d_rs1[row]
                producer = rename_get(reg)
                if producer is None or f_seq[producer & smask] != producer >> sbits:
                    f_v1[slot] = arf_regs[reg]
                else:
                    ps = producer & smask
                    f_mask[ps] |= M_CONSUMED
                    result = f_res[ps]
                    if result is not None:
                        f_v1[slot] = result
                    else:
                        f_v1[slot] = None
                        pending = 1
                        f_deps[ps].append(packed << 1)
            else:
                reg = d_rs1[row]
                f_v1[slot] = arf_regs[reg]  # _regs[0] is pinned to 0
            if f & F_NEEDS2:
                reg = d_rs2[row]
                producer = rename_get(reg)
                if producer is None or f_seq[producer & smask] != producer >> sbits:
                    f_v2[slot] = arf_regs[reg]
                else:
                    ps = producer & smask
                    f_mask[ps] |= M_CONSUMED
                    result = f_res[ps]
                    if result is not None:
                        f_v2[slot] = result
                    else:
                        f_v2[slot] = None
                        pending += 1
                        f_deps[ps].append((packed << 1) | 1)
            else:
                f_v2[slot] = 0
            f_pend[slot] = pending

            if f & F_WRITES:
                rd = d_rd[row]
                prev = rename_get(rd)
                f_pp[slot] = -1 if prev is None else prev
                rename[rd] = packed
            else:
                f_pp[slot] = -1
            if f & F_STORE:
                self.sb_count += 1
                self._store_entries.append(packed)
            if f & _F_SER_HALT:
                heapq.heappush(self._ser_heap, packed)

            # Non-branch control flow resolves immediately; branches
            # carry the prediction and verify at completion.
            if not f & F_CONTROL or f & F_HALT:
                f_anext[slot] = pc + 1
            elif f & F_JUMP:
                f_anext[slot] = d_target[row]
            else:
                f_anext[slot] = None

            rob_append(slot)
            unchecked_append(slot)
            if tracer is not None:
                tracer.dispatch(self._view(slot), now)
            if pending == 0:
                ready_append(packed)
            seq += 1
            dispatched += 1
        self._next_seq = seq
        self._f_tail = tail

    def _flat_dispatch_cold(self, fetched: tuple, now: int) -> None:
        """Flat `_dispatch_one`: row-less fetches (injected handlers and
        post-injection user fetches from the shared fetch path)."""
        inst = fetched[2]
        seq = self._next_seq
        self._next_seq = seq + 1
        smask = self._f_smask
        slot = (self._f_tail + 1) & smask
        self._f_tail = slot
        packed = (seq << self._f_sbits) | slot
        self.f_seq[slot] = seq
        self.f_pc[slot] = fetched[1]
        self.f_inst[slot] = inst
        self.f_state[slot] = 0
        self.f_pend[slot] = 0
        self.f_mask[slot] = M_INJECTED if fetched[3] else 0
        self.f_v1[slot] = None
        self.f_v2[slot] = None
        self.f_res[slot] = None
        self.f_addr[slot] = None
        self.f_sval[slot] = None
        self.f_pred[slot] = fetched[4]
        self.f_anext[slot] = None
        self.f_ccyc[slot] = -1
        self.f_fill[slot] = fetched[5]
        flags = flags_of(inst, self.sc_mode)
        self.f_flags[slot] = flags
        self.f_ridx[slot] = None
        self.f_wo[slot] = -1
        self.f_pp[slot] = -1
        self.f_row[slot] = -1
        self.f_deps[slot].clear()

        # Capture operands / subscribe to producers (object-loop
        # predicates verbatim; MOVI leaves val1/val2 None, matching it).
        op = inst.op
        pending = 0
        if op is not Op.MOVI:
            needs1 = inst.rs1 != 0 and (
                inst.is_alu or inst.is_mem or inst.is_branch
            )
            needs2 = inst.rs2 != 0 and (
                (inst.is_alu and not inst.imm_form)
                or inst.is_branch
                or op is Op.STORE
                or op is Op.ATOMIC
                or op is Op.CAS
            )
            if needs1:
                pending += self._flat_capture(slot, packed, 1, inst.rs1)
            else:
                self.f_v1[slot] = 0 if inst.rs1 == 0 else self.arf.read(inst.rs1)
            if needs2:
                pending += self._flat_capture(slot, packed, 2, inst.rs2)
            else:
                self.f_v2[slot] = 0
            self.f_pend[slot] = pending

        if inst.writes_reg:
            prev = self.rename.get(inst.rd)
            self.f_pp[slot] = -1 if prev is None else prev
            self.rename[inst.rd] = packed

        if op is Op.STORE:
            self.sb_count += 1
            self._store_entries.append(packed)
        if flags & _F_SER_HALT:
            heapq.heappush(self._ser_heap, packed)

        if not inst.is_control or op is Op.HALT:
            self.f_anext[slot] = fetched[1] + 1
        elif op is Op.JUMP:
            self.f_anext[slot] = inst.target

        self.rob.append(slot)
        self._unchecked.append(slot)
        if self.tracer is not None:
            self.tracer.dispatch(self._view(slot), now)
        if pending == 0:
            self.ready.append(packed)

    def _flat_capture(self, slot: int, packed: int, which: int, reg: int) -> int:
        """Flat `_capture`; returns the operand's pending contribution."""
        producer = self.rename.get(reg)
        smask = self._f_smask
        live = (
            producer is not None
            and self.f_seq[producer & smask] == producer >> self._f_sbits
        )
        if not live:
            value = self.arf.read(reg)
            if which == 1:
                self.f_v1[slot] = value
            else:
                self.f_v2[slot] = value
            return 0
        ps = producer & smask
        self.f_mask[ps] |= M_CONSUMED
        result = self.f_res[ps]
        if result is not None:
            if which == 1:
                self.f_v1[slot] = result
            else:
                self.f_v2[slot] = result
            return 0
        self.f_deps[ps].append((packed << 1) | (which - 1))
        return 1

    # -- flat completions / retire / squash ----------------------------
    def _flat_completions(self, now: int) -> None:
        """Flat `_do_completions` over the (cycle, packed) heap."""
        heap = self.completions
        heappop = heapq.heappop
        (
            f_seq,
            _,
            _,
            f_state,
            f_pend,
            f_v1,
            f_v2,
            f_res,
            _,
            _,
            _,
            _,
            f_ccyc,
            _,
            f_flags,
            _,
            _,
            _,
            _,
            f_deps,
        ) = self._f_cols
        smask = self._f_smask
        sbits = self._f_sbits
        ready_append = self.ready.append
        tracer = self.tracer
        while heap and heap[0][0] <= now:
            packed = heappop(heap)[1]
            slot = packed & smask
            if f_seq[slot] != packed >> sbits:
                continue  # squashed
            f_state[slot] = 2  # DynState.COMPLETED
            f_ccyc[slot] = now
            if tracer is not None:
                tracer.complete(self._view(slot), now)
            # Edges are cleared here (or at squash) rather than on slot
            # recycle in dispatch — completion is the last reader.
            edges = f_deps[slot]
            if edges:
                result = f_res[slot]
                if result is not None:
                    for edge in edges:
                        dep = edge >> 1
                        ds = dep & smask
                        if f_seq[ds] != dep >> sbits:
                            continue  # consumer squashed
                        if edge & 1:
                            f_v2[ds] = result
                        else:
                            f_v1[ds] = result
                        pending = f_pend[ds] - 1
                        f_pend[ds] = pending
                        if pending == 0 and f_state[ds] == 0:
                            ready_append(dep)
                edges.clear()
            if f_flags[slot] & F_BRANCH:
                actual_next = self.f_anext[slot]
                pc = self.f_pc[slot]
                self.predictor.update(pc, actual_next != pc + 1)
                if actual_next != self.f_pred[slot]:
                    self.mispredicts += 1
                    self._flat_squash_to((packed >> sbits) + 1)
                    self._redirect_fetch(actual_next)

    def _flat_retire(self, now: int) -> None:
        """Flat `_do_retire`: release cleared refs, offer completed ones."""
        width = self._c_width
        gate = self.gate
        released = gate.pop_retirable_f(self, now, width)
        if released:
            f_seq = self.f_seq
            smask = self._f_smask
            sbits = self._f_sbits
            for packed in released:
                if f_seq[packed & smask] != packed >> sbits:
                    continue  # squashed mid-batch (TRAP/interrupt retire)
                self._flat_retire_one(packed & smask, now)
        unchecked = self._unchecked
        if not unchecked:
            return
        f_state = self.f_state
        if f_state[unchecked[0]] != 2:
            return  # head of the unchecked region not done: nothing to offer
        offered = 0
        log = self.replay_log
        f_mask = self.f_mask
        gate_offer = gate.offer_f
        while unchecked and offered < width:
            slot = unchecked[0]
            if f_state[slot] != 2:
                break
            unchecked.popleft()
            f_state[slot] = 3  # DynState.IN_CHECK
            if log is not None and not f_mask[slot] & M_INJECTED:
                # Vocal: log the in-order value stream for the pair's
                # window-exit interval reconstruction.  Offered entries
                # can still be squashed (trap, interrupt, recovery);
                # _flat_squash_to truncates the log.
                self.f_ridx[slot] = len(log)
                log.append(
                    (
                        self.f_pc[slot],
                        self.f_res[slot],
                        self.f_addr[slot],
                        self.f_sval[slot],
                        self.f_anext[slot],
                        self.f_inst[slot],
                    )
                )
            gate_offer(self, slot, now)
            offered += 1
            if (
                self._interrupts
                and not self.single_step
                and not f_mask[slot] & M_INJECTED
                and gate.users_offered >= self._interrupts[0][0]
            ):
                # Service at the in-order offer boundary: no younger
                # entry has reached the gate yet, so the squash below
                # touches only unoffered in-flight state and both cores
                # of a pair — even a heterogeneous little-mute pair with
                # a different pipeline depth — pick the identical stream
                # point (gate.users_offered is a pure function of the
                # correct-path instruction stream).
                actual_next = self.f_anext[slot]
                resume = actual_next if actual_next is not None else self.f_pc[slot] + 1
                self._flat_service_interrupt(self.f_seq[slot], resume)
                break
        self._check_pending += offered

    def _flat_retire_one(self, slot: int, now: int) -> None:
        """Flat `_retire`: architectural update for one checked slot.

        The gate releases strictly in offer order, so ``slot`` is always
        the ROB head here.  Frees the ring slot; the TRAP / interrupt /
        TLB flush paths run after the free so the ring never holds a
        retired-but-live slot.
        """
        self.rob.popleft()
        self._check_pending -= 1
        f_seq = self.f_seq
        seq = f_seq[slot]
        flags = self.f_flags[slot]
        mask = self.f_mask[slot]
        self.f_state[slot] = 4  # DynState.RETIRED
        if self.tracer is not None:
            self.tracer.retire(self._view(slot), now)
        self.total_retired += 1
        if flags & F_STORE:
            store_entries = self._store_entries
            if store_entries and store_entries[0] == (seq << self._f_sbits) | slot:
                store_entries.popleft()
            self.drain.append((self.f_addr[slot], self.f_sval[slot]))
            # sb_count is released when the drain completes.
        elif flags & F_HALT:
            self.halted = True

        if flags & F_WRITES:
            # Clear the displaced-producer link so retired slots never
            # chain-retain their predecessors.
            self.f_pp[slot] = -1
            rd = self.f_inst[slot].rd
            result = self.f_res[slot]
            if result is not None and rd != 0:
                # RegisterFile.write, inlined.
                self.arf._regs[rd] = result & WORD_MASK
            rename = self.rename
            if rename.get(rd) == (seq << self._f_sbits) | slot:
                del rename[rd]

        if mask & M_INJECTED:
            self.injected_retired += 1
            fill_addr = self.f_fill[slot]
            f_seq[slot] = -1  # free the ring slot
            if fill_addr is not None:
                self.port.dtlb_fill(fill_addr)
            return

        self.user_retired += 1
        if self.retire_hook is not None:
            self.retire_hook(self._view(slot))
        if flags & F_MEM:
            self.user_mem_retired += 1
        if flags & F_SER:
            self.serializing_retired += 1

        pc = self.f_pc[slot]
        actual_next = self.f_anext[slot]
        op = self.f_inst[slot].op
        f_seq[slot] = -1  # free the ring slot before any flush below
        if op is Op.TRAP:
            # User-level traps redirect fetch through the trap vector:
            # model as a full pipeline flush and refetch.
            self._flat_squash_to(seq + 1)
            self._redirect_fetch(pc + 1)
        elif not self.single_step:
            # External interrupts are serviced at the in-order *offer*
            # boundary (see _flat_retire's offer loop), not here: at
            # retire time younger entries have already entered the check
            # gate, and squashing them would desynchronize interval
            # contents across a heterogeneous pair.
            sched = self.synthetic_itlb
            if sched is not None:
                # hashed_schedule exposes its memoized decision table;
                # index it directly and call in only to extend it (or
                # for table-less custom schedules).
                idx = self.user_retired
                table = getattr(sched, "table", None)
                if table is not None and idx < len(table):
                    miss = table[idx]
                else:
                    miss = sched(idx)
                if miss:
                    self.itlb_misses += 1
                    resume = actual_next if actual_next is not None else pc + 1
                    self._flat_take_synthetic_tlb_miss(seq, resume, now)

    def _flat_service_interrupt(self, seq: int, resume: int) -> None:
        """Flat `_service_interrupt` (the triggering slot stays live:
        it was just offered and retires through the gate normally)."""
        _, handler = self._interrupts.popleft()
        self.interrupts_serviced += 1
        self._flat_squash_to(seq + 1)
        self.fetch_queue.clear()
        self.injection.clear()
        for inst in handler:
            self.injection.append((inst, None))
        self._injection_resume = resume
        self.fetch_stalled = False

    def _flat_take_synthetic_tlb_miss(self, seq: int, resume: int, now: int) -> None:
        """Flat `_take_synthetic_tlb_miss`."""
        if self.sw_tlb:
            self._flat_squash_to(seq + 1)
            self._inject_handler(
                page=self.user_retired, fill_addr=None, resume_pc=resume
            )
        else:
            self.stall_fetch_until = max(
                self.stall_fetch_until, now + self.config.tlb.hw_fill_latency
            )

    def _flat_take_dtlb_trap(self, slot: int, now: int) -> None:
        """Flat `_take_dtlb_trap`: flush (inclusive) and run the handler."""
        addr = self.f_addr[slot]
        page = addr >> self.config.tlb.page_bits
        pc = self.f_pc[slot]
        self._flat_squash_to(self.f_seq[slot])
        self._inject_handler(page=page, fill_addr=addr, resume_pc=pc)

    def _flat_squash_to(self, first_bad_seq: int) -> None:
        """Flat `_squash_to`: pop ROB-tail victims youngest-first.

        Freeing a victim's slot (seq -1) *is* the squash mark — every
        packed ref to it everywhere (ready list, heaps, rename, gate
        pending, deps edges) goes stale at once, and the ring tail
        rewinds so the slots are immediately reusable.
        """
        rob = self.rob
        f_seq = self.f_seq
        smask = self._f_smask
        sbits = self._f_sbits
        f_state = self.f_state
        f_flags = self.f_flags
        f_ridx = self.f_ridx
        f_pp = self.f_pp
        unchecked = self._unchecked
        rename = self.rename
        log = self.replay_log
        tracer = self.tracer
        truncate = -1
        while rob and f_seq[rob[-1]] >= first_bad_seq:
            slot = rob.pop()
            self._f_tail = (slot - 1) & smask
            seq = f_seq[slot]
            if log is not None:
                ridx = f_ridx[slot]
                if ridx is not None:
                    # Vocal: un-log squashed speculative records; they are
                    # re-logged (with identical content) after re-execution.
                    truncate = ridx  # popped youngest-first
            if tracer is not None:
                # Stamp the view by hand: the slot is about to be freed
                # but the tracer keys its record by the victim's seq.
                view = self._f_views[slot]
                view._q = seq
                tracer.squash(view)
            if f_state[slot] == 3:  # DynState.IN_CHECK
                self._check_pending -= 1
            elif unchecked and unchecked[-1] == slot:
                unchecked.pop()
            flags = f_flags[slot]
            if flags & F_STORE and f_state[slot] != 4:
                self.sb_count -= 1
            if flags & F_WRITES:
                rd = self.f_inst[slot].rd
                if rename.get(rd) == (seq << sbits) | slot:
                    previous = f_pp[slot]
                    # A live prev ref == "not squashed and not retired".
                    if previous >= 0 and f_seq[previous & smask] == previous >> sbits:
                        rename[rd] = previous
                    else:
                        del rename[rd]
            # Hot dispatch no longer clears deps on recycle: a victim
            # that never completed must drop its subscriber edges here.
            self.f_deps[slot].clear()
            f_seq[slot] = -1  # free
        if truncate >= 0:
            log.truncate_to(truncate)
        self._store_entries = deque(
            p for p in self._store_entries if f_seq[p & smask] == p >> sbits
        )
        sync_request = self.sync_request
        if sync_request is not None and f_seq[sync_request._s] != sync_request._q:
            self.sync_request = None
        self.ready = [p for p in self.ready if f_seq[p & smask] == p >> sbits]
        self.fetch_queue.clear()
        self.injection.clear()
        self._injection_resume = None
        self.fetch_stalled = False

    def _next_event_flat(self, now: int) -> int:
        """Flat `next_event`: identical horizon logic over the columns."""
        if self.ready:
            return now
        wake = NEVER
        heap = self.completions
        if heap:
            t = heap[0][0]
            if t <= now:
                return now
            wake = t
        inflight = self._drain_inflight
        if inflight is not None:
            t = inflight[2]
            if t <= now:
                return now
            if t < wake:
                wake = t
        elif self.drain:
            return now
        f_state = self.f_state
        f_pend = self.f_pend
        f_flags = self.f_flags
        unchecked = self._unchecked
        if unchecked:
            waiting = unchecked[0]
            if f_state[waiting] == 2:
                return now
            if (
                self.gate.open_count
                and f_pend[waiting] == 0
                and f_state[waiting] == 0
                and f_flags[waiting] & _F_SER_HALT
            ):
                return now
        t = self.gate.next_release_f(self, now)
        if t <= now:
            return now
        if t < wake:
            wake = t
        rob = self.rob
        if rob:
            head = rob[0]
            if (
                f_state[head] == 0
                and f_pend[head] == 0
                and f_flags[head] & _F_SER_HALT
            ):
                op = self.f_inst[head].op
                needs_drain = (
                    op is Op.MEMBAR
                    or op is Op.ATOMIC
                    or op is Op.CAS
                    or (self.sc_mode and op is Op.STORE)
                )
                if not needs_drain or self.drain_empty:
                    return now
        fetch_queue = self.fetch_queue
        if fetch_queue:
            head = fetch_queue[0]
            t = head[0]  # ready_cycle
            if t > now:
                if t < wake:
                    wake = t
            elif len(rob) < self._c_rob_size and not (self.single_step and rob):
                if not (
                    head[2].op is Op.STORE
                    and self.sb_count >= self._c_sb_size
                ):
                    return now
        if (
            not self.halted
            and not self.fetch_stalled
            and len(fetch_queue) < self.core_cfg.fetch_queue_size
        ):
            t = self.stall_fetch_until
            if t <= now:
                return now
            if t < wake:
                wake = t
        return wake

    def _do_fetch_soa(self, now: int) -> None:
        if self.halted or self.fetch_stalled or now < self.stall_fetch_until:
            return
        if self.injection:
            # Handler injection mixes injected and user fetches within
            # one cycle: take the cold shared path for the whole call.
            self._do_fetch(now)
            return
        cc = self.core_cfg
        fq = self.fetch_queue
        room = cc.fetch_queue_size - len(fq)
        if room <= 0:
            return
        width = cc.width
        if room > width:
            room = width
        d_flags, _, _, _, d_target, d_inst, d_n, _, _ = self._d_cols
        predictor = self.predictor
        p_table = predictor._table
        p_key = predictor._history & predictor._mask  # XOR pc per row below
        p_mask = predictor._mask
        mirror_watch = self.mirror_watch
        single_step = self.single_step
        append = fq.append
        ready = now + cc.frontend_latency
        pc = self.pc
        fetched = 0
        while fetched < room:
            row = pc if 0 <= pc < d_n else d_n
            f = d_flags[row]
            if mirror_watch and f & F_WINDOW_END:
                # The first memory / serializing / halt instruction ends
                # the mirror window (see _do_fetch for the full timing
                # argument).
                self.mirror_trigger = True
            if f & F_BRANCH:
                # Inlined gshare predict (predictor.update never runs
                # between fetches within one step call).
                if p_table[(pc ^ p_key) & p_mask] >= 2:
                    next_pc = d_target[row]
                else:
                    next_pc = pc + 1
                append((ready, pc, d_inst[row], False, next_pc, None, row))
                pc = next_pc
            elif f & F_CONTROL:
                append((ready, pc, d_inst[row], False, None, None, row))
                if f & F_HALT:
                    self.fetch_stalled = True
                    fetched += 1
                    break  # pc intentionally not advanced past HALT
                pc = d_target[row]  # JUMP
            else:
                append((ready, pc, d_inst[row], False, None, None, row))
                pc += 1
            fetched += 1
            if single_step:
                break
        self.pc = pc

    @property
    def idle(self) -> bool:
        """True when nothing is in flight and the core has halted."""
        return self.halted and not self.rob and not self.drain and self._drain_inflight is None

    # -- event horizon (cycle-skipping kernel) --------------------------
    def next_event(self, now: int) -> int:
        """Conservative wake-up horizon for the cycle-skipping kernel.

        Returns the earliest cycle ``>= now`` at which :meth:`step` could
        change any state (architectural, microarchitectural, or
        statistics).  ``now`` itself means "cannot skip: the very next
        step may act"; :data:`NEVER` means the core generates no further
        events on its own (it can still be woken by its pair partner,
        whose horizon is computed separately).

        The contract is *conservative*: returning a cycle earlier than
        the true next event merely costs a no-op step (under-skipping is
        safe); returning a later cycle would silently drop work
        (over-skipping is a bug).  Every ``now``-dependent branch of
        ``step()`` must therefore be reflected here:

        * the completion heap head,
        * the in-flight store drain (and any queued drain store, which
          retries — and counts MSHR-stall statistics — every cycle),
        * the retire gate's next release / interval-timeout close,
        * pending offers of completed ROB entries into the check stage,
        * the ready list (issue is attempted every cycle it is nonempty),
        * a serializing instruction at the ROB head or at the check
          boundary (Section 4.4 stalls),
        * the fetch queue head's dispatch-ready cycle, and
        * the frontend's ``stall_fetch_until``.
        """
        # Issue: a nonempty ready list is rescanned every cycle.  This is
        # the cheapest and by far the most common "busy" signal, so it is
        # tested before anything else (ordering is free: every branch
        # either returns ``now`` or only lowers ``wake``).
        if self.ready:
            return now
        wake = NEVER
        # Completions: nothing executes out of the heap before its head.
        heap = self.completions
        if heap:
            t = heap[0][0]
            if t <= now:
                return now
            wake = t
        # Store drain: an in-flight drain completes at a known cycle; a
        # queued drain store is attempted (or MSHR-retried, which counts
        # stall statistics) every single cycle.
        inflight = self._drain_inflight
        if inflight is not None:
            t = inflight[2]
            if t <= now:
                return now
            if t < wake:
                wake = t
        elif self.drain:
            return now
        unchecked = self._unchecked
        if unchecked:
            waiting = unchecked[0]
            # Completed entries are offered to the gate width-per-cycle.
            if waiting.state == DynState.COMPLETED:
                return now
            # A ready serializing instruction at the check boundary ends
            # the open fingerprint interval (gate.close_open).
            if (
                self.gate.open_count
                and waiting.pending == 0
                and waiting.state == DynState.DISPATCHED
                and (waiting.serializing or waiting.inst.op is Op.HALT)
            ):
                return now
        # Retire gate: cleared intervals, injected-serializing stalls,
        # and (for paired gates) the interval-timeout close.
        t = self.gate.next_release(now)
        if t <= now:
            return now
        if t < wake:
            wake = t
        rob = self.rob
        if rob:
            head = rob[0]
            if (
                head.state == DynState.DISPATCHED
                and head.pending == 0
                and (head.serializing or head.inst.op is Op.HALT)
            ):
                op = head.inst.op
                needs_drain = (
                    op is Op.MEMBAR
                    or op is Op.ATOMIC
                    or op is Op.CAS
                    or (self.sc_mode and op is Op.STORE)
                )
                if not needs_drain or self.drain_empty:
                    return now
                # Otherwise blocked on the drain, whose horizon is above.
        # Dispatch: the fetch-queue head becomes eligible at ready_cycle;
        # structural blocks (ROB, store buffer, single-step) are lifted
        # only by retire/drain events already accounted for.
        fetch_queue = self.fetch_queue
        if fetch_queue:
            head = fetch_queue[0]
            t = head[0]  # ready_cycle
            if t > now:
                if t < wake:
                    wake = t
            elif len(rob) < self.core_cfg.rob_size and not (self.single_step and rob):
                if not (
                    head[2].op is Op.STORE
                    and self.sb_count >= self.core_cfg.store_buffer_size
                ):
                    return now
        # Fetch: active whenever there is room and the frontend is not
        # stalled; a hardware-TLB refill stall expires at a known cycle.
        if (
            not self.halted
            and not self.fetch_stalled
            and len(fetch_queue) < self.core_cfg.fetch_queue_size
        ):
            t = self.stall_fetch_until
            if t <= now:
                return now
            if t < wake:
                wake = t
        return wake

    # -- completions ----------------------------------------------------
    def _do_completions(self, now: int) -> None:
        heap = self.completions
        if not heap or heap[0][0] > now:
            return
        # Hot path: hoist bound methods and the ready list out of the loop,
        # and inline the producer wake-up (DynInstr.set_src).
        heappop = heapq.heappop
        ready_append = self.ready.append
        completed = DynState.COMPLETED
        dispatched = DynState.DISPATCHED
        tracer = self.tracer
        while heap and heap[0][0] <= now:
            entry = heappop(heap)[2]
            if entry.squashed:
                continue
            entry.state = completed
            entry.complete_cycle = now
            if tracer is not None:
                tracer.complete(entry, now)
            result = entry.result
            if result is not None:
                for dependent, slot in entry.dependents:
                    if not dependent.squashed:
                        if slot == 1:
                            dependent.val1 = result
                        else:
                            dependent.val2 = result
                        pending = dependent.pending - 1
                        dependent.pending = pending
                        if pending == 0 and dependent.state == dispatched:
                            ready_append(dependent)
                entry.dependents = []
            if entry.inst.is_branch:
                self.predictor.update(entry.pc, entry.actual_next != entry.pc + 1)
                if entry.actual_next != entry.predicted_next:
                    self.mispredicts += 1
                    self._squash_after(entry)
                    self._redirect_fetch(entry.actual_next)

    # -- store drain ------------------------------------------------------
    def _do_drain(self, now: int) -> None:
        inflight = self._drain_inflight
        if inflight is not None:
            if now < inflight[2]:
                return
            self._drain_inflight = None
            self.sb_count -= 1
        if self.drain:
            addr, value = self.drain[0]
            done = self.port.store_f(addr, value, now)
            if done is None:
                return
            self.drain.popleft()
            self._drain_inflight = (addr, value, done)

    @property
    def drain_empty(self) -> bool:
        return not self.drain and self._drain_inflight is None

    # -- retirement -------------------------------------------------------
    def _do_retire(self, now: int) -> None:
        width = self.core_cfg.width
        # 1. Architecturally retire entries the gate has cleared.  The
        # precheck keeps the common nothing-to-release cycle free of the
        # pop's list allocation and deque churn.
        gate = self.gate
        if gate.has_retirable(now):
            for entry in gate.pop_retirable(now, width):
                if entry.squashed:
                    continue
                self._retire(entry, now)
        # 2. Offer the oldest completed-but-unchecked entries to the gate.
        unchecked = self._unchecked
        if not unchecked:
            return
        completed = DynState.COMPLETED
        if unchecked[0].state != completed:
            return  # head of the unchecked region not done: nothing to offer
        offered = 0
        log = self.replay_log
        in_check = DynState.IN_CHECK
        while unchecked and offered < width:
            entry = unchecked[0]
            if entry.state != completed:
                break
            unchecked.popleft()
            entry.state = in_check
            if log is not None and not entry.injected:
                # Vocal: log the in-order value stream for the pair's
                # window-exit interval reconstruction.  Offered entries
                # can still be squashed (trap, interrupt, recovery);
                # _squash_to truncates the log.
                entry.replay_index = len(log)
                log.append(
                    (
                        entry.pc,
                        entry.result,
                        entry.addr,
                        entry.store_value,
                        entry.actual_next,
                        entry.inst,
                    )
                )
            gate.offer(entry, now)
            offered += 1
            if (
                self._interrupts
                and not self.single_step
                and not entry.injected
                and gate.users_offered >= self._interrupts[0][0]
            ):
                # Service at the in-order offer boundary: no younger
                # entry has reached the gate yet, so the squash below
                # touches only unoffered in-flight state and both cores
                # of a pair — even a heterogeneous little-mute pair with
                # a different pipeline depth — pick the identical stream
                # point (gate.users_offered is a pure function of the
                # correct-path instruction stream).
                self._service_interrupt(entry)
                break
        self._check_pending += offered

    def _retire(self, entry: DynInstr, now: int) -> None:
        """Update architectural state for one checked instruction.

        The gate releases strictly in offer order, so ``entry`` is always
        the ROB head here.
        """
        self.rob.popleft()
        self._check_pending -= 1
        entry.state = DynState.RETIRED
        if self.tracer is not None:
            self.tracer.retire(entry, now)
        inst = entry.inst
        op = inst.op
        self.total_retired += 1
        if op is Op.STORE:
            store_entries = self._store_entries
            if store_entries and store_entries[0] is entry:
                store_entries.popleft()
            self.drain.append((entry.addr, entry.store_value))
            # sb_count is released when the drain completes.
        elif op is Op.HALT:
            self.halted = True

        if inst.writes_reg:
            # Clear the displaced-producer link so retired entries never
            # chain-retain their predecessors.
            entry.prev_producer = None
            if entry.result is not None:
                self.arf.write(inst.rd, entry.result)
            rename = self.rename
            if rename.get(inst.rd) is entry:
                del rename[inst.rd]

        if entry.injected:
            self.injected_retired += 1
            if entry.fill_addr is not None:
                self.port.dtlb_fill(entry.fill_addr)
            return

        self.user_retired += 1
        if self.retire_hook is not None:
            self.retire_hook(entry)
        if inst.is_mem:
            self.user_mem_retired += 1
        if entry.serializing:
            self.serializing_retired += 1

        if inst.op is Op.TRAP:
            # User-level traps redirect fetch through the trap vector:
            # model as a full pipeline flush and refetch.
            self._squash_after(entry)
            self._redirect_fetch(entry.pc + 1)
        elif not self.single_step:
            # External interrupts are serviced at the in-order *offer*
            # boundary (see _do_retire's offer loop), not here: at retire
            # time younger entries have already entered the check gate,
            # and squashing them would desynchronize interval contents
            # across a heterogeneous pair.
            if self.synthetic_itlb is not None and self.synthetic_itlb(
                self.user_retired
            ):
                self.itlb_misses += 1
                self._take_synthetic_tlb_miss(entry, now)

    # -- external interrupts ----------------------------------------------
    def schedule_interrupt(self, at_user_count: int, handler: list[Instruction]) -> None:
        """Service an interrupt after retiring ``at_user_count`` user instrs.

        The pair controller schedules the *same* count on vocal and mute,
        so both service the interrupt at an identical program point —
        the paper's fingerprint-comparison-based alignment (Section 4.3).
        """
        self._interrupts.append((at_user_count, handler))
        self._skip_until = 0

    def _service_interrupt(self, entry: DynInstr) -> None:
        """Squash past ``entry`` and inject the handler.

        ``entry`` itself stays live: it was just offered to the gate and
        retires through it normally (``_squash_after`` spares it).
        """
        _, handler = self._interrupts.popleft()
        self.interrupts_serviced += 1
        resume = entry.actual_next if entry.actual_next is not None else entry.pc + 1
        self._squash_after(entry)
        self.fetch_queue.clear()
        self.injection.clear()
        for inst in handler:
            self.injection.append((inst, None))
        self._injection_resume = resume
        self.fetch_stalled = False

    def _take_synthetic_tlb_miss(self, entry: DynInstr, now: int) -> None:
        """Instruction-fetch TLB miss charged at retirement of instr n."""
        resume = entry.actual_next if entry.actual_next is not None else entry.pc + 1
        if self.config.tlb.mode is TLBMode.SOFTWARE:
            self._squash_after(entry)
            self._inject_handler(page=self.user_retired, fill_addr=None, resume_pc=resume)
        else:
            self.stall_fetch_until = max(
                self.stall_fetch_until, now + self.config.tlb.hw_fill_latency
            )

    # -- issue ---------------------------------------------------------------
    def _do_issue(self, now: int) -> None:
        self._issue_serializing(now)

        if not self.ready:
            return
        self.ready.sort(key=_BY_SEQ)
        issue_budget = self.issue_width
        load_ports = self.core_cfg.load_ports
        ser_limit = self._oldest_active_serializing()
        remaining: list[DynInstr] = []
        # Hot path: cache the append bound method and state constant.
        defer = remaining.append
        dispatched = DynState.DISPATCHED

        for entry in self.ready:
            if entry.squashed or entry.state != dispatched:
                continue
            if issue_budget == 0:
                defer(entry)
                continue
            op = entry.inst.op
            if entry.serializing or op is Op.HALT:
                defer(entry)  # handled by _issue_serializing
                continue
            if ser_limit is not None and entry.seq > ser_limit:
                defer(entry)  # blocked behind a serializing op
                continue
            if op is Op.LOAD:
                if load_ports == 0:
                    defer(entry)
                    continue
                outcome = self._issue_load(entry, now)
                if outcome == "trap":
                    return  # pipeline flushed; ready list rebuilt
                if outcome == "wait":
                    defer(entry)
                    continue
                load_ports -= 1
            elif op is Op.STORE:
                if not self._issue_store(entry, now):
                    return  # TLB trap flush
            else:
                self._issue_simple(entry, now)
            issue_budget -= 1

        self.ready = remaining

    def _issue_simple(self, entry: DynInstr, now: int) -> None:
        """ALU ops, branches, jumps, nops: compute and schedule completion."""
        inst = entry.inst
        op = inst.op
        latency = self.core_cfg.alu_latency
        if inst.is_alu:
            entry.result = alu_result(op, entry.val1 or 0, entry.val2 or 0, inst.imm)
            if op is Op.MUL:
                latency = self.core_cfg.mul_latency
        elif inst.is_branch:
            taken = branch_taken(op, entry.val1 or 0, entry.val2 or 0)
            entry.actual_next = inst.target if taken else entry.pc + 1
        elif op is Op.JUMP:
            entry.actual_next = inst.target
        if self.fault_hook is not None:
            self.fault_hook(entry)
        entry.state = DynState.ISSUED
        self._schedule(entry, now + latency, now)

    def _issue_load(self, entry: DynInstr, now: int) -> str:
        """Try to issue a load; returns 'done', 'wait', or 'trap'."""
        if entry.addr is None:
            # Operands are immutable once captured, so compute the
            # effective address once across issue retries.
            entry.addr = effective_address(entry.val1 or 0, entry.inst.imm)

        if self.single_step and self.pair_sync_atomics and not entry.injected:
            # Re-execution protocol: the first load is issued by both
            # cores as a synchronizing request (Definition 11).
            if not self.drain_empty:
                return "wait"
            self.port.dtlb_fill(entry.addr)
            entry.state = DynState.ISSUED
            self.sync_request = entry
            return "done"

        blocker = entry.wait_on
        if blocker is not None:
            if blocker.addr is None and not blocker.squashed:
                return "wait"  # memoized "blocked" (see DynInstr.wait_on)
            entry.wait_on = None

        if self._store_entries or self.drain or self._drain_inflight is not None:
            forwarded = self._forward_from_stores(entry)
        else:
            forwarded = None
        if forwarded == "blocked":
            return "wait"
        if isinstance(forwarded, int):
            entry.result = forwarded
            if self.fault_hook is not None:
                # Store-to-load forwarding is unprotected datapath — one of
                # the coverage gaps of a strict LVQ that relaxed input
                # replication closes (Section 2.3).
                self.fault_hook(entry)
            entry.state = DynState.ISSUED
            self._schedule(entry, now + 1, now)
            return "done"

        extra = 0
        if not entry.injected and not self.port.dtlb_hit(entry.addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._take_dtlb_trap(entry, now)
                return "trap"
            extra = self.config.tlb.hw_fill_latency
            self.port.dtlb_fill(entry.addr)

        access = self.port.load(entry.addr, now)
        if access.retry:
            return "wait"
        entry.result = access.value
        if self.fault_hook is not None:
            self.fault_hook(entry)
        entry.state = DynState.ISSUED
        self._schedule(entry, access.done + extra, now)
        return "done"

    def _issue_store(self, entry: DynInstr, now: int) -> bool:
        """Compute a store's address and value (no memory access yet)."""
        inst = entry.inst
        entry.addr = effective_address(entry.val1 or 0, inst.imm)
        entry.store_value = entry.val2 or 0
        if not entry.injected and not self.port.dtlb_hit(entry.addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._take_dtlb_trap(entry, now)
                return False
            self.port.dtlb_fill(entry.addr)
            # Hardware fill overlaps with the store's time in the buffer.
        if self.fault_hook is not None:
            # Store address/value generation is unprotected datapath too:
            # an upset here corrupts the fingerprint's store-stream words
            # (the other input class besides results and branch targets).
            self.fault_hook(entry)
        entry.state = DynState.ISSUED
        self._schedule(entry, now + 1, now)
        return True

    def _forward_from_stores(self, load: DynInstr) -> int | str | None:
        """Store-to-load forwarding across ROB stores and the drain queue.

        Returns a value when forwarding succeeds, "blocked" when an older
        store is unresolved (conservative disambiguation), or None when
        the load may go to memory.
        """
        addr = load.addr
        for store in reversed(self._store_entries):
            if store.squashed:
                continue
            if store.seq >= load.seq:
                continue
            if store.state == DynState.RETIRED:
                break  # retired stores are visible via the drain queue
            if store.addr is None:
                load.wait_on = store  # memoize: skip rescans until resolved
                return "blocked"
            if store.addr == addr:
                if store.store_value is None:
                    return "blocked"
                return store.store_value
        for drain_addr, drain_value in reversed(self.drain):
            if drain_addr == addr:
                return drain_value
        inflight = self._drain_inflight
        if inflight is not None and inflight[0] == addr:
            return inflight[1]
        return None

    def _issue_serializing(self, now: int) -> None:
        """Serializing ops (and HALT) execute only at the head of the ROB.

        Being at the head means every older instruction has been compared
        and retired — requirement (1) of Section 4.4.  Requirement (2),
        that younger instructions stall, is enforced in ``_do_issue`` via
        ``_oldest_active_serializing``.
        """
        if not self.rob:
            return
        # When the next unchecked instruction is serializing and ready,
        # end the open fingerprint interval immediately so the older
        # instructions ahead of it can compare and retire (Section 4.4).
        unchecked = self._unchecked
        if unchecked:
            waiting = unchecked[0]
            if (
                (waiting.serializing or waiting.inst.op is Op.HALT)
                and waiting.pending == 0
                and waiting.state == DynState.DISPATCHED
            ):
                self.gate.close_open(now)
        entry = self.rob[0]
        if entry.state != DynState.DISPATCHED or entry.pending != 0:
            return
        inst = entry.inst
        if not (entry.serializing or inst.op is Op.HALT):
            return

        op = inst.op
        if op in (Op.MEMBAR, Op.ATOMIC, Op.CAS) and not self.drain_empty:
            return
        if self.sc_mode and op is Op.STORE and not self.drain_empty:
            return

        if op is Op.HALT or op is Op.MEMBAR or op is Op.TRAP:
            entry.state = DynState.ISSUED
            self._schedule(entry, now + 1, now)
        elif op is Op.MMUOP:
            entry.state = DynState.ISSUED
            self._schedule(entry, now + self.core_cfg.mmuop_latency, now)
        elif op is Op.STORE:  # SC-mode serializing store
            self._issue_store(entry, now)
        elif op in (Op.ATOMIC, Op.CAS):
            self._issue_atomic(entry, now)

    def _issue_atomic(self, entry: DynInstr, now: int) -> None:
        inst = entry.inst
        entry.addr = effective_address(entry.val1 or 0, inst.imm)
        if not entry.injected and not self.port.dtlb_hit(entry.addr):
            self.dtlb_misses += 1
            if self.sw_tlb:
                self._take_dtlb_trap(entry, now)
                return
            self.port.dtlb_fill(entry.addr)
        if self.pair_sync_atomics:
            # Reunion: atomics are synchronizing requests, performed once
            # by the shared cache controller when both cores arrive.
            entry.state = DynState.ISSUED
            self.sync_request = entry
            return
        access = self.port.rmw_read(entry.addr, now)
        if access.retry:
            return
        rd_value, new_value = atomic_result(inst.op, access.value, entry.val2 or 0, inst.imm)
        entry.result = rd_value
        if new_value is not None:
            self.port.rmw_write(entry.addr, new_value)
        entry.state = DynState.ISSUED
        self._schedule(entry, access.done, now)

    def complete_sync(self, entry: DynInstr, value: int, done: int) -> None:
        """Pair controller delivers a synchronizing-request reply.

        For atomics the controller has already applied the memory update;
        ``value`` is the single coherent value returned to both cores.
        """
        self._skip_until = 0
        if entry.squashed:
            self.sync_request = None
            return
        entry.result = value
        self.sync_request = None
        if self._soa:
            # `entry` is a FlatView: re-pack its ref and use the flat
            # scheduler so the completion heap stays homogeneous.
            self._flat_sched((entry._q << self._f_sbits) | entry._s, done)
        else:
            self._schedule(entry, done)

    def _oldest_active_serializing(self) -> int | None:
        """Smallest seq of an unretired serializing instruction, if any."""
        heap = self._ser_heap
        while heap:
            seq, entry = heap[0]
            if entry.squashed or entry.state == DynState.RETIRED:
                heapq.heappop(heap)
                continue
            return seq
        return None

    def _schedule(self, entry: DynInstr, cycle: int, now: int | None = None) -> None:
        if self.tracer is not None:
            self.tracer.issue(entry, cycle if now is None else now)
        heapq.heappush(self.completions, (cycle, entry.seq, entry))

    # -- TLB traps -------------------------------------------------------------
    def _take_dtlb_trap(self, entry: DynInstr, now: int) -> None:
        """Software TLB miss on a data access: flush and run the handler."""
        page = entry.addr >> self.config.tlb.page_bits
        self._squash_from(entry)
        self._inject_handler(page=page, fill_addr=entry.addr, resume_pc=entry.pc)

    def _inject_handler(self, page: int, fill_addr: int | None, resume_pc: int) -> None:
        """Queue the software fast-miss handler for injection at fetch."""
        self.fetch_queue.clear()
        self.injection.clear()
        sequence = handler_sequence(page)
        for index, inst in enumerate(sequence):
            is_last = index == len(sequence) - 1
            self.injection.append((inst, fill_addr if is_last else None))
        self._injection_resume = resume_pc
        self.fetch_stalled = False

    # -- dispatch ----------------------------------------------------------------
    def _do_dispatch(self, now: int) -> None:
        width = self.core_cfg.width
        rob_size = self.core_cfg.rob_size
        sb_size = self.core_cfg.store_buffer_size
        dispatched = 0
        while dispatched < width and self.fetch_queue:
            fetched = self.fetch_queue[0]
            if fetched[0] > now or len(self.rob) >= rob_size:
                break
            inst = fetched[2]
            if inst.op is Op.STORE and self.sb_count >= sb_size:
                break
            if self.single_step and self.rob:
                break  # one instruction at a time during re-execution
            self.fetch_queue.popleft()
            self._dispatch_one(fetched, now)
            dispatched += 1

    def _dispatch_one(self, fetched: tuple, now: int) -> None:
        inst = fetched[2]
        entry = DynInstr(self._next_seq, fetched[1], inst, injected=fetched[3])
        self._next_seq += 1
        entry.predicted_next = fetched[4]
        entry.fill_addr = fetched[5]
        entry.serializing = inst.is_serializing or (self.sc_mode and inst.op is Op.STORE)

        # Capture operands / subscribe to producers.
        op = inst.op
        if op is not Op.MOVI:
            needs1 = inst.rs1 != 0 and (
                inst.is_alu or inst.is_mem or inst.is_branch
            )
            needs2 = inst.rs2 != 0 and (
                (inst.is_alu and not inst.imm_form)
                or inst.is_branch
                or op is Op.STORE
                or op is Op.ATOMIC
                or op is Op.CAS
            )
            if needs1:
                self._capture(entry, 1, inst.rs1)
            else:
                entry.val1 = 0 if inst.rs1 == 0 else None
                if entry.val1 is None:
                    entry.val1 = self.arf.read(inst.rs1)
            if needs2:
                self._capture(entry, 2, inst.rs2)
            else:
                entry.val2 = 0

        if inst.writes_reg:
            entry.prev_producer = self.rename.get(inst.rd)
            self.rename[inst.rd] = entry

        if op is Op.STORE:
            self.sb_count += 1
            self._store_entries.append(entry)
        if entry.serializing or op is Op.HALT:
            heapq.heappush(self._ser_heap, (entry.seq, entry))

        # Non-branch control flow resolves immediately; branches carry the
        # prediction and verify at completion.
        if not inst.is_control or op is Op.HALT:
            entry.actual_next = entry.pc + 1
        elif op is Op.JUMP:
            entry.actual_next = inst.target

        self.rob.append(entry)
        self._unchecked.append(entry)
        if self.tracer is not None:
            self.tracer.dispatch(entry, now)
        if entry.pending == 0:
            self.ready.append(entry)

    def _capture(self, entry: DynInstr, slot: int, reg: int) -> None:
        producer = self.rename.get(reg)
        if producer is not None and not producer.squashed:
            producer.consumed = True
        if producer is None or producer.squashed:
            value = self.arf.read(reg)
            if slot == 1:
                entry.val1 = value
            else:
                entry.val2 = value
        elif producer.result is not None:
            if slot == 1:
                entry.val1 = producer.result
            else:
                entry.val2 = producer.result
        else:
            entry.pending += 1
            producer.dependents.append((entry, slot))

    # -- fetch ---------------------------------------------------------------------
    def _do_fetch(self, now: int) -> None:
        if self.halted or now < self.stall_fetch_until:
            return
        width = self.core_cfg.width
        cap = self.core_cfg.fetch_queue_size
        fetched = 0
        ready = now + self.core_cfg.frontend_latency
        while fetched < width and len(self.fetch_queue) < cap and not self.fetch_stalled:
            if self.injection:
                inst, fill_addr = self.injection.popleft()
                if self.mirror_watch:
                    # Injected handlers perform loads; end the window.
                    self.mirror_trigger = True
                self.fetch_queue.append(
                    (ready, self._injection_resume or 0, inst, True, None, fill_addr, -1)
                )
                if not self.injection and self._injection_resume is not None:
                    self.pc = self._injection_resume
                    self._injection_resume = None
                fetched += 1
                continue
            inst = self.program.fetch(self.pc)
            if self.mirror_watch and (
                inst.is_mem or inst.is_serializing or inst.op is Op.HALT
            ):
                # The first memory / serializing / halt instruction ends
                # the mirror window.  Fetch leads dispatch by a cycle and
                # issue by two, so the pair controller (which runs after
                # this core's step) materializes the mute strictly before
                # this instruction can touch shared state.
                self.mirror_trigger = True
            predicted_next = None
            pc = self.pc
            if inst.is_branch:
                taken = self.predictor.predict(pc)
                predicted_next = inst.target if taken else pc + 1
                self.pc = predicted_next
            elif inst.op is Op.JUMP:
                self.pc = inst.target
            elif inst.op is Op.HALT:
                self.fetch_stalled = True
            else:
                self.pc = pc + 1
            self.fetch_queue.append((ready, pc, inst, False, predicted_next, None, -1))
            fetched += 1
            if self.single_step:
                break

    # -- squash / recovery -------------------------------------------------------------
    def _squash_after(self, entry: DynInstr) -> None:
        """Squash everything younger than ``entry`` (branch/trap redirect)."""
        self._squash_to(entry.seq + 1)

    def _squash_from(self, entry: DynInstr) -> None:
        """Squash ``entry`` and everything younger (TLB trap)."""
        self._squash_to(entry.seq)

    def _squash_to(self, first_bad_seq: int) -> None:
        rob = self.rob
        log = self.replay_log
        truncate = -1
        while rob and rob[-1].seq >= first_bad_seq:
            victim = rob.pop()
            victim.squashed = True
            if log is not None and victim.replay_index is not None:
                # Vocal: un-log squashed speculative records; they are
                # re-logged (with identical content) after re-execution.
                truncate = victim.replay_index  # popped youngest-first

            if self.tracer is not None:
                self.tracer.squash(victim)
            if victim.state == DynState.IN_CHECK:
                self._check_pending -= 1
            else:
                unchecked = self._unchecked
                if unchecked and unchecked[-1] is victim:
                    unchecked.pop()
            inst = victim.inst
            if inst.op is Op.STORE and victim.state != DynState.RETIRED:
                self.sb_count -= 1
            if inst.writes_reg and self.rename.get(inst.rd) is victim:
                previous = victim.prev_producer
                if previous is not None and not previous.squashed and previous.state != DynState.RETIRED:
                    self.rename[inst.rd] = previous
                else:
                    del self.rename[inst.rd]
        if truncate >= 0:
            log.truncate_to(truncate)
        self._store_entries = deque(s for s in self._store_entries if not s.squashed)
        if self.sync_request is not None and self.sync_request.squashed:
            self.sync_request = None
        self.ready = [e for e in self.ready if not e.squashed]
        self.fetch_queue.clear()
        self.injection.clear()
        self._injection_resume = None
        self.fetch_stalled = False

    def _redirect_fetch(self, new_pc: int) -> None:
        self.pc = new_pc
        self.fetch_stalled = False

    def hard_reset(self, program: Program, now: int) -> None:
        """Reset all architectural and microarchitectural state for a new
        program — used when a core is repurposed (dual-use switching)."""
        if self.rob:
            if self._soa:
                self._flat_squash_to(self.f_seq[self.rob[0]])
            else:
                self._squash_to(self.rob[0].seq)
        self.gate.flush()
        # flush() deliberately preserves the cumulative offer count
        # (recovery re-offers must keep counting); a repurposed core
        # starts a fresh stream, so zero it here.
        self.gate.users_offered = 0
        self.completions.clear()
        self.rename.clear()
        self.ready.clear()
        self._store_entries.clear()
        self._ser_heap.clear()
        self.drain.clear()
        self._drain_inflight = None
        self.sb_count = 0
        self._check_pending = 0
        self._unchecked.clear()
        self.sync_request = None
        self.single_step = False
        self._interrupts.clear()
        self.replay_log = None
        self.program = program
        if self._soa:
            self._bind_decode()
        self.arf = RegisterFile()
        for index, value in program.initial_regs.items():
            self.arf.write(index, value)
        self.pc = program.entry
        self.halted = False
        self.fetch_stalled = False
        self.stall_fetch_until = max(self.stall_fetch_until, now + 1)

    # -- recovery support (called by the pair controller) ----------------------------
    def drain_cleared(self, now: int) -> None:
        """Retire every instruction the gate has already cleared.

        Used at the start of recovery so both cores' architectural state
        reflects the full compared prefix before rollback.
        """
        self._skip_until = 0
        if self._soa:
            f_seq = self.f_seq
            smask = self._f_smask
            sbits = self._f_sbits
            while True:
                cleared = self.gate.pop_retirable_f(self, now, 1 << 30)
                if not cleared:
                    return
                for packed in cleared:
                    if f_seq[packed & smask] == packed >> sbits:
                        self._flat_retire_one(packed & smask, now)
            return
        while True:
            cleared = self.gate.pop_retirable(now, 1 << 30)
            if not cleared:
                return
            for entry in cleared:
                if not entry.squashed:
                    self._retire(entry, now)

    def next_retire_pc(self) -> int:
        """PC of the oldest unretired instruction (rollback target)."""
        if self.rob:
            head = self.rob[0]
            return self.f_pc[head] if self._soa else head.pc
        if self.fetch_queue:
            return self.fetch_queue[0][1]  # pc
        return self.pc

    def flush_for_recovery(self, resume_pc: int, now: int, penalty: int) -> None:
        """Precise-exception rollback to the last safe state.

        Discards every unretired instruction and all check state; the ARF
        and non-speculative store buffer (drain queue) are untouched —
        they *are* the safe state.
        """
        if self._soa:
            self._flat_squash_to(self.f_seq[self.rob[0]] if self.rob else 0)
        elif self.rob:
            self._squash_to(self.rob[0].seq)
        else:
            self._squash_to(0)
        self.gate.flush()
        self.completions.clear()
        self._check_pending = 0
        self._unchecked.clear()
        self.pc = resume_pc
        self.fetch_stalled = False
        self.halted = False
        self.stall_fetch_until = max(self.stall_fetch_until, now + penalty)
        self.sync_request = None
