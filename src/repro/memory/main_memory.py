"""Flat main memory, lazily materialized by line."""

from __future__ import annotations

from repro.isa.registers import WORD_MASK


class MainMemory:
    """Word-addressable backing store, organized as cache lines.

    Lines are materialized on first touch from an initial word image
    (the merged memory images of every core's program); untouched words
    read as zero, like freshly mapped pages.
    """

    __slots__ = ("words_per_line", "latency", "_lines", "_image")

    def __init__(self, latency: int = 240, line_bytes: int = 64) -> None:
        self.latency = latency
        self.words_per_line = line_bytes // 8
        self._lines: dict[int, list[int]] = {}
        self._image: dict[int, int] = {}

    def load_image(self, image: dict[int, int]) -> None:
        """Install initial word values (byte address -> value)."""
        for addr, value in image.items():
            if addr % 8:
                raise ValueError(f"image address {addr:#x} not word aligned")
            self._image[addr] = value & WORD_MASK
        self._lines.clear()

    def _materialize(self, line_addr: int) -> list[int]:
        base = line_addr * self.words_per_line * 8
        data = [self._image.get(base + 8 * i, 0) for i in range(self.words_per_line)]
        self._lines[line_addr] = data
        return data

    def read_line(self, line_addr: int) -> list[int]:
        """Return a copy of a line's words."""
        data = self._lines.get(line_addr)
        if data is None:
            data = self._materialize(line_addr)
        return list(data)

    def write_line(self, line_addr: int, data: list[int]) -> None:
        if len(data) != self.words_per_line:
            raise ValueError("line data has wrong length")
        self._lines[line_addr] = [v & WORD_MASK for v in data]

    def read_word(self, addr: int) -> int:
        line_addr, offset = divmod(addr // 8, self.words_per_line)
        data = self._lines.get(line_addr)
        if data is None:
            data = self._materialize(line_addr)
        return data[offset]

    def write_word(self, addr: int, value: int) -> None:
        line_addr, offset = divmod(addr // 8, self.words_per_line)
        data = self._lines.get(line_addr)
        if data is None:
            data = self._materialize(line_addr)
        data[offset] = value & WORD_MASK
