"""Per-core memory port: private L1 data cache + TLBs + MSHRs.

The port is the pipeline's window onto the memory system.  A vocal port
speaks the ordinary coherence protocol through the shared controller; a
mute port issues phantom reads, keeps its fills invisible to the
directory, and lets its evictions be dropped — the Reunion relaxed input
replication of Definition 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, LineState
from repro.memory.l2_controller import SharedL2Controller
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLBPair
from repro.sim.config import L1Config, PhantomStrength, TLBConfig
from repro.sim.stats import Stats


@dataclass(slots=True)
class Access:
    """Outcome of a load or store drain.

    ``retry`` means no MSHR was free: the requester must try again later
    (the port does not queue).  ``value`` is meaningful for loads only.
    """

    value: int = 0
    done: int = 0
    retry: bool = False
    miss: bool = False


class CoreMemPort:
    """One core's L1 D-cache, TLBs and MSHRs, wired to the shared L2."""

    def __init__(
        self,
        core_id: int,
        l1_config: L1Config,
        tlb_config: TLBConfig,
        controller: SharedL2Controller,
        stats: Stats,
        is_mute: bool = False,
        phantom: PhantomStrength = PhantomStrength.GLOBAL,
    ) -> None:
        self.core_id = core_id
        self.config = l1_config
        self.controller = controller
        self.stats = stats
        self.is_mute = is_mute
        self.phantom = phantom
        self.l1 = Cache(
            l1_config.size_bytes,
            l1_config.assoc,
            l1_config.line_bytes,
            name=f"L1d{core_id}",
        )
        self.mshrs = MSHRFile(l1_config.mshrs)
        self.tlbs = TLBPair(tlb_config)
        self._line_shift = l1_config.line_bytes.bit_length() - 1
        self._word_mask = l1_config.line_bytes // 8 - 1
        controller.register_l1(core_id, self.l1, is_mute)
        self._prefix = f"core{core_id}."
        # Stat keys interned once: load/store are hot enough that the
        # per-access string concat shows up in profiles.
        self._k_load_hits = self._prefix + "l1_load_hits"
        self._k_load_misses = self._prefix + "l1_load_misses"
        self._k_store_hits = self._prefix + "l1_store_hits"
        self._k_store_misses = self._prefix + "l1_store_misses"
        self._k_store_upgrades = self._prefix + "l1_store_upgrades"
        self._k_mshr_stalls = self._prefix + "mshr_stalls"

    # -- TLB ----------------------------------------------------------------
    def dtlb_hit(self, addr: int) -> bool:
        return self.tlbs.dtlb.lookup(addr)

    def dtlb_fill(self, addr: int) -> None:
        self.tlbs.dtlb.fill(addr)

    # -- loads ----------------------------------------------------------------
    def load(self, addr: int, now: int) -> Access:
        """Read a word; misses go to the L2 (coherent or phantom)."""
        line_addr = addr >> self._line_shift
        offset = (addr >> 3) & self._word_mask
        line = self.l1.access(line_addr)
        if line is not None:
            self.stats.inc(self._k_load_hits)
            return Access(value=line.data[offset], done=now + self.config.load_to_use)

        if not self.mshrs.available(now):
            self.stats.inc(self._k_mshr_stalls)
            return Access(retry=True)

        self.stats.inc(self._k_load_misses)
        if self.is_mute:
            reply = self.controller.phantom_read(self.core_id, line_addr, now, self.phantom)
            self._install_mute(line_addr, reply.data)
        else:
            reply = self.controller.vocal_read(self.core_id, line_addr, now)
        self.mshrs.allocate(now, reply.done)
        return Access(value=reply.data[offset], done=reply.done, miss=True)

    def load_f(self, addr: int, now: int) -> tuple[int, int] | None:
        """Hot-loop twin of :meth:`load`: ``(value, done)``, or ``None``
        when no MSHR is free (the caller retries).  Identical stats and
        timing; skips the :class:`Access` allocation the flat pipeline
        would immediately tear apart."""
        line_addr = addr >> self._line_shift
        line = self.l1.access(line_addr)
        if line is not None:
            self.stats.inc(self._k_load_hits)
            return line.data[(addr >> 3) & self._word_mask], now + self.config.load_to_use
        if not self.mshrs.available(now):
            self.stats.inc(self._k_mshr_stalls)
            return None
        self.stats.inc(self._k_load_misses)
        if self.is_mute:
            reply = self.controller.phantom_read(self.core_id, line_addr, now, self.phantom)
            self._install_mute(line_addr, reply.data)
        else:
            reply = self.controller.vocal_read(self.core_id, line_addr, now)
        self.mshrs.allocate(now, reply.done)
        return reply.data[(addr >> 3) & self._word_mask], reply.done

    # -- stores (non-speculative drain) -----------------------------------------
    def store(self, addr: int, value: int, now: int) -> Access:
        """Drain one checked store into the cache hierarchy."""
        line_addr = addr >> self._line_shift
        line = self.l1.access(line_addr)

        if line is not None and (
            line.state in (LineState.MODIFIED, LineState.EXCLUSIVE) or self.is_mute
        ):
            # Mute hierarchies have blanket write permission (phantom
            # replies grant it); vocal needs E/M for a silent write.
            self.l1.write_word(addr, value)
            self.stats.inc(self._k_store_hits)
            return Access(done=now + 1)

        if not self.mshrs.available(now):
            self.stats.inc(self._k_mshr_stalls)
            return Access(retry=True)

        if self.is_mute:
            self.stats.inc(self._k_store_misses)
            reply = self.controller.phantom_read(self.core_id, line_addr, now, self.phantom)
            self._install_mute(line_addr, reply.data)
        else:
            if line is not None:
                self.stats.inc(self._k_store_upgrades)
            else:
                self.stats.inc(self._k_store_misses)
            reply = self.controller.vocal_write(self.core_id, line_addr, now)
        self.mshrs.allocate(now, reply.done)
        self.l1.write_word(addr, value)
        return Access(done=reply.done, miss=True)

    def store_f(self, addr: int, value: int, now: int) -> int | None:
        """Hot-loop twin of :meth:`store`: the drain's done cycle, or
        ``None`` when no MSHR is free.  Same stats and timing."""
        line_addr = addr >> self._line_shift
        line = self.l1.access(line_addr)
        if line is not None and (
            line.state in (LineState.MODIFIED, LineState.EXCLUSIVE) or self.is_mute
        ):
            self.l1.write_word(addr, value)
            self.stats.inc(self._k_store_hits)
            return now + 1
        if not self.mshrs.available(now):
            self.stats.inc(self._k_mshr_stalls)
            return None
        if self.is_mute:
            self.stats.inc(self._k_store_misses)
            reply = self.controller.phantom_read(self.core_id, line_addr, now, self.phantom)
            self._install_mute(line_addr, reply.data)
        else:
            if line is not None:
                self.stats.inc(self._k_store_upgrades)
            else:
                self.stats.inc(self._k_store_misses)
            reply = self.controller.vocal_write(self.core_id, line_addr, now)
        self.mshrs.allocate(now, reply.done)
        self.l1.write_word(addr, value)
        return reply.done

    # -- atomics (coherent read-modify-write, non-Reunion path) --------------------
    def rmw_read(self, addr: int, now: int) -> Access:
        """Acquire the line with write permission and return the old word.

        Used by non-redundant and strict modes; Reunion atomics instead go
        through the pair's synchronizing request.
        """
        line_addr = addr >> self._line_shift
        offset = (addr >> 3) & self._word_mask
        line = self.l1.access(line_addr)
        if line is not None and (
            line.state in (LineState.MODIFIED, LineState.EXCLUSIVE) or self.is_mute
        ):
            return Access(value=line.data[offset], done=now + self.config.load_to_use)
        if not self.mshrs.available(now):
            self.stats.inc(self._k_mshr_stalls)
            return Access(retry=True)
        if self.is_mute:
            reply = self.controller.phantom_read(self.core_id, line_addr, now, self.phantom)
            self._install_mute(line_addr, reply.data)
        else:
            reply = self.controller.vocal_write(self.core_id, line_addr, now)
        self.mshrs.allocate(now, reply.done)
        return Access(value=reply.data[offset], done=reply.done, miss=True)

    def rmw_write(self, addr: int, value: int) -> None:
        """Complete an RMW: the line is resident with write permission."""
        self.l1.write_word(addr, value)

    # -- helpers ---------------------------------------------------------------
    def _install_mute(self, line_addr: int, data: list[int]) -> None:
        """Fill a phantom reply into the mute L1 with write permission."""
        evicted = self.l1.fill(line_addr, data, LineState.EXCLUSIVE)
        if evicted is not None:
            self.controller.mute_evict(self.core_id, evicted.line_addr)
