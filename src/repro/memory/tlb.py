"""Translation lookaside buffers.

The reproduction uses identity address mapping — translation never changes
an address — but TLB *timing* is modelled faithfully because Section 5.5
of the paper shows that TLB misses are a dominant source of serializing
instructions in commercial workloads:

* a **hardware-managed** TLB pays a fixed fill latency on a miss;
* a **software-managed** TLB (UltraSPARC III) vectors to a fast-miss
  handler whose instruction sequence — two traps and three non-idempotent
  MMU operations around the TSB loads — is *injected into the pipeline*,
  where each serializing instruction stalls retirement for a full
  comparison latency under redundant execution (Figure 7(b)).
"""

from __future__ import annotations

from repro.sim.config import TLBConfig, TLBMode


class TLB:
    """A set-associative, LRU TLB over virtual page numbers."""

    __slots__ = ("entries", "assoc", "page_bits", "n_sets", "_sets", "_stamp", "_counter")

    def __init__(self, entries: int, assoc: int, page_bits: int) -> None:
        if entries % assoc:
            raise ValueError("TLB entries must be a multiple of associativity")
        self.entries = entries
        self.assoc = assoc
        self.page_bits = page_bits
        self.n_sets = entries // assoc
        self._sets: list[dict[int, bool]] = [{} for _ in range(self.n_sets)]
        self._stamp: dict[int, int] = {}
        self._counter = 0

    def page_of(self, addr: int) -> int:
        return addr >> self.page_bits

    def _set_of(self, page: int) -> int:
        # Hashed set index: fold high page bits in so widely separated,
        # identically aligned regions do not all collide in one set (as
        # real TLBs do with hashed or near-fully-associative indexing).
        return (page ^ (page >> 7) ^ (page >> 13)) % self.n_sets

    def lookup(self, addr: int) -> bool:
        """True on hit (updates LRU); False on miss (no fill)."""
        page = self.page_of(addr)
        cache_set = self._sets[self._set_of(page)]
        if page in cache_set:
            self._counter += 1
            self._stamp[page] = self._counter
            return True
        return False

    def fill(self, addr: int) -> None:
        """Install the translation for ``addr``'s page, evicting LRU."""
        page = self.page_of(addr)
        cache_set = self._sets[self._set_of(page)]
        if page not in cache_set and len(cache_set) >= self.assoc:
            victim = min(cache_set, key=lambda p: self._stamp.get(p, 0))
            del cache_set[victim]
            self._stamp.pop(victim, None)
        cache_set[page] = True
        self._counter += 1
        self._stamp[page] = self._counter

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self._stamp.clear()


class TLBPair:
    """A core's ITLB + DTLB, built from a :class:`TLBConfig`."""

    __slots__ = ("config", "itlb", "dtlb")

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self.itlb = TLB(config.itlb_entries, config.assoc, config.page_bits)
        self.dtlb = TLB(config.dtlb_entries, config.assoc, config.page_bits)

    @property
    def software_managed(self) -> bool:
        return self.config.mode is TLBMode.SOFTWARE
