"""A snoopy-bus implementation of the Reunion memory interface.

Section 4.1 of the paper: "The Reunion execution model can also be
implemented at a snoopy cache interface for microarchitectures with
private caches, such as Montecito."  This module is that design point:
no shared cache and no directory — private caches keep each other
coherent by snooping a shared bus, and the Reunion semantics map onto
bus transactions:

* vocal reads/writes snoop every *vocal* cache (cache-to-cache transfer
  from a modified owner, invalidations on writes);
* mute caches never assert snoop responses and their write-backs never
  reach the bus (the vocal/mute semantics of Definition 2);
* phantom requests become non-coherent bus reads: ``SHARED`` strength
  snoops the peer caches only, ``GLOBAL`` falls through to memory,
  ``NULL`` never touches the bus;
* the synchronizing request is a bus-locked transaction that flushes
  the pair's copies and delivers one coherent value to both.

The class is call-compatible with
:class:`repro.memory.l2_controller.SharedL2Controller`, so ports, cores,
pairs and the CMP builder work unchanged on either organization.
"""

from __future__ import annotations

from repro.isa.registers import WORD_MASK
from repro.memory.cache import Cache, LineState
from repro.memory.coherence import GETM, GETS, MSIState, transition
from repro.memory.l2_controller import Reply, _GARBAGE_MULT, _GARBAGE_XOR
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHRFile
from repro.pipeline.gates import NEVER
from repro.sim.config import BusConfig, PhantomStrength
from repro.sim.stats import Stats


class SnoopyBus:
    """A split-transaction snoopy bus connecting private write-back caches."""

    def __init__(self, config: BusConfig, memory: MainMemory, stats: Stats) -> None:
        self.config = config
        self.memory = memory
        self.stats = stats
        self.mshrs = MSHRFile(config.mshrs)
        self._bus_free = 0
        self._l1s: dict[int, tuple[Cache, bool]] = {}
        self._words_per_line = 8
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem.
        self.obs = None

    # -- registration -------------------------------------------------------
    def register_l1(self, core_id: int, l1: Cache, is_mute: bool) -> None:
        if core_id in self._l1s:
            raise ValueError(f"core {core_id} already registered")
        self._l1s[core_id] = (l1, is_mute)
        self._words_per_line = l1.words_per_line

    def set_role(self, core_id: int, is_mute: bool) -> None:
        l1, _ = self._l1s[core_id]
        self._l1s[core_id] = (l1, is_mute)

    # -- event horizon (cycle-skipping kernel) ---------------------------------
    def next_event(self, now: int) -> int:
        """No autonomous events: bus state only changes inside requests."""
        return NEVER

    # -- bus arbitration -------------------------------------------------------
    def _arbitrate(self, now: int) -> int:
        start = max(now, self._bus_free)
        self._bus_free = start + self.config.bus_occupancy
        return start

    def _vocal_peers(self, requester: int):
        for core_id, (l1, is_mute) in self._l1s.items():
            if core_id != requester and not is_mute:
                yield core_id, l1

    def _probe_state(self, requester: int, line_addr: int) -> int:
        """Global :class:`MSIState` over the peer vocal caches.

        What the address-phase snoop responses encode on a real bus: a
        peer holding the line E/M is the owner (E counts as MODIFIED —
        see :class:`~repro.memory.coherence.MSIState`), any other copy
        means SHARED.  The resulting state indexes the protocol table
        shared with the directory backend.
        """
        state = MSIState.INVALID
        for _core_id, l1 in self._vocal_peers(requester):
            line = l1.lookup(line_addr)
            if line is None:
                continue
            if line.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                return MSIState.MODIFIED
            state = MSIState.SHARED
        return state

    def _snoop(self, requester: int, line_addr: int, invalidate: bool) -> list[int] | None:
        """Snoop peer vocal caches; returns the freshest data if any hit.

        A modified owner supplies data cache-to-cache (and writes back to
        memory, keeping memory clean — Illinois-style).  With
        ``invalidate`` every peer copy is purged.
        """
        data: list[int] | None = None
        for _core_id, l1 in self._vocal_peers(requester):
            if invalidate:
                line = l1.invalidate(line_addr)
                if line is not None:
                    if line.dirty:
                        self.memory.write_line(line_addr, line.data)
                        data = list(line.data)
                    elif data is None:
                        data = list(line.data)
            else:
                line = l1.lookup(line_addr)
                if line is None:
                    continue
                if line.dirty:
                    self.memory.write_line(line_addr, line.data)
                    data = list(line.data)
                    line.state = LineState.SHARED
                else:
                    line.state = LineState.SHARED
                    if data is None:
                        data = list(line.data)
        return data

    def _memory_fetch(self, line_addr: int, start: int) -> tuple[list[int], int]:
        if not self.mshrs.available(start):
            release = self.mshrs.next_release()
            if release is not None:
                start = max(start, release)
        done = start + self.memory.latency
        self.mshrs.allocate(start, done)
        self.stats.inc("bus.memory_reads")
        return self.memory.read_line(line_addr), done

    # -- vocal transactions -------------------------------------------------------
    def vocal_read(self, core_id: int, line_addr: int, now: int) -> Reply:
        """BusRd (GetS): the snoop responses decide owner/sharer supply."""
        self.stats.inc("bus.reads")
        start = self._arbitrate(now)
        tr = transition(self._probe_state(core_id, line_addr), GETS)
        if tr.fetch_owner or tr.forward_sharer:
            # A peer copy exists: cache-to-cache transfer (a dirty owner
            # writes back on the way — tr.writeback — inside _snoop).
            data = self._snoop(core_id, line_addr, invalidate=False)
            done = start + self.config.transfer_latency
        else:
            data, done = self._memory_fetch(line_addr, start)
            done += self.config.snoop_latency
        self._install(core_id, line_addr, data, tr.grant)
        return Reply(data, done)

    def vocal_write(self, core_id: int, line_addr: int, now: int) -> Reply:
        """BusRdX (GetM): invalidate peers, take the freshest copy, grant M."""
        self.stats.inc("bus.writes")
        start = self._arbitrate(now)
        tr = transition(self._probe_state(core_id, line_addr), GETM)
        snooped = None
        if tr.fetch_owner or tr.invalidate_sharers:
            snooped = self._snoop(core_id, line_addr, invalidate=True)
        l1, _ = self._l1s[core_id]
        resident = l1.lookup(line_addr)
        if resident is not None:
            resident.state = tr.grant
            l1.touch(line_addr)
            return Reply(list(resident.data), start + self.config.snoop_latency)
        if snooped is not None:
            data = snooped
            done = start + self.config.transfer_latency
        else:
            data, done = self._memory_fetch(line_addr, start)
            done += self.config.snoop_latency
        self._install(core_id, line_addr, data, tr.grant)
        return Reply(data, done)

    def vocal_evict(self, core_id: int, line_addr: int, data: list[int] | None, dirty: bool) -> None:
        """Write-back on eviction; clean victims vanish silently."""
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "cache.evict",
                None,
                "bus",
                core=core_id,
                line_addr=line_addr,
                dirty=dirty,
            )
        if dirty and data is not None:
            self.memory.write_line(line_addr, data)
            self.stats.inc("bus.writebacks")

    # -- mute transactions ---------------------------------------------------------
    def phantom_read(
        self, core_id: int, line_addr: int, now: int, strength: PhantomStrength
    ) -> Reply:
        """Non-coherent read: snoops without asserting any bus state."""
        obs = self.obs
        if strength is PhantomStrength.NULL:
            self.stats.inc("bus.phantom_null")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "garbage")
            return Reply(self._garbage(line_addr), now + 1)
        start = self._arbitrate(now)
        # Peek peer vocal caches without changing their state.
        for _core_id, l1 in self._vocal_peers(core_id):
            line = l1.lookup(line_addr)
            if line is not None:
                self.stats.inc("bus.phantom_snooped")
                if obs is not None:
                    self._emit_phantom(obs, core_id, line_addr, now, strength, "peer_l1")
                return Reply(list(line.data), start + self.config.transfer_latency)
        if strength is PhantomStrength.SHARED:
            self.stats.inc("bus.phantom_garbage")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "garbage")
            return Reply(self._garbage(line_addr), start + self.config.snoop_latency)
        self.stats.inc("bus.phantom_memory")
        data, done = self._memory_fetch(line_addr, start)
        if obs is not None:
            self._emit_phantom(obs, core_id, line_addr, now, strength, "memory")
        return Reply(data, done + self.config.snoop_latency)

    @staticmethod
    def _emit_phantom(obs, core_id, line_addr, now, strength, origin) -> None:
        obs.emit(
            "phantom.read",
            now,
            "bus",
            core=core_id,
            line_addr=line_addr,
            strength=strength.value,
            origin=origin,
        )

    def mute_evict(self, core_id: int, line_addr: int) -> None:
        self.stats.inc("bus.mute_evicts_dropped")
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "cache.writeback_drop", None, "bus", core=core_id, line_addr=line_addr
            )

    # -- synchronizing requests -------------------------------------------------------
    def synchronizing_access(
        self, vocal_id: int, mute_id: int, line_addr: int, now: int
    ) -> Reply:
        """Bus-locked coherent access delivered to both cores of a pair."""
        self.stats.inc("bus.sync_requests")
        start = self._arbitrate(now)
        vocal_l1, _ = self._l1s[vocal_id]
        flushed = vocal_l1.invalidate(line_addr)
        if flushed is not None and flushed.dirty:
            self.memory.write_line(line_addr, flushed.data)
        mute_l1, _ = self._l1s[mute_id]
        mute_l1.invalidate(line_addr)
        snooped = self._snoop(vocal_id, line_addr, invalidate=True)
        if snooped is not None:
            data = snooped
            done = start + self.config.transfer_latency
        elif flushed is not None:
            data = list(flushed.data)
            done = start + self.config.snoop_latency
        else:
            data, done = self._memory_fetch(line_addr, start)
            done += self.config.snoop_latency
        self._install(vocal_id, line_addr, data, LineState.MODIFIED)
        self._install(mute_id, line_addr, data, LineState.MODIFIED)
        return Reply(data, done)

    def install_image(self, image: dict[int, int]) -> None:
        """Coherently install a memory image (dual-use reconfiguration)."""
        words_per_line = self._words_per_line
        for line_addr in {addr // (8 * words_per_line) for addr in image}:
            for core_id, (l1, is_mute) in self._l1s.items():
                line = l1.invalidate(line_addr)
                if line is not None and not is_mute and line.dirty:
                    self.memory.write_line(line_addr, line.data)
        for addr, value in image.items():
            self.memory.write_word(addr, value)

    # -- helpers ----------------------------------------------------------------------
    def _install(self, core_id: int, line_addr: int, data: list[int], state: int) -> None:
        l1, is_mute = self._l1s[core_id]
        evicted = l1.fill(line_addr, data, state)
        if evicted is None:
            return
        if is_mute:
            self.mute_evict(core_id, evicted.line_addr)
        else:
            self.vocal_evict(core_id, evicted.line_addr, evicted.data, evicted.dirty)

    def _garbage(self, line_addr: int) -> list[int]:
        base = (line_addr * _GARBAGE_MULT) & WORD_MASK
        return [
            (base ^ (index * _GARBAGE_XOR)) & WORD_MASK
            for index in range(self._words_per_line)
        ]
