"""Miss status holding registers: bound outstanding misses per cache."""

from __future__ import annotations

import heapq


class MSHRFile:
    """Tracks outstanding misses as (release_cycle) entries.

    A miss occupies one MSHR from issue until its fill completes.  When
    every register is busy the requester must stall and retry — a real
    source of back-pressure on memory-level parallelism, which matters
    for the paper's scientific workloads (Section 5.2).
    """

    __slots__ = ("capacity", "_busy")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("need at least one MSHR")
        self.capacity = capacity
        self._busy: list[int] = []  # min-heap of release cycles

    def _drain(self, now: int) -> None:
        busy = self._busy
        while busy and busy[0] <= now:
            heapq.heappop(busy)

    def available(self, now: int) -> bool:
        self._drain(now)
        return len(self._busy) < self.capacity

    def allocate(self, now: int, release_cycle: int) -> None:
        """Occupy one MSHR until ``release_cycle``.

        Callers must have checked :meth:`available` this cycle.
        """
        self._drain(now)
        if len(self._busy) >= self.capacity:
            raise RuntimeError("MSHR overflow: allocate() without available()")
        heapq.heappush(self._busy, release_cycle)

    def next_release(self) -> int | None:
        """Earliest cycle at which an MSHR frees up, or None if all free."""
        return self._busy[0] if self._busy else None

    def outstanding(self, now: int) -> int:
        self._drain(now)
        return len(self._busy)

    def clear(self) -> None:
        self._busy.clear()
