"""Coherence state shared by every memory backend.

Three organizations implement the Reunion memory interface:

* the Piranha-style shared L2 with an inclusive directory at the shared
  controller (:mod:`repro.memory.l2_controller`, the paper's primary
  design);
* private caches kept coherent by snooping a shared bus
  (:mod:`repro.memory.snoopy`, the Montecito design point of
  Section 4.1);
* private caches kept coherent by per-bank home-node directories over a
  point-to-point interconnect (:mod:`repro.memory.directory`, the
  many-pair scaling backend).

All three enforce the *same* protocol.  This module holds the pieces
they share so the protocol is written down exactly once:

* :class:`MSIState` / :data:`MSI_TRANSITIONS` — the global MSI state of
  a line and the transition table for the three coherence requests
  (GetS, GetM, PutM).  The snoopy bus derives the global state by
  probing peer caches; the home-node directory reads it off its
  :class:`~repro.memory.directory.entry.DirectoryEntry`; both then apply
  the identical transition.
* :class:`DirectoryEntry` / :class:`Directory` — the sharers/owner
  bookkeeping used by the shared-cache controller.

Mute caches are deliberately invisible everywhere here — that is the
Reunion vocal/mute semantics of Definition 2: the coherence protocol
behaves as if mute cores were absent from the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import LineState


class MSIState:
    """Global MSI state of one line, over the *vocal* caches only.

    ``MODIFIED`` means exactly one vocal cache holds the line with write
    permission.  A clean-exclusive (MESI ``E``) grantee is tracked as
    MODIFIED too: stores hit silently on E lines (see
    :meth:`repro.memory.port.CoreMemPort.store`), so the protocol must
    treat the grantee as a potential writer from the moment of the
    grant.
    """

    INVALID = 0
    SHARED = 1
    MODIFIED = 2

    NAMES = {0: "I", 1: "S", 2: "M"}


#: The three coherence requests of the protocol (Culler/Sorin naming).
GETS = "GetS"  # read miss: wants at least S
GETM = "GetM"  # write miss / upgrade: wants M
PUTM = "PutM"  # dirty eviction: gives the line back


@dataclass(frozen=True)
class Transition:
    """One row of the MSI table: resulting state plus required actions.

    Action flags are *requirements on the backend*, phrased so both a
    snoopy bus and a home-node directory can honour them:

    * ``fetch_owner`` — the current owner supplies the data
      (cache-to-cache); ``writeback`` additionally folds a dirty copy
      back (to memory on the private-cache backends, into the L2 array
      on the shared-cache one) so the backing store stays clean.
    * ``forward_sharer`` — any clean sharer may supply the data
      cache-to-cache instead of the backing store.
    * ``invalidate_sharers`` — every other copy must be purged before
      the grant.
    * ``grant`` — the :class:`~repro.memory.cache.LineState` installed
      in the requester's L1.  A sole reader is granted clean-exclusive
      (MESI ``E``), which is why ``(INVALID, GetS)`` lands the *global*
      state in MODIFIED — see :class:`MSIState`.
    """

    next_state: int
    grant: int = LineState.INVALID
    fetch_owner: bool = False
    forward_sharer: bool = False
    invalidate_sharers: bool = False
    writeback: bool = False


#: (global MSI state, request) -> :class:`Transition`.  The single
#: protocol definition every backend consults.
MSI_TRANSITIONS: dict[tuple[int, str], Transition] = {
    (MSIState.INVALID, GETS): Transition(
        next_state=MSIState.MODIFIED, grant=LineState.EXCLUSIVE
    ),
    (MSIState.SHARED, GETS): Transition(
        next_state=MSIState.SHARED, grant=LineState.SHARED, forward_sharer=True
    ),
    (MSIState.MODIFIED, GETS): Transition(
        next_state=MSIState.SHARED,
        grant=LineState.SHARED,
        fetch_owner=True,
        writeback=True,
    ),
    (MSIState.INVALID, GETM): Transition(
        next_state=MSIState.MODIFIED, grant=LineState.MODIFIED
    ),
    (MSIState.SHARED, GETM): Transition(
        next_state=MSIState.MODIFIED,
        grant=LineState.MODIFIED,
        forward_sharer=True,
        invalidate_sharers=True,
    ),
    (MSIState.MODIFIED, GETM): Transition(
        next_state=MSIState.MODIFIED,
        grant=LineState.MODIFIED,
        fetch_owner=True,
        invalidate_sharers=True,
        writeback=True,
    ),
    (MSIState.MODIFIED, PUTM): Transition(
        next_state=MSIState.INVALID, writeback=True
    ),
}


def transition(state: int, request: str) -> Transition:
    """Look up the transition for ``request`` against global ``state``."""
    try:
        return MSI_TRANSITIONS[(state, request)]
    except KeyError:
        name = MSIState.NAMES.get(state, state)
        raise ValueError(f"no MSI transition for {request} in state {name}") from None


class DirectoryEntry:
    """Sharers and owner for one cache line, vocal cores only."""

    __slots__ = ("owner", "sharers")

    def __init__(self) -> None:
        self.owner: int | None = None  # core with E/M permission
        self.sharers: set[int] = set()

    def is_idle(self) -> bool:
        return self.owner is None and not self.sharers

    def msi_state(self) -> int:
        """The global :class:`MSIState` this entry encodes."""
        if self.owner is not None:
            return MSIState.MODIFIED
        if self.sharers:
            return MSIState.SHARED
        return MSIState.INVALID

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectoryEntry(owner={self.owner}, sharers={sorted(self.sharers)})"


class Directory:
    """Line address -> :class:`DirectoryEntry`, materialized on demand."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        return entry

    def peek(self, line_addr: int) -> DirectoryEntry | None:
        return self._entries.get(line_addr)

    def drop_if_idle(self, line_addr: int) -> None:
        entry = self._entries.get(line_addr)
        if entry is not None and entry.is_idle():
            del self._entries[line_addr]

    def __len__(self) -> int:
        return len(self._entries)
