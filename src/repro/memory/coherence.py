"""Directory state for the shared-cache coherence protocol.

The reproduction models a Piranha-style inclusive shared cache controller
that tracks, per line, which *vocal* L1s hold the line and whether one of
them owns it exclusively.  Mute caches are deliberately invisible here —
that is the Reunion vocal/mute semantics of Definition 2: the coherence
protocol behaves as if mute cores were absent from the system.
"""

from __future__ import annotations


class DirectoryEntry:
    """Sharers and owner for one cache line, vocal cores only."""

    __slots__ = ("owner", "sharers")

    def __init__(self) -> None:
        self.owner: int | None = None  # core with E/M permission
        self.sharers: set[int] = set()

    def is_idle(self) -> bool:
        return self.owner is None and not self.sharers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectoryEntry(owner={self.owner}, sharers={sorted(self.sharers)})"


class Directory:
    """Line address -> :class:`DirectoryEntry`, materialized on demand."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        return entry

    def peek(self, line_addr: int) -> DirectoryEntry | None:
        return self._entries.get(line_addr)

    def drop_if_idle(self, line_addr: int) -> None:
        entry = self._entries.get(line_addr)
        if entry is not None and entry.is_idle():
            del self._entries[line_addr]

    def __len__(self) -> int:
        return len(self._entries)
