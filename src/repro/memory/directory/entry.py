"""Home-node directory state: one bitmask entry per tracked line.

Unlike the shared-L2 directory (:class:`repro.memory.coherence.Directory`),
which keeps owner and sharers in Python sets, a home-node entry packs
the sharers into an integer bitmask — the representation real directory
controllers use, and O(1) for the owner-extraction and membership tests
the hot path performs.  The entry's ``state`` is the global
:class:`~repro.memory.coherence.MSIState` of the line over the vocal
caches; mute caches are never tracked (Reunion Definition 2).
"""

from __future__ import annotations

from repro.memory.coherence import MSIState


class DirectoryEntry:
    """Global MSI state + sharers bitmask for one cache line.

    Invariants (over vocal caches only):

    * ``state == MODIFIED``  ⇒  exactly one bit set (the owner, which
      may hold the line clean-exclusive — stores hit E silently, so the
      grantee is a potential writer from the grant on);
    * ``state == SHARED``    ⇒  at least one bit set, all copies clean;
    * ``state == INVALID``   ⇒  ``sharers == 0``.
    """

    __slots__ = ("state", "sharers")

    def __init__(self) -> None:
        self.state: int = MSIState.INVALID
        self.sharers: int = 0

    def owner(self) -> int | None:
        """The owning core id, or None when no single core owns the line.

        Valid extraction requires exactly one sharer bit; the power-of-
        two test rejects both the empty and the multi-sharer mask.
        """
        mask = self.sharers
        if self.state != MSIState.MODIFIED or mask == 0 or mask & (mask - 1):
            return None
        return mask.bit_length() - 1

    def holds(self, core_id: int) -> bool:
        return bool(self.sharers >> core_id & 1)

    def add(self, core_id: int) -> None:
        self.sharers |= 1 << core_id

    def drop(self, core_id: int) -> None:
        """Remove one holder, demoting the global state as bits empty."""
        self.sharers &= ~(1 << core_id)
        if self.sharers == 0:
            self.state = MSIState.INVALID

    def holders(self):
        """Core ids with a copy, ascending."""
        mask = self.sharers
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def is_idle(self) -> bool:
        return self.sharers == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = MSIState.NAMES.get(self.state, self.state)
        return f"DirectoryEntry(state={name}, sharers={self.sharers:#b})"


class HomeDirectory:
    """One home bank: line address -> :class:`DirectoryEntry`.

    Entries are materialized on demand and dropped when idle, so the
    structure's footprint tracks the lines actually cached rather than
    the address space.  A line's home bank is chosen by the controller
    (``line_addr % dir_banks``); the bank itself is bank-number agnostic.
    """

    __slots__ = ("bank_id", "_entries")

    def __init__(self, bank_id: int) -> None:
        self.bank_id = bank_id
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, line_addr: int) -> DirectoryEntry:
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
        return entry

    def peek(self, line_addr: int) -> DirectoryEntry | None:
        return self._entries.get(line_addr)

    def drop_if_idle(self, line_addr: int) -> None:
        entry = self._entries.get(line_addr)
        if entry is not None and entry.is_idle():
            del self._entries[line_addr]

    def __len__(self) -> int:
        return len(self._entries)
