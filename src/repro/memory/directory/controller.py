"""The directory-based coherence backend for private caches.

Montecito-style private L1s, but instead of a broadcast bus, coherence
requests travel point-to-point to per-bank home-node directories
(:mod:`repro.memory.directory.entry`), which hold the global MSI state
and sharers bitmask of every cached line and apply the shared protocol
table in :mod:`repro.memory.coherence`.  This is what lets Reunion
systems scale to many vocal/mute pairs: no snoop broadcast, and each
home bank arbitrates independently.

Reunion semantics map onto directory transactions:

* vocal reads/writes are GetS/GetM at the line's home; the directory
  forwards through the owner (fetching its dirty copy back to memory)
  or a clean sharer, and sends invalidations exactly to the recorded
  holders — never a broadcast;
* mute caches are invisible to the directory: phantom requests consult
  the home's sharers bitmask *read-only* and peek the holder caches
  without any state change, and mute write-backs are dropped at the
  interconnect (Definition 2 / Definition 5 of the paper);
* the synchronizing request collapses the pair's copies and every other
  holder to deliver one coherent value to vocal and mute.

Call-compatible with :class:`repro.memory.l2_controller.SharedL2Controller`
and :class:`repro.memory.snoopy.SnoopyBus` — ports, cores, pairs and the
CMP builder work unchanged.  The directory's bookkeeping is *exact*
(every vocal fill, eviction and invalidation flows through this class),
which is what makes the snoopy-equivalence differential suite possible:
the home always reaches the same forward/grant decision a bus snoop
would.
"""

from __future__ import annotations

from repro.isa.registers import WORD_MASK
from repro.memory.cache import Cache, LineState
from repro.memory.coherence import GETM, GETS, MSIState, transition
from repro.memory.directory.entry import DirectoryEntry, HomeDirectory
from repro.memory.directory.interconnect import MUTE, VOCAL, Interconnect
from repro.memory.l2_controller import Reply, _GARBAGE_MULT, _GARBAGE_XOR
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHRFile
from repro.pipeline.gates import NEVER
from repro.sim.config import BusConfig, PhantomStrength
from repro.sim.stats import Stats


class DirectoryBackend:
    """Banked home-node MSI directories over a point-to-point fabric."""

    def __init__(self, config: BusConfig, memory: MainMemory, stats: Stats) -> None:
        self.config = config
        self.memory = memory
        self.stats = stats
        self.mshrs = MSHRFile(config.mshrs)
        self.fabric = Interconnect(config)
        self.banks = [HomeDirectory(bank) for bank in range(config.dir_banks)]
        self._l1s: dict[int, tuple[Cache, bool]] = {}
        self._words_per_line = 8
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem.
        self.obs = None

    # -- registration -------------------------------------------------------
    def register_l1(self, core_id: int, l1: Cache, is_mute: bool) -> None:
        if core_id in self._l1s:
            raise ValueError(f"core {core_id} already registered")
        self._l1s[core_id] = (l1, is_mute)
        self._words_per_line = l1.words_per_line

    def set_role(self, core_id: int, is_mute: bool) -> None:
        """Flip a core's vocal/mute role.

        Callers must hand over a clean cache: a demotion (vocal→mute)
        only after evicting every resident line through
        :meth:`vocal_evict`, a promotion only with an empty L1 — the
        directory tracks vocal caches exactly and a role flip must not
        strand stale presence bits (see CMPSystem.couple/decouple).
        """
        l1, _ = self._l1s[core_id]
        self._l1s[core_id] = (l1, is_mute)

    # -- event horizon (cycle-skipping kernel) ------------------------------
    def next_event(self, now: int) -> int:
        """No autonomous events: all directory and arbiter state changes
        happen inside request calls, and completion cycles travel back to
        the requesting core inside each :class:`Reply` — the conservative
        horizon is therefore unbounded."""
        return NEVER

    # -- home lookup --------------------------------------------------------
    def _entry(self, line_addr: int) -> DirectoryEntry:
        return self.banks[self.fabric.home_bank(line_addr)].entry(line_addr)

    def _drop_if_idle(self, line_addr: int) -> None:
        self.banks[self.fabric.home_bank(line_addr)].drop_if_idle(line_addr)

    def _arb(self, line_addr: int, cls: str, now: int) -> int:
        """Arbitrate at the line's home bank; returns the service start."""
        bank, start = self.fabric.request(line_addr, cls, now)
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "dir.grant",
                None,
                "dir",
                bank=bank,
                cls=cls,
                start=start,
                line_addr=line_addr,
            )
        return start

    def _memory_fetch(self, line_addr: int, start: int) -> tuple[list[int], int]:
        if not self.mshrs.available(start):
            release = self.mshrs.next_release()
            if release is not None:
                start = max(start, release)
        done = start + self.memory.latency
        self.mshrs.allocate(start, done)
        self.stats.inc("dir.memory_reads")
        return self.memory.read_line(line_addr), done

    def _holder_data(
        self, entry: DirectoryEntry, line_addr: int, invalidate: bool
    ) -> list[int] | None:
        """Pull the line from its recorded holders (owner or sharers).

        A dirty owner copy is written back so memory stays clean; with
        ``invalidate`` every holder's copy is purged (and removed from
        the entry), otherwise an owner is downgraded to a sharer.
        Returns the freshest data, or None when the entry records no
        holders.
        """
        data: list[int] | None = None
        obs = self.obs
        emit_invals = invalidate and obs is not None and obs.full
        for core_id in list(entry.holders()):
            l1, _ = self._l1s[core_id]
            if invalidate:
                line = l1.invalidate(line_addr)
                entry.drop(core_id)
                self.stats.inc("dir.invals")
                if emit_invals:
                    obs.emit(
                        "dir.inval", None, "dir", core=core_id, line_addr=line_addr
                    )
                if line is None:
                    raise RuntimeError(
                        f"directory presence stale: core {core_id} recorded for "
                        f"line {line_addr:#x} holds no copy"
                    )
                if line.dirty:
                    self.memory.write_line(line_addr, line.data)
                    data = list(line.data)
                elif data is None:
                    data = list(line.data)
            else:
                line = l1.lookup(line_addr)
                if line is None:
                    raise RuntimeError(
                        f"directory presence stale: core {core_id} recorded for "
                        f"line {line_addr:#x} holds no copy"
                    )
                if line.dirty:
                    self.memory.write_line(line_addr, line.data)
                    data = list(line.data)
                    line.state = LineState.SHARED
                else:
                    line.state = LineState.SHARED
                    if data is None:
                        data = list(line.data)
        return data

    # -- vocal transactions --------------------------------------------------
    def vocal_read(self, core_id: int, line_addr: int, now: int) -> Reply:
        """GetS at the line's home: forward from a holder, else memory."""
        self.stats.inc("dir.gets")
        start = self._arb(line_addr, VOCAL, now)
        entry = self._entry(line_addr)
        tr = transition(entry.state, GETS)
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "dir.gets",
                None,
                "dir",
                core=core_id,
                line_addr=line_addr,
                state=MSIState.NAMES[entry.state],
            )
        if tr.fetch_owner or (tr.forward_sharer and entry.sharers):
            # A holder supplies the line cache-to-cache; a dirty owner
            # copy is folded back to memory on the way (Illinois-style).
            data = self._holder_data(entry, line_addr, invalidate=False)
            self.stats.inc("dir.forwards")
            done = self.fabric.respond(start + self.config.transfer_latency, forwarded=True)
            entry.state = tr.next_state
            entry.add(core_id)
        else:
            data, done = self._memory_fetch(line_addr, start)
            done = self.fabric.respond(done + self.config.snoop_latency)
            entry.state = tr.next_state  # sole reader: global M, grant E
            entry.add(core_id)
        self._install(core_id, line_addr, data, tr.grant)
        return Reply(data, done)

    def vocal_write(self, core_id: int, line_addr: int, now: int) -> Reply:
        """GetM at the line's home: invalidate every other holder, grant M."""
        self.stats.inc("dir.getm")
        start = self._arb(line_addr, VOCAL, now)
        entry = self._entry(line_addr)
        tr = transition(entry.state, GETM)
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "dir.getm",
                None,
                "dir",
                core=core_id,
                line_addr=line_addr,
                state=MSIState.NAMES[entry.state],
            )
        requester_held = entry.holds(core_id)
        if requester_held:
            entry.drop(core_id)  # keep _holder_data to the *other* holders
        captured = None
        if tr.fetch_owner or tr.invalidate_sharers:
            captured = self._holder_data(entry, line_addr, invalidate=True)
        entry.state = MSIState.MODIFIED
        entry.sharers = 1 << core_id

        l1, _ = self._l1s[core_id]
        resident = l1.lookup(line_addr)
        if resident is not None:
            # Upgrade in place: permission travels, no data transfer.
            self.stats.inc("dir.upgrades")
            resident.state = LineState.MODIFIED
            l1.touch(line_addr)
            done = self.fabric.respond(start + self.config.snoop_latency)
            return Reply(list(resident.data), done)
        if captured is not None:
            data = captured
            done = self.fabric.respond(
                start + self.config.transfer_latency, forwarded=True
            )
        else:
            data, done = self._memory_fetch(line_addr, start)
            done = self.fabric.respond(done + self.config.snoop_latency)
        self._install(core_id, line_addr, data, LineState.MODIFIED)
        return Reply(data, done)

    def vocal_evict(
        self, core_id: int, line_addr: int, data: list[int] | None, dirty: bool
    ) -> None:
        """PutM/PutS at the home: presence bit cleared, dirty data folded.

        Clean evictions matter as much as dirty ones here — a stale
        presence bit would make the home forward from a cache that no
        longer holds the line."""
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "cache.evict",
                None,
                "dir",
                core=core_id,
                line_addr=line_addr,
                dirty=dirty,
            )
        entry = self.banks[self.fabric.home_bank(line_addr)].peek(line_addr)
        if entry is not None:
            entry.drop(core_id)
            self._drop_if_idle(line_addr)
        if dirty and data is not None:
            self.memory.write_line(line_addr, data)
            self.stats.inc("dir.writebacks")
            if obs is not None and obs.full:
                obs.emit(
                    "dir.writeback", None, "dir", core=core_id, line_addr=line_addr
                )

    # -- mute transactions ---------------------------------------------------
    def phantom_read(
        self, core_id: int, line_addr: int, now: int, strength: PhantomStrength
    ) -> Reply:
        """Non-coherent read: consults the home's bitmask without touching it."""
        obs = self.obs
        if strength is PhantomStrength.NULL:
            self.stats.inc("dir.phantom_null")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "garbage")
            return Reply(self._garbage(line_addr), now + 1)
        start = self._arb(line_addr, MUTE, now)
        entry = self.banks[self.fabric.home_bank(line_addr)].peek(line_addr)
        if entry is not None and entry.sharers:
            # Peek the first recorded holder without any state change.
            # All clean copies are identical and a dirty copy implies a
            # sole owner, so any holder serves.
            holder = next(entry.holders())
            line = self._l1s[holder][0].lookup(line_addr)
            if line is None:
                raise RuntimeError(
                    f"directory presence stale: core {holder} recorded for "
                    f"line {line_addr:#x} holds no copy"
                )
            self.stats.inc("dir.phantom_snooped")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "peer_l1")
            done = self.fabric.respond(
                start + self.config.transfer_latency, forwarded=True
            )
            return Reply(list(line.data), done)
        if strength is PhantomStrength.SHARED:
            self.stats.inc("dir.phantom_garbage")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "garbage")
            done = self.fabric.respond(start + self.config.snoop_latency)
            return Reply(self._garbage(line_addr), done)
        self.stats.inc("dir.phantom_memory")
        data, done = self._memory_fetch(line_addr, start)
        if obs is not None:
            self._emit_phantom(obs, core_id, line_addr, now, strength, "memory")
        return Reply(data, self.fabric.respond(done + self.config.snoop_latency))

    @staticmethod
    def _emit_phantom(obs, core_id, line_addr, now, strength, origin) -> None:
        obs.emit(
            "phantom.read",
            now,
            "dir",
            core=core_id,
            line_addr=line_addr,
            strength=strength.value,
            origin=origin,
        )

    def mute_evict(self, core_id: int, line_addr: int) -> None:
        self.stats.inc("dir.mute_evicts_dropped")
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "cache.writeback_drop", None, "dir", core=core_id, line_addr=line_addr
            )

    # -- synchronizing requests ----------------------------------------------
    def synchronizing_access(
        self, vocal_id: int, mute_id: int, line_addr: int, now: int
    ) -> Reply:
        """Home-serialized coherent access delivered to both cores of a pair."""
        self.stats.inc("dir.sync_requests")
        start = self._arb(line_addr, VOCAL, now)
        entry = self._entry(line_addr)
        vocal_l1, _ = self._l1s[vocal_id]
        flushed = vocal_l1.invalidate(line_addr)
        entry.drop(vocal_id)
        if flushed is not None and flushed.dirty:
            self.memory.write_line(line_addr, flushed.data)
        mute_l1, _ = self._l1s[mute_id]
        mute_l1.invalidate(line_addr)
        snooped = self._holder_data(entry, line_addr, invalidate=True)
        if snooped is not None:
            data = snooped
            done = self.fabric.respond(
                start + self.config.transfer_latency, forwarded=True
            )
        elif flushed is not None:
            data = list(flushed.data)
            done = self.fabric.respond(start + self.config.snoop_latency)
        else:
            data, done = self._memory_fetch(line_addr, start)
            done = self.fabric.respond(done + self.config.snoop_latency)
        entry.state = MSIState.MODIFIED
        entry.sharers = 1 << vocal_id
        self._install(vocal_id, line_addr, data, LineState.MODIFIED)
        self._install(mute_id, line_addr, data, LineState.MODIFIED)
        return Reply(data, done)

    def install_image(self, image: dict[int, int]) -> None:
        """Coherently install a memory image (dual-use reconfiguration)."""
        words_per_line = self._words_per_line
        for line_addr in {addr // (8 * words_per_line) for addr in image}:
            for core_id, (l1, is_mute) in self._l1s.items():
                line = l1.invalidate(line_addr)
                if line is not None and not is_mute and line.dirty:
                    self.memory.write_line(line_addr, line.data)
            entry = self.banks[self.fabric.home_bank(line_addr)].peek(line_addr)
            if entry is not None:
                entry.sharers = 0
                entry.state = MSIState.INVALID
                self._drop_if_idle(line_addr)
        for addr, value in image.items():
            self.memory.write_word(addr, value)

    # -- helpers -------------------------------------------------------------
    def _install(self, core_id: int, line_addr: int, data: list[int], state: int) -> None:
        l1, is_mute = self._l1s[core_id]
        evicted = l1.fill(line_addr, data, state)
        if evicted is None:
            return
        if is_mute:
            self.mute_evict(core_id, evicted.line_addr)
        else:
            self.vocal_evict(core_id, evicted.line_addr, evicted.data, evicted.dirty)

    def _garbage(self, line_addr: int) -> list[int]:
        base = (line_addr * _GARBAGE_MULT) & WORD_MASK
        return [
            (base ^ (index * _GARBAGE_XOR)) & WORD_MASK
            for index in range(self._words_per_line)
        ]
