"""Directory-based coherence backend: banked home nodes, point-to-point.

Selected by ``SystemConfig(cache_style=CacheStyle.SNOOPY,
bus=BusConfig(coherence=CoherenceStyle.DIRECTORY, ...))`` — private L1
caches like the snoopy design point, but coherence scales past a
bus-snoopable handful of cores to the 8-32-core (4-16 Reunion pair)
systems.  See docs/ARCHITECTURE.md, "Memory system backends".
"""

from repro.memory.directory.controller import DirectoryBackend
from repro.memory.directory.entry import DirectoryEntry, HomeDirectory
from repro.memory.directory.interconnect import Interconnect, WRRArbiter

__all__ = [
    "DirectoryBackend",
    "DirectoryEntry",
    "HomeDirectory",
    "Interconnect",
    "WRRArbiter",
]
