"""Point-to-point interconnect timing: links plus per-bank WRR arbiters.

The directory backend has no broadcast medium; requests travel
requester→home over a dedicated link, and each home bank arbitrates its
single service port among requester classes with weighted round-robin.
Timing is computed analytically (no queued message objects): a request
*arrives* one link after issue, is *granted* a service slot by the
bank's arbiter, and the reply crosses one link back (two when the home
forwards through an owner or sharer cache).

The arbiter's contract matters for the snoopy-equivalence proof: a
class with weight 0 is exempt from credit accounting and degenerates to
plain FCFS — ``grant(cls, t)`` is then exactly
``start = max(t, free); free = start + occupancy``, the same recurrence
as :meth:`repro.memory.snoopy.SnoopyBus._arbitrate`.  With one bank and
zero link latency the whole interconnect is therefore cycle-identical
to the shared bus.
"""

from __future__ import annotations

from repro.sim.config import BusConfig

#: Requester classes the arbiter distinguishes.  Vocal traffic is the
#: architecturally required stream; mute (phantom) traffic is best-
#: effort, so stock configs weight it down rather than out.
VOCAL = "vocal"
MUTE = "mute"


class WRRArbiter:
    """Weighted round-robin over one home bank's service port.

    Each round gives class ``c`` ``weights[c]`` service credits.  A
    grant consumes one credit; a request arriving with its class's
    credits exhausted loses its turn — it waits out one extra occupancy
    slot (the bandwidth the competing class is entitled to) and a fresh
    round begins.  This is an analytic approximation of a slotted WRR
    schedule: it preserves the bandwidth ratio and is deterministic,
    which is all the simulation contract needs.

    Weight 0 exempts a class from credit accounting entirely (plain
    FCFS) — the degenerate setting the snoopy-equivalence tests rely on.
    """

    __slots__ = ("weights", "occupancy", "_free", "_credits", "deferrals")

    def __init__(self, weights: dict[str, int], occupancy: int) -> None:
        self.weights = dict(weights)
        self.occupancy = occupancy
        self._free = 0
        self._credits = dict(weights)
        #: Grants that lost their turn (diagnostic; feeds dir.grant obs).
        self.deferrals = 0

    def grant(self, cls: str, arrival: int) -> int:
        """Grant a service slot; returns the slot's start cycle."""
        start = arrival if arrival > self._free else self._free
        weight = self.weights.get(cls, 0)
        if weight:
            if self._credits.get(cls, 0) <= 0:
                # Out of credits this round: yield one slot to the
                # competing class, then start a fresh round.
                start += self.occupancy
                self._credits = dict(self.weights)
                self.deferrals += 1
            self._credits[cls] -= 1
        self._free = start + self.occupancy
        return start

    @property
    def free_at(self) -> int:
        return self._free


class Interconnect:
    """Bank mapping, link latency, and one arbiter per home bank."""

    __slots__ = ("n_banks", "link", "arbiters")

    def __init__(self, config: BusConfig) -> None:
        self.n_banks = config.dir_banks
        self.link = config.link_latency
        weights = {
            VOCAL: config.wrr_vocal_weight,
            MUTE: config.wrr_mute_weight,
        }
        self.arbiters = [
            WRRArbiter(weights, config.bus_occupancy) for _ in range(self.n_banks)
        ]

    def home_bank(self, line_addr: int) -> int:
        return line_addr % self.n_banks

    def request(self, line_addr: int, cls: str, now: int) -> tuple[int, int]:
        """Deliver a request to its home bank; returns (bank, start).

        ``start`` is the cycle the home begins servicing: one link of
        flight time plus whatever the bank's arbiter imposes.
        """
        bank = line_addr % self.n_banks
        start = self.arbiters[bank].grant(cls, now + self.link)
        return bank, start

    def respond(self, done: int, forwarded: bool = False) -> int:
        """Completion cycle after the reply crosses back to the requester.

        A direct home/memory reply is one hop; a reply forwarded through
        an owner or sharer cache is two (home→holder→requester).
        """
        return done + self.link * (2 if forwarded else 1)

    def deferrals(self) -> int:
        return sum(arbiter.deferrals for arbiter in self.arbiters)
