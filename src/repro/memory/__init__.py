"""Memory substrate: caches, coherence, shared L2 controller, TLBs."""

from repro.memory.cache import Cache, CacheLine, Eviction, LineState
from repro.memory.coherence import (
    Directory,
    DirectoryEntry,
    MSI_TRANSITIONS,
    MSIState,
    Transition,
    transition,
)
from repro.memory.directory import DirectoryBackend
from repro.memory.l2_controller import Reply, SharedL2Controller
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHRFile
from repro.memory.port import Access, CoreMemPort
from repro.memory.snoopy import SnoopyBus
from repro.memory.tlb import TLB, TLBPair

__all__ = [
    "Access",
    "Cache",
    "CacheLine",
    "CoreMemPort",
    "Directory",
    "DirectoryBackend",
    "DirectoryEntry",
    "Eviction",
    "LineState",
    "MSHRFile",
    "MSIState",
    "MSI_TRANSITIONS",
    "MainMemory",
    "Reply",
    "SharedL2Controller",
    "SnoopyBus",
    "TLB",
    "TLBPair",
    "Transition",
    "transition",
]
