"""The shared L2 cache controller, including Reunion semantics.

This controller is where the paper's Section 4.2 lives:

* it maintains directory coherence for **vocal** L1 caches exactly as a
  non-redundant design would;
* **mute** caches never appear in sharers lists, can never own a line,
  and their evictions/writebacks are silently dropped;
* mute read misses arrive as **phantom requests** in one of three
  strengths (null / shared / global);
* **synchronizing requests** flush a line from both private caches of a
  logical pair, obtain a coherent copy with write permission, and reply
  a single value to both cores atomically.

Timing model: coherence state transitions are applied at request time;
the returned ``done`` cycle says when data reaches the requester.  Bank
arbitration (``banks`` × ``bank_occupancy``) and L2 MSHR occupancy for
off-chip reads provide the contention that loosely-coupled vocal/mute
execution exposes (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import WORD_MASK
from repro.memory.cache import Cache, LineState
from repro.memory.coherence import Directory
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHRFile
from repro.pipeline.gates import NEVER
from repro.sim.config import L2Config, PhantomStrength
from repro.sim.stats import Stats

#: Multiplier used to derive deterministic "arbitrary data" for weak
#: phantom replies.  Knuth's 64-bit golden-ratio constant: any line address
#: maps to a garbage pattern that is, for all practical purposes, never
#: equal to real program data — matching the paper's "arbitrary value".
_GARBAGE_MULT = 0x9E3779B97F4A7C15
_GARBAGE_XOR = 0x517CC1B727220A95


@dataclass(slots=True)
class Reply:
    """Controller reply: line data plus the cycle it arrives."""

    data: list[int]
    done: int


class SharedL2Controller:
    """Banked shared L2 with directory coherence and Reunion extensions."""

    def __init__(self, config: L2Config, memory: MainMemory, stats: Stats) -> None:
        self.config = config
        self.memory = memory
        self.stats = stats
        self.cache = Cache(config.size_bytes, config.assoc, config.line_bytes, name="L2")
        self.directory = Directory()
        self.mshrs = MSHRFile(config.mshrs)
        self._bank_free = [0] * config.banks
        #: core_id -> (l1 cache, is_mute)
        self._l1s: dict[int, tuple[Cache, bool]] = {}
        #: Armed telemetry (see repro.obs), or None.  Set by CMPSystem.
        self.obs = None

    # -- registration ------------------------------------------------------
    def register_l1(self, core_id: int, l1: Cache, is_mute: bool) -> None:
        """Attach a core's private L1 so the controller can probe it."""
        if core_id in self._l1s:
            raise ValueError(f"core {core_id} already registered")
        self._l1s[core_id] = (l1, is_mute)

    def _l1(self, core_id: int) -> Cache:
        return self._l1s[core_id][0]

    # -- event horizon (cycle-skipping kernel) -----------------------------
    def next_event(self, now: int) -> int:
        """The controller generates no autonomous events.

        All of its state (bank free times, MSHR release times, directory
        transitions) changes synchronously inside core-initiated request
        calls; the completion times are returned to the requesting core,
        which folds them into its own completion-heap horizon.
        """
        return NEVER

    def set_role(self, core_id: int, is_mute: bool) -> None:
        """Change a core's vocal/mute role (dual-use reconfiguration).

        The caller is responsible for cleaning the core's L1 first: a
        promoted mute must have invalidated its (potentially incoherent)
        contents, and a demoted vocal must have written back and left
        the directory.
        """
        l1, _ = self._l1s[core_id]
        self._l1s[core_id] = (l1, is_mute)

    def install_image(self, image: dict[int, int]) -> None:
        """Write a memory image coherently: caches and directory flushed.

        Used when a decoupled core starts a new program: any cached
        copies of the image's lines anywhere in the hierarchy are
        stale and must go.
        """
        words_per_line = self.cache.words_per_line
        for line_addr in {addr // (8 * words_per_line) for addr in image}:
            for core_id, (l1, is_mute) in self._l1s.items():
                line = l1.invalidate(line_addr)
                if line is not None and not is_mute and line.dirty:
                    self.memory.write_line(line_addr, line.data)
            l2_line = self.cache.invalidate(line_addr)
            if l2_line is not None and l2_line.dirty:
                self.memory.write_line(line_addr, l2_line.data)
            entry = self.directory.peek(line_addr)
            if entry is not None:
                entry.owner = None
                entry.sharers.clear()
                self.directory.drop_if_idle(line_addr)
        for addr, value in image.items():
            self.memory.write_word(addr, value)

    # -- timing helpers ------------------------------------------------------
    def _arbitrate(self, line_addr: int, now: int) -> int:
        """Claim the line's bank; returns the cycle service starts."""
        bank = line_addr % self.config.banks
        start = max(now, self._bank_free[bank])
        self._bank_free[bank] = start + self.config.bank_occupancy
        return start

    def _memory_fetch(self, line_addr: int, start: int) -> tuple[list[int], int]:
        """Read a line from main memory, modelling L2 MSHR pressure."""
        if not self.mshrs.available(start):
            release = self.mshrs.next_release()
            if release is not None:
                start = max(start, release)
        done = start + self.memory.latency
        self.mshrs.allocate(start, done)
        self.stats.inc("l2.memory_reads")
        return self.memory.read_line(line_addr), done

    def _fill_l2(self, line_addr: int, data: list[int], dirty: bool) -> None:
        """Install a line in the L2 array, writing back any dirty victim."""
        state = LineState.MODIFIED if dirty else LineState.EXCLUSIVE
        evicted = self.cache.fill(line_addr, data, state)
        if evicted is not None and evicted.dirty:
            self.memory.write_line(evicted.line_addr, evicted.data)
            self.stats.inc("l2.memory_writebacks")

    # -- coherent data collection ---------------------------------------------
    def _collect_owner(self, line_addr: int, invalidate: bool) -> list[int] | None:
        """Pull the freshest copy from an owning vocal L1, if any.

        With ``invalidate`` the owner loses the line entirely; otherwise it
        is downgraded to SHARED.  Dirty data is folded into the L2 array so
        the L2 always holds the coherent value afterwards.
        """
        entry = self.directory.peek(line_addr)
        if entry is None or entry.owner is None:
            return None
        owner_l1 = self._l1(entry.owner)
        if invalidate:
            line = owner_l1.invalidate(line_addr)
            data = list(line.data) if line is not None else None
            dirty = bool(line and line.dirty)
            entry.sharers.discard(entry.owner)
            entry.owner = None
        else:
            dirty_data = owner_l1.downgrade(line_addr)
            data = dirty_data
            dirty = dirty_data is not None
            if entry.owner is not None:
                entry.sharers.add(entry.owner)
            entry.owner = None
        if data is not None and dirty:
            self._fill_l2(line_addr, data, dirty=True)
        return data

    def _coherent_data(self, line_addr: int, start: int) -> tuple[list[int], int]:
        """Return the coherent value of a line (L2 hit or memory fetch).

        Assumes any owning L1 has already been collected into the L2.
        """
        line = self.cache.access(line_addr)
        if line is not None:
            return list(line.data), start + self.config.hit_latency
        data, done = self._memory_fetch(line_addr, start)
        self._fill_l2(line_addr, data, dirty=False)
        return data, done + self.config.hit_latency

    # -- vocal requests ---------------------------------------------------------
    def vocal_read(self, core_id: int, line_addr: int, now: int) -> Reply:
        """Coherent read miss from a vocal L1: grants S (or E if alone)."""
        self.stats.inc("l2.vocal_reads")
        start = self._arbitrate(line_addr, now)
        entry = self.directory.entry(line_addr)
        extra = 0
        if entry.owner is not None and entry.owner != core_id:
            self._collect_owner(line_addr, invalidate=False)
            extra = self.config.hit_latency  # 3-hop owner intervention
        data, done = self._coherent_data(line_addr, start)
        entry.sharers.add(core_id)
        state = LineState.SHARED if len(entry.sharers) > 1 else LineState.EXCLUSIVE
        if state == LineState.EXCLUSIVE:
            entry.owner = core_id
        self._install_l1(core_id, line_addr, data, state)
        return Reply(data, done + extra)

    def vocal_write(self, core_id: int, line_addr: int, now: int) -> Reply:
        """Coherent write (store drain or upgrade): grants M, invalidates others."""
        self.stats.inc("l2.vocal_writes")
        start = self._arbitrate(line_addr, now)
        entry = self.directory.entry(line_addr)
        extra = 0
        if entry.owner is not None and entry.owner != core_id:
            self._collect_owner(line_addr, invalidate=True)
            extra = self.config.hit_latency
        for sharer in list(entry.sharers):
            if sharer != core_id:
                self._l1(sharer).invalidate(line_addr)
                self.stats.inc("l2.invalidations")
        requester_l1 = self._l1(core_id)
        resident = requester_l1.lookup(line_addr)
        if resident is not None:
            # Upgrade in place: keep the L1's (coherent) data.
            resident.state = LineState.MODIFIED
            requester_l1.touch(line_addr)
            data = list(resident.data)
            done = start + self.config.hit_latency
        else:
            data, done = self._coherent_data(line_addr, start)
            self._install_l1(core_id, line_addr, data, LineState.MODIFIED)
        entry.owner = core_id
        entry.sharers = {core_id}
        return Reply(data, done + extra)

    def vocal_evict(self, core_id: int, line_addr: int, data: list[int] | None, dirty: bool) -> None:
        """A vocal L1 evicted a line: fold back data, update the directory."""
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "cache.evict",
                None,
                "l2",
                core=core_id,
                line_addr=line_addr,
                dirty=dirty,
            )
        entry = self.directory.peek(line_addr)
        if entry is not None:
            entry.sharers.discard(core_id)
            if entry.owner == core_id:
                entry.owner = None
            self.directory.drop_if_idle(line_addr)
        if dirty and data is not None:
            self._fill_l2(line_addr, data, dirty=True)
            self.stats.inc("l2.vocal_writebacks")

    # -- mute requests -----------------------------------------------------------
    def phantom_read(
        self, core_id: int, line_addr: int, now: int, strength: PhantomStrength
    ) -> Reply:
        """Non-coherent read on behalf of a mute core (Definition 5).

        Never changes directory state; the reply grants write permission
        *within the mute hierarchy only*.
        """
        obs = self.obs
        if strength is PhantomStrength.NULL:
            # Trivial implementation: arbitrary data, no L2 traffic at all.
            self.stats.inc("l2.phantom_null")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "garbage")
            return Reply(self._garbage(line_addr), now + 1)

        start = self._arbitrate(line_addr, now)
        line = self.cache.lookup(line_addr)  # probe only: no LRU pollution

        if strength is PhantomStrength.SHARED:
            self.stats.inc("l2.phantom_shared")
            if line is not None:
                if obs is not None:
                    self._emit_phantom(obs, core_id, line_addr, now, strength, "l2")
                return Reply(list(line.data), start + self.config.hit_latency)
            self.stats.inc("l2.phantom_garbage")
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "garbage")
            return Reply(self._garbage(line_addr), start + self.config.hit_latency)

        # GLOBAL: best-effort coherent value — L2, then an owning vocal L1,
        # then main memory.  Still changes no coherence state.
        self.stats.inc("l2.phantom_global")
        entry = self.directory.peek(line_addr)
        if entry is not None and entry.owner is not None:
            owner_line = self._l1(entry.owner).lookup(line_addr)
            if owner_line is not None:
                if obs is not None:
                    self._emit_phantom(obs, core_id, line_addr, now, strength, "owner_l1")
                return Reply(list(owner_line.data), start + 2 * self.config.hit_latency)
        if line is not None:
            if obs is not None:
                self._emit_phantom(obs, core_id, line_addr, now, strength, "l2")
            return Reply(list(line.data), start + self.config.hit_latency)
        data, done = self._memory_fetch(line_addr, start)
        if obs is not None:
            self._emit_phantom(obs, core_id, line_addr, now, strength, "memory")
        return Reply(data, done + self.config.hit_latency)

    @staticmethod
    def _emit_phantom(obs, core_id, line_addr, now, strength, origin) -> None:
        obs.emit(
            "phantom.read",
            now,
            "l2",
            core=core_id,
            line_addr=line_addr,
            strength=strength.value,
            origin=origin,
        )

    def mute_evict(self, core_id: int, line_addr: int) -> None:
        """Mute evictions and writebacks are ignored (Section 4.2)."""
        self.stats.inc("l2.mute_evicts_dropped")
        obs = self.obs
        if obs is not None and obs.full:
            obs.emit(
                "cache.writeback_drop", None, "l2", core=core_id, line_addr=line_addr
            )

    # -- synchronizing requests ------------------------------------------------
    def synchronizing_access(
        self, vocal_id: int, mute_id: int, line_addr: int, now: int
    ) -> Reply:
        """Definition 10: one coherent value, delivered to both cores.

        Flushes the block from both private caches (keeping the vocal's
        copy, discarding the mute's), obtains a coherent copy with write
        permission on behalf of the pair, and installs it in both L1s.
        The pair controller calls this once, when both cores' requests
        have arrived; latency is comparable to a shared-cache hit.
        """
        self.stats.inc("l2.sync_requests")
        start = self._arbitrate(line_addr, now)
        entry = self.directory.entry(line_addr)

        # Flush the vocal's copy back (it is the coherent one if owned)...
        vocal_l1 = self._l1(vocal_id)
        flushed = vocal_l1.invalidate(line_addr)
        if flushed is not None and flushed.dirty:
            self._fill_l2(line_addr, flushed.data, dirty=True)
        entry.sharers.discard(vocal_id)
        if entry.owner == vocal_id:
            entry.owner = None
        # ...and discard the mute's.
        self._l1(mute_id).invalidate(line_addr)

        # Coherent write transaction on behalf of the pair.
        extra = 0
        if entry.owner is not None:
            self._collect_owner(line_addr, invalidate=True)
            extra = self.config.hit_latency
        for sharer in list(entry.sharers):
            self._l1(sharer).invalidate(line_addr)
            self.stats.inc("l2.invalidations")
        data, done = self._coherent_data(line_addr, start)
        entry.owner = vocal_id
        entry.sharers = {vocal_id}
        self._install_l1(vocal_id, line_addr, data, LineState.MODIFIED)
        self._install_l1(mute_id, line_addr, data, LineState.MODIFIED)
        return Reply(data, done + extra)

    # -- helpers -----------------------------------------------------------------
    def _install_l1(self, core_id: int, line_addr: int, data: list[int], state: int) -> None:
        """Fill a line into a core's L1, handling the eviction it causes."""
        l1, is_mute = self._l1s[core_id]
        evicted = l1.fill(line_addr, data, state)
        if evicted is None:
            return
        if is_mute:
            self.mute_evict(core_id, evicted.line_addr)
        else:
            self.vocal_evict(core_id, evicted.line_addr, evicted.data, evicted.dirty)

    def _garbage(self, line_addr: int) -> list[int]:
        """Deterministic arbitrary data for weak phantom replies."""
        base = (line_addr * _GARBAGE_MULT) & WORD_MASK
        return [
            (base ^ (index * _GARBAGE_XOR)) & WORD_MASK
            for index in range(self.cache.words_per_line)
        ]
