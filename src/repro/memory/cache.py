"""Set-associative write-back cache with true LRU replacement.

Caches here hold *data* as well as tags: values matter in this
reproduction, because input incoherence is a real stale value observed by
a mute core, not a modelled probability.  A line's data is a list of
word-sized integers (line_bytes / 8 of them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import WORD_MASK


class LineState:
    """MESI-style line states (plain ints for speed)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3

    NAMES = {0: "I", 1: "S", 2: "E", 3: "M"}


@dataclass(slots=True)
class CacheLine:
    """One resident line: coherence state plus word data."""

    line_addr: int
    state: int
    data: list[int]

    @property
    def dirty(self) -> bool:
        return self.state == LineState.MODIFIED


@dataclass(slots=True)
class Eviction:
    """A victim pushed out by a fill."""

    line_addr: int
    data: list[int]
    dirty: bool


class Cache:
    """A set-associative cache keyed by line address.

    Line addresses are byte addresses right-shifted by the line-offset
    bits; callers do the shifting once so hot paths stay integer-only.
    """

    __slots__ = ("name", "n_sets", "assoc", "words_per_line", "_sets", "_stamp")

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
        name: str = "cache",
    ) -> None:
        n_lines = size_bytes // line_bytes
        if n_lines % assoc:
            raise ValueError("line count must be a multiple of associativity")
        self.name = name
        self.n_sets = n_lines // assoc
        self.assoc = assoc
        self.words_per_line = line_bytes // 8
        # set index -> {line_addr: (CacheLine, lru_stamp)}
        self._sets: list[dict[int, CacheLine]] = [{} for _ in range(self.n_sets)]
        # LRU stamps; the monotonically increasing counter lives under key -1
        # (an impossible line address) so the class keeps tight __slots__.
        self._stamp: dict[int, int] = {}

    def _bump(self) -> int:
        value = self._stamp.get(-1, 0) + 1
        self._stamp[-1] = value
        return value

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    # -- lookups ---------------------------------------------------------
    def lookup(self, line_addr: int) -> CacheLine | None:
        """Return the resident line, or ``None``.  Does not update LRU."""
        line = self._sets[self._set_index(line_addr)].get(line_addr)
        if line is not None and line.state != LineState.INVALID:
            return line
        return None

    def touch(self, line_addr: int) -> None:
        """Mark a line most-recently used."""
        self._stamp[line_addr] = self._bump()

    def access(self, line_addr: int) -> CacheLine | None:
        """Lookup plus LRU update — the normal load/store path."""
        line = self.lookup(line_addr)
        if line is not None:
            self.touch(line_addr)
        return line

    # -- mutation ---------------------------------------------------------
    def fill(self, line_addr: int, data: list[int], state: int) -> Eviction | None:
        """Install a line, evicting the LRU victim if the set is full.

        Returns the eviction (with data, for write-back) or ``None``.
        """
        index = self._set_index(line_addr)
        cache_set = self._sets[index]
        evicted: Eviction | None = None
        if line_addr not in cache_set and len(cache_set) >= self.assoc:
            victim_addr = min(cache_set, key=lambda a: self._stamp.get(a, 0))
            victim = cache_set.pop(victim_addr)
            self._stamp.pop(victim_addr, None)
            evicted = Eviction(victim_addr, victim.data, victim.dirty)
        cache_set[line_addr] = CacheLine(line_addr, state, list(data))
        self.touch(line_addr)
        return evicted

    def invalidate(self, line_addr: int) -> CacheLine | None:
        """Remove a line (external invalidation); returns it if present."""
        cache_set = self._sets[self._set_index(line_addr)]
        line = cache_set.pop(line_addr, None)
        self._stamp.pop(line_addr, None)
        return line

    def downgrade(self, line_addr: int) -> list[int] | None:
        """Drop a line to SHARED; returns its data if it was dirty."""
        line = self.lookup(line_addr)
        if line is None:
            return None
        dirty_data = list(line.data) if line.dirty else None
        line.state = LineState.SHARED
        return dirty_data

    # -- word access -------------------------------------------------------
    def read_word(self, addr: int) -> int:
        """Read a word from a resident line (caller ensures residence)."""
        line_addr, offset = divmod(addr // 8, self.words_per_line)
        line = self.lookup(line_addr)
        if line is None:
            raise KeyError(f"{self.name}: line {line_addr:#x} not resident")
        return line.data[offset]

    def write_word(self, addr: int, value: int) -> None:
        """Write a word into a resident line and mark it MODIFIED."""
        line_addr, offset = divmod(addr // 8, self.words_per_line)
        line = self.lookup(line_addr)
        if line is None:
            raise KeyError(f"{self.name}: line {line_addr:#x} not resident")
        line.data[offset] = value & WORD_MASK
        line.state = LineState.MODIFIED

    # -- introspection -----------------------------------------------------
    def resident_lines(self) -> list[int]:
        """All resident line addresses (tests and debugging)."""
        out: list[int] = []
        for cache_set in self._sets:
            out.extend(a for a, l in cache_set.items() if l.state != LineState.INVALID)
        return out

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self._stamp.clear()
