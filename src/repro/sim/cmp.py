"""CMP system assembly: cores, pairs, shared cache, main memory.

Builds one simulated chip multiprocessor in any of the three execution
models the paper evaluates:

* ``Mode.NONREDUNDANT`` — `n_logical` plain cores (the baseline that
  every figure normalizes against);
* ``Mode.STRICT`` — `n_logical` cores, each checked against an ideally
  timed virtual partner (the strict-input-replication oracle);
* ``Mode.REUNION`` — `2 * n_logical` cores in vocal/mute pairs with
  relaxed input replication, phantom requests, and the re-execution
  protocol.

The paper assumes on-chip cache bandwidth scales with the core count
(Section 5), so Reunion systems double the shared-cache banks.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Sequence

from repro.core.pair import LogicalPair
from repro.core.strict import StrictCheckGate
from repro.isa.program import Program
from repro.memory.main_memory import MainMemory
from repro.memory.directory import DirectoryBackend
from repro.memory.l2_controller import SharedL2Controller
from repro.memory.port import CoreMemPort
from repro.memory.snoopy import SnoopyBus
from repro.pipeline.gates import NEVER, ImmediateGate
from repro.pipeline.ooo_core import OoOCore
from repro.sim.config import (
    CacheStyle,
    CoherenceStyle,
    Mode,
    SystemConfig,
    resolve_pair_policies,
)
from repro.sim.options import SimOptions
from repro.sim.stats import Stats

#: Type of a synthetic instruction-TLB miss schedule: a *pure* function of
#: the retired user-instruction index, so the vocal and mute cores of a
#: pair (which share the schedule) trigger at identical program points.
ITLBSchedule = Callable[[int], bool]

#: One-shot latch for the legacy-kwargs deprecation warning, so a test
#: sweep constructing hundreds of systems warns exactly once per process.
_LEGACY_KWARGS_WARNED = False


def _warn_legacy_kwargs() -> None:
    global _LEGACY_KWARGS_WARNED
    if _LEGACY_KWARGS_WARNED:
        return
    _LEGACY_KWARGS_WARNED = True
    warnings.warn(
        "CMPSystem(kernel=..., execution=...) is deprecated; pass "
        "CMPSystem(options=SimOptions(kernel=..., execution=...)) instead "
        "(SimOptions.from_env() resolves REPRO_KERNEL/REPRO_EXEC/REPRO_TRACE)",
        DeprecationWarning,
        stacklevel=3,
    )


class CMPSystem:
    """One simulated CMP running one program per logical processor."""

    def __init__(
        self,
        config: SystemConfig,
        programs: Sequence[Program],
        itlb_schedules: Sequence[ITLBSchedule | None] | None = None,
        kernel: str | None = None,
        execution: str | None = None,
        options: SimOptions | None = None,
    ) -> None:
        if options is None:
            # Legacy construction path: per-knob kwargs with env
            # fallbacks.  SimOptions.from_env is the single resolver —
            # explicit kwargs override REPRO_KERNEL/REPRO_EXEC exactly
            # as they always did.
            if kernel is not None or execution is not None:
                _warn_legacy_kwargs()
            options = SimOptions.from_env(kernel=kernel, execution=execution)
        elif kernel is not None or execution is not None:
            raise ValueError(
                "pass kernel/execution inside SimOptions, not alongside options="
            )
        #: The resolved run options (see :class:`repro.sim.options.SimOptions`).
        self.options = options
        #: Simulation kernel: ``"event"`` skips cycles in which no
        #: component can act (bit-identical to per-cycle execution by the
        #: conservative next_event() contract); ``"naive"`` steps every
        #: cycle.
        self.kernel = options.kernel
        #: Execution mode for Reunion pairs: ``"replay"`` opens a mirror
        #: window from reset — the mute is a provably identical copy of
        #: the vocal until the first asymmetry trigger, at which point its
        #: state is materialized and the pair falls back to dual execution
        #: permanently (see repro.core.mirror); ``"dual"`` always
        #: re-executes everything on the mute.
        self.execution = options.execution
        execution = options.execution
        if len(programs) != config.n_logical:
            raise ValueError(
                f"need {config.n_logical} programs, got {len(programs)}"
            )
        if itlb_schedules is None:
            itlb_schedules = [None] * config.n_logical
        if len(itlb_schedules) != config.n_logical:
            raise ValueError("need one ITLB schedule (or None) per logical processor")

        self.config = config
        self.stats = Stats()
        self.now = 0
        #: Cycles actually stepped (vs. skipped).  Diagnostic only — the
        #: skip ratio ``1 - steps/now`` differs between kernels, so this
        #: must never be folded into :class:`Stats`.
        self.steps = 0

        mode = config.redundancy.mode
        self.memory = MainMemory(config.memory.latency, config.l2.line_bytes)
        merged_image: dict[int, int] = {}
        for program in programs:
            merged_image.update(program.memory_image)
        self.memory.load_image(merged_image)

        if config.cache_style is CacheStyle.SNOOPY:
            # Private caches: the bus snoops, the banked home-node
            # directories scale (see docs/ARCHITECTURE.md, "Memory
            # system backends").
            if config.bus.coherence is CoherenceStyle.DIRECTORY:
                self.controller = DirectoryBackend(
                    config.bus, self.memory, self.stats
                )
            else:
                self.controller = SnoopyBus(config.bus, self.memory, self.stats)
        else:
            l2_config = config.l2
            if mode is Mode.REUNION:
                # The paper assumes on-chip cache bandwidth scales with
                # the core count (Section 5).
                l2_config = dataclasses.replace(l2_config, banks=2 * l2_config.banks)
            self.controller = SharedL2Controller(l2_config, self.memory, self.stats)

        self.cores: list[OoOCore] = []
        self.pairs: list[LogicalPair] = []
        self.vocal_cores: list[OoOCore] = []

        #: Effective per-pair protection policies (REUNION only; empty
        #: otherwise).  One resolution point: explicit
        #: ``config.pair_policies`` win, else every pair is ``full`` with
        #: the replay bit taken from ``options.execution`` — the unified
        #: API behind the legacy ``execution=``/``REPRO_EXEC`` knobs.
        self.pair_policies = (
            resolve_pair_policies(config, execution)
            if mode is Mode.REUNION
            else ()
        )

        n = config.n_logical
        for logical in range(n):
            port = CoreMemPort(
                logical,
                config.l1,
                config.tlb,
                self.controller,
                self.stats,
                is_mute=False,
                phantom=config.redundancy.phantom,
            )
            if mode is Mode.STRICT:
                gate = StrictCheckGate(config.redundancy)
            else:
                gate = ImmediateGate()
            core = OoOCore(
                logical,
                config,
                programs[logical],
                port,
                gate=gate,
                synthetic_itlb=itlb_schedules[logical],
            )
            self.cores.append(core)
            self.vocal_cores.append(core)

        if mode is Mode.REUNION:
            for logical in range(n):
                mute_id = n + logical
                port = CoreMemPort(
                    mute_id,
                    config.l1,
                    config.tlb,
                    self.controller,
                    self.stats,
                    is_mute=True,
                    phantom=config.redundancy.phantom,
                )
                mute = OoOCore(
                    mute_id,
                    config,
                    programs[logical],
                    port,
                    synthetic_itlb=itlb_schedules[logical],
                )
                self.cores.append(mute)
                policy = self.pair_policies[logical]
                if policy.mode == "little-mute":
                    mute.set_issue_width(policy.mute_width)
                pair = LogicalPair(
                    logical,
                    self.vocal_cores[logical],
                    mute,
                    self.controller,
                    config,
                    policy=policy,
                )
                self.pairs.append(pair)

        if options.hotloop == "soa":
            # Structure-of-arrays hot loop: pre-decode each program once
            # into flat tables and rebind ``core.step`` to the fused fast
            # path (see repro.isa.decode and OoOCore.use_soa_hotloop).
            # Bit-identical to the object loop; REPRO_HOTLOOP=object
            # keeps the reference implementation selectable.
            for core in self.cores:
                core.use_soa_hotloop()

        #: Armed telemetry (see :mod:`repro.obs`), or None when off.  The
        #: zero-cost-when-off contract: every emitting site holds this
        #: same reference (or None) and tests it once; a disarmed run
        #: allocates nothing and stays bit-identical.
        self.obs = None
        if options.telemetry_armed:
            from repro.obs.events import Telemetry

            self.obs = Telemetry(
                level=options.trace,
                capacity=options.trace_capacity,
                fingerprint_bits=config.redundancy.fingerprint_bits,
            )
            self.controller.obs = self.obs
            for core in self.cores:
                core.obs = self.obs
            for pair in self.pairs:
                pair.obs = self.obs
                for paired_core in (pair.vocal, pair.mute):
                    paired_core.gate.obs = self.obs
                    paired_core.gate.obs_source = f"core{paired_core.core_id}"

        if mode is Mode.REUNION:
            # A mirror window covers only the symmetric prefix before the
            # pair's first memory access: in-window the pair touches no
            # shared structure at all, so skipping the mute is invisible
            # to every other pair under any coherence backend.  Arming is
            # therefore safe per-pair even on MANYCORE systems; each pair
            # falls back to dual execution at its own first trigger.
            # Only full-policy pairs with the replay bit set ever mirror
            # (a heterogeneous pair is not a symmetric automaton pair;
            # partial pairs keep real gates driving the skip schedule).
            for pair in self.pairs:
                if pair.policy.mode == "full" and pair.policy.replay:
                    pair.enable_replay()

    # -- simulation loop ----------------------------------------------------
    def step(self) -> None:
        """Advance exactly one cycle (the public per-cycle API)."""
        self.steps += 1
        now = self.now
        for core in self.cores:
            if core.mirror_passive:
                # A mirrored mute is a virtual copy of its vocal; its
                # state is materialized by the pair at window exit.
                continue
            core.step(now)
        for pair in self.pairs:
            pair.step(now)
        self.now = now + 1

    def _step_event(self) -> None:
        """One cycle of the event kernel, with per-core skip caches.

        :meth:`step` is the reference per-cycle loop; this one skips any
        core whose cached ``next_event`` horizon proves the cycle is a
        no-op for it, applying only the unconditional cycle-counter
        increment a real step would have performed.  The cache is
        refreshed after every real step and reset to 0 by every path
        that mutates a core from outside ``step`` (see
        ``OoOCore._skip_until``), so a stale horizon can never hide
        work.  Unlike :meth:`_advance`, this skips *per core*: one busy
        core no longer forces every stalled core through a no-op step.
        """
        self.steps += 1
        now = self.now
        for core in self.cores:
            if core.mirror_passive:
                continue
            if core._skip_until > now:
                core.cycles += 1
                continue
            core.step(now)
            core._skip_until = core.next_event(now + 1)
        for pair in self.pairs:
            pair.step(now)
        self.now = now + 1

    def _advance(self, limit: int) -> None:
        """Skip directly to the next cycle at which any component can act.

        Computes the minimum conservative ``next_event`` horizon over all
        cores, pairs and the memory controller, clamps it to ``limit``,
        and jumps ``now`` there without stepping anything.  Skipped cycles
        are by construction no-ops, so the only bookkeeping is each
        core's per-cycle counter (``step`` increments it unconditionally).
        Leaves ``now`` unchanged when the very next cycle is active.
        """
        now = self.now
        horizon = limit
        for core in self.cores:
            if core.mirror_passive:
                # Not stepped: its stale state must not be polled (it
                # would report spurious activity and kill every skip).
                continue
            t = core._skip_until
            if t <= now:
                # Cache expired: recompute and refresh it, so the
                # per-core loop in _step_event benefits too.
                t = core.next_event(now)
                if t <= now:
                    return
                core._skip_until = t
            if t < horizon:
                horizon = t
        for pair in self.pairs:
            t = pair.next_event(now)
            if t <= now:
                return
            if t < horizon:
                horizon = t
        t = self.controller.next_event(now)
        if t <= now:
            return
        if t < horizon:
            horizon = t
        delta = horizon - now
        if delta <= 0:
            return
        for core in self.cores:
            core.cycles += delta
        self.now = horizon

    def _observe_step(self) -> None:
        """Post-step telemetry bookkeeping (armed runs only).

        Keeps :attr:`Telemetry.last_cycle` current for emitters below
        the timing layer, and cuts a metrics row whenever ``now``
        crosses the sampler's next interval boundary.  Read-only with
        respect to simulator state — armed runs stay bit-identical.
        """
        obs = self.obs
        obs.last_cycle = self.now
        if self.now >= obs.metrics.next_sample_at:
            obs.metrics.sample(self, self.now)

    def run(self, cycles: int) -> None:
        """Advance the system by exactly ``cycles`` cycles."""
        end = self.now + cycles
        observing = self.obs is not None
        if self.kernel == "naive":
            while self.now < end:
                self.step()
                if observing:
                    self._observe_step()
        else:
            # External callers may have mutated cores between runs
            # (armed hooks, posted interrupts): start from fresh
            # horizons.
            for core in self.cores:
                core._skip_until = 0
            while self.now < end:
                self._advance(end)
                if self.now >= end:
                    break
                self._step_event()
                if observing:
                    self._observe_step()
        self._mirror_sync()

    def run_until_idle(self, max_cycles: int | None = None) -> int:
        """Run until every logical processor has halted; returns cycles.

        ``max_cycles`` defaults to ``options.max_cycles``.  Skips are
        clamped at the bound so the timeout fires at the identical cycle
        count as the naive per-cycle loop.
        """
        if max_cycles is None:
            max_cycles = self.options.max_cycles
        skipping = self.kernel == "event"
        observing = self.obs is not None
        if skipping:
            for core in self.cores:
                core._skip_until = 0
        while not self.idle:
            if self.now >= max_cycles:
                raise RuntimeError(f"system did not halt within {max_cycles} cycles")
            if skipping:
                self._advance(max_cycles)
                if self.now >= max_cycles:
                    continue  # re-check idle, then raise at max_cycles
                self._step_event()
            else:
                self.step()
            if observing:
                self._observe_step()
        self._mirror_sync()
        return self.now

    def _mirror_sync(self) -> None:
        """Bring mirrored mute cores' observable counters up to date.

        Called whenever control returns to the caller, who may read
        per-core statistics or architectural state directly while a
        mirror window is still open.
        """
        for pair in self.pairs:
            pair.mirror_sync()

    @property
    def idle(self) -> bool:
        if any(pair.failed for pair in self.pairs):
            return True
        return all(core.idle for core in self.vocal_cores)

    @property
    def failed(self) -> bool:
        return any(pair.failed for pair in self.pairs)

    # -- external interrupts -----------------------------------------------------
    def post_interrupt(self, logical_id: int, handler=None) -> int:
        """Deliver an external interrupt to one logical processor.

        In Reunion mode the request is replicated to both cores of the
        pair and aligned on a fingerprint-interval boundary; otherwise
        the single core services it after its in-flight window drains.
        """
        for pair in self.pairs:
            if pair.pair_id == logical_id:
                return pair.post_interrupt(handler)
        from repro.core.pair import default_interrupt_handler

        core = self.vocal_cores[logical_id]
        target = core.user_retired + self.config.core.rob_size
        core.schedule_interrupt(target, handler or default_interrupt_handler())
        return target

    # -- dual-use reconfiguration -------------------------------------------------
    def decouple(self, logical_id: int, program: Program) -> OoOCore:
        """Split a Reunion pair into two independent logical processors.

        The paper's introduction motivates a dual-use design: "a single
        design can provide a dual-use capability by supporting both
        redundant and non-redundant execution."  The pair is quiesced at
        its last compared instruction; the vocal continues its program
        without checking, and the freed mute core is promoted to vocal,
        its (potentially incoherent) L1 discarded, and started on
        ``program``.  Returns the promoted core.
        """
        pair = self._pair_for(logical_id)
        pair.disable_replay()
        now = self.now
        vocal, mute = pair.vocal, pair.mute
        # Quiesce at the last compared instruction (safe state).
        vocal.drain_cleared(now)
        mute.drain_cleared(now)
        resume = vocal.next_retire_pc()
        penalty = self.config.redundancy.rollback_penalty
        vocal.flush_for_recovery(resume, now, penalty)

        # The vocal becomes a plain, unchecked core.
        vocal.gate = ImmediateGate()
        vocal.pair_sync_atomics = False

        # The mute is promoted: wipe incoherent cache state, rejoin the
        # coherence protocol, and start the new program.  Undo any
        # policy shaping: a parked (unprotected) mute re-enters the step
        # loop, a little mute gets its full issue width back.
        mute.mirror_passive = False
        mute.set_issue_width(self.config.core.width)
        mute.port.l1.clear()
        mute.port.mshrs.clear()
        mute.port.is_mute = False
        self.controller.set_role(mute.core_id, is_mute=False)
        self.controller.install_image(program.memory_image)
        mute.hard_reset(program, now)
        mute.gate = ImmediateGate()
        mute.pair_sync_atomics = False
        mute.synthetic_itlb = None  # the new program has its own TLB character

        vocal.pair = None
        mute.pair = None
        self.pairs.remove(pair)
        self.vocal_cores.append(mute)
        return mute

    def couple(self, logical_id: int, partner: OoOCore) -> LogicalPair:
        """Re-form a logical pair: ``partner`` becomes the mute again.

        The partner's current work is abandoned; it is demoted out of the
        coherence protocol (dirty lines written back first), initialized
        from the vocal's architectural state, and redundant execution
        resumes from the vocal's next instruction.
        """
        vocal = self.vocal_cores[logical_id]
        if partner is vocal or any(p.vocal is partner or p.mute is partner for p in self.pairs):
            raise ValueError("partner core is not available for coupling")
        now = self.now

        # Demote the partner: leave the directory cleanly.
        for line_addr in partner.port.l1.resident_lines():
            line = partner.port.l1.invalidate(line_addr)
            self.controller.vocal_evict(
                partner.core_id, line_addr, line.data, line.dirty
            )
        partner.port.mshrs.clear()
        partner.port.is_mute = True
        self.controller.set_role(partner.core_id, is_mute=True)

        # Quiesce the vocal and initialize the mute from its safe state.
        vocal.drain_cleared(now)
        resume = vocal.next_retire_pc()
        penalty = (
            self.config.redundancy.rollback_penalty
            + self.config.redundancy.arf_copy_latency
        )
        vocal.flush_for_recovery(resume, now, penalty)
        partner.hard_reset(vocal.program, now)
        partner.arf.copy_from(vocal.arf)
        partner.pc = resume
        partner.synthetic_itlb = vocal.synthetic_itlb
        partner.stall_fetch_until = max(partner.stall_fetch_until, now + penalty)

        # A re-formed pair stays in dual execution: mirror windows only
        # arm from pristine reset state (see LogicalPair.enable_replay),
        # and this pair resumes mid-program.  It re-adopts the logical
        # slot's resolved protection policy (little-mute narrowing
        # included).
        policy = (
            self.pair_policies[logical_id]
            if logical_id < len(self.pair_policies)
            else None
        )
        if policy is not None and policy.mode == "little-mute":
            partner.set_issue_width(policy.mute_width)
        pair = LogicalPair(
            logical_id, vocal, partner, self.controller, self.config, policy=policy
        )
        if partner in self.vocal_cores:
            self.vocal_cores.remove(partner)
        self.pairs.append(pair)
        return pair

    def _pair_for(self, logical_id: int) -> LogicalPair:
        for pair in self.pairs:
            if pair.pair_id == logical_id:
                return pair
        raise KeyError(f"no active pair for logical processor {logical_id}")

    # -- metrics ---------------------------------------------------------------
    def user_instructions(self) -> int:
        """Aggregate user instructions committed (the paper's throughput metric)."""
        return sum(core.user_retired for core in self.vocal_cores)

    def ipc(self) -> float:
        return self.user_instructions() / self.now if self.now else 0.0

    def recoveries(self) -> int:
        return sum(pair.recoveries for pair in self.pairs)

    def tlb_misses(self) -> int:
        """Data + (synthetic) instruction TLB misses on the vocal cores."""
        return sum(core.dtlb_misses + core.itlb_misses for core in self.vocal_cores)

    def collect_stats(self) -> Stats:
        """Fold per-core counters into the shared Stats bag and return it.

        :class:`Stats` is the *architectural* record: every counter in it
        must be bit-identical across simulation strategies (naive/event
        kernel, dual/replay execution, telemetry on/off), because the
        differential tests compare whole snapshots.  Strategy-dependent
        diagnostics — :attr:`steps`, ``pair.mirror_cycles``, anything in
        :mod:`repro.obs` — must therefore never be folded in here.
        ``tests/sim/test_stats_diagnostics.py`` asserts the exclusion.
        """
        self._mirror_sync()
        for core in self.cores:
            prefix = f"core{core.core_id}."
            self.stats.set(prefix + "cycles", core.cycles)
            self.stats.set(prefix + "user_retired", core.user_retired)
            self.stats.set(prefix + "total_retired", core.total_retired)
            self.stats.set(prefix + "injected_retired", core.injected_retired)
            self.stats.set(prefix + "dtlb_misses", core.dtlb_misses)
            self.stats.set(prefix + "itlb_misses", core.itlb_misses)
            self.stats.set(prefix + "mispredicts", core.mispredicts)
            self.stats.set(prefix + "serializing_retired", core.serializing_retired)
        for pair in self.pairs:
            pair.collect_stats(self.stats)
        self.stats.set("system.cycles", self.now)
        self.stats.set("system.user_instructions", self.user_instructions())
        return self.stats
