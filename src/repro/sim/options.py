"""SimOptions: the one place simulation-run knobs are resolved.

Historically every knob arrived by a different route: ``kernel`` and
``execution`` were :class:`~repro.sim.cmp.CMPSystem` keyword arguments
with ``REPRO_KERNEL`` / ``REPRO_EXEC`` fallbacks read inside the
constructor, the run-length bound was a ``run_until_idle`` parameter,
and there was no telemetry switch at all.  :class:`SimOptions` collects
them into one frozen object with a single environment resolver,
:meth:`SimOptions.from_env`, so CLI commands, the experiment harness and
tests all agree on what a "default" run is.

Field semantics:

* ``kernel`` / ``execution`` select *how* the simulation is computed,
  never *what* it computes — both carry a bit-identity contract (see
  docs/ARCHITECTURE.md, "Simulation kernel" and "Execution modes")
  enforced by differential tests and every ``repro bench`` run.
* ``trace`` arms the :mod:`repro.obs` telemetry subsystem.  Telemetry
  observes and never mutates, so it is likewise contracted to leave
  results bit-identical (enforced by ``tests/sim/test_telemetry.py`` and
  the bench telemetry comparison).
* ``max_cycles`` bounds ``run_until_idle``; ``seed`` is the workload
  seed CLI commands thread through to program generation.

Because every current field is result-neutral by contract (``seed``
participates in results, but travels as its own explicit argument —
:class:`~repro.exec.jobs.SampleJob` carries it as a first-class field),
:func:`options_key_payload` deliberately contributes nothing to job
content-hash keys.  If a future field *does* change results, it must be
added there (and tested in ``tests/exec/test_jobs.py``).

The memory-backend selector is the counter-example that proves the
rule: ``REPRO_COHERENCE`` (shared / snoopy / directory) *does* change
results, so it is resolved at config level —
:func:`repro.sim.config.apply_env_coherence` rewrites the hashed
:class:`~repro.sim.config.SystemConfig` itself — and never appears
here.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Mapping

from repro.sim.config import ProtectionPolicy

#: Telemetry levels, weakest to strongest.  Each level includes the
#: previous one:
#:
#: * ``off``     — telemetry object not even constructed; zero cost.
#: * ``metrics`` — per-interval time series only (no event records).
#: * ``events``  — ring-buffered records of the rare, load-bearing
#:   events (fingerprint comparisons, recoveries, synchronizing and
#:   phantom requests, mirror windows, fault injections).
#: * ``full``    — adds the high-frequency diagnostics (per-interval
#:   fingerprint closes, cache evictions / dropped mute writebacks).
TRACE_LEVELS = ("off", "metrics", "events", "full")

_KERNELS = ("event", "naive")
_EXECUTIONS = ("replay", "dual")
_HOTLOOPS = ("soa", "object")


@dataclass(frozen=True)
class SimOptions:
    """Everything about a simulation run that is not the system config.

    :class:`~repro.sim.config.SystemConfig` describes the simulated
    *machine*; ``SimOptions`` describes the *simulation* of it — which
    kernel computes it, whether the mute replays, how much telemetry to
    record, how long to run.  Frozen and hashable, so it can ride along
    in job descriptors and across process boundaries.
    """

    kernel: str = "event"
    execution: str = "replay"
    hotloop: str = "soa"  # core stepping implementation (bit-identical pair)
    trace: str = "off"
    trace_capacity: int = 65_536  # event ring-buffer size (records)
    max_cycles: int = 1_000_000  # run_until_idle bound
    seed: int = 0  # workload seed (CLI convenience)
    #: How fully-protected pairs are *executed* (replay fast path vs
    #: plain dual stepping).  ``None`` derives it from ``execution``,
    #: so after construction it is never ``None``.  Only ``full`` is
    #: legal here: partial/heterogeneous policies change results and
    #: therefore live on the hashed
    #: :attr:`~repro.sim.config.SystemConfig.pair_policies`, not on
    #: options.  When set, ``protection`` wins over ``execution``
    #: (``ProtectionPolicy.full(replay=True)`` ≡ ``execution="replay"``).
    protection: ProtectionPolicy | None = None

    def __post_init__(self) -> None:
        if self.kernel not in _KERNELS:
            raise ValueError(
                f"unknown simulation kernel {self.kernel!r}; use 'event' or 'naive'"
            )
        if self.execution not in _EXECUTIONS:
            raise ValueError(
                f"unknown execution mode {self.execution!r}; use 'replay' or 'dual'"
            )
        if self.protection is not None:
            if self.protection.mode != "full":
                raise ValueError(
                    f"SimOptions.protection must be a 'full' policy, got "
                    f"{self.protection.mode!r}: partial and heterogeneous "
                    "policies are result-affecting and belong on "
                    "SystemConfig.pair_policies (the hashed config)"
                )
            object.__setattr__(
                self,
                "execution",
                "replay" if self.protection.replay else "dual",
            )
        else:
            object.__setattr__(
                self,
                "protection",
                ProtectionPolicy(
                    mode="full", replay=(self.execution == "replay")
                ),
            )
        if self.hotloop not in _HOTLOOPS:
            raise ValueError(
                f"unknown hot loop {self.hotloop!r}; use 'soa' or 'object'"
            )
        if self.trace not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace level {self.trace!r}; use one of {TRACE_LEVELS}"
            )
        if self.trace_capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")

    @property
    def telemetry_armed(self) -> bool:
        return self.trace != "off"

    def replace(self, **kwargs: Any) -> "SimOptions":
        return dataclasses.replace(self, **kwargs)

    @classmethod
    def from_env(
        cls, env: Mapping[str, str] | None = None, **overrides: Any
    ) -> "SimOptions":
        """Resolve options from the environment, explicit values winning.

        The *only* place ``REPRO_KERNEL`` / ``REPRO_EXEC`` /
        ``REPRO_HOTLOOP`` / ``REPRO_TRACE`` / ``REPRO_TRACE_CAPACITY``
        are consulted.
        ``overrides`` mirror the dataclass fields; ``None`` values mean
        "not specified" and fall through to the environment (and from
        there to the field default), so argparse results can be passed
        straight in.
        """
        if env is None:
            env = os.environ
        # Empty strings mean "unset" (a CI matrix leg that doesn't pin a
        # knob exports the variable as "") — same convention as
        # REPRO_COHERENCE in repro.sim.config.
        values: dict[str, Any] = {
            "kernel": env.get("REPRO_KERNEL") or cls.kernel,
            "execution": env.get("REPRO_EXEC") or cls.execution,
            "hotloop": env.get("REPRO_HOTLOOP") or cls.hotloop,
            "trace": env.get("REPRO_TRACE") or cls.trace,
        }
        capacity = env.get("REPRO_TRACE_CAPACITY", "").strip()
        if capacity:
            values["trace_capacity"] = int(capacity)
        values.update(
            {name: value for name, value in overrides.items() if value is not None}
        )
        return cls(**values)


def options_key_payload(options: SimOptions | None) -> dict[str, Any]:
    """The result-affecting projection of ``options`` for job hashing.

    Telemetry is excluded *by design* (it must never change results —
    ``tests/exec/test_jobs.py`` pins this), and ``kernel`` /
    ``execution`` / ``hotloop`` are excluded by their bit-identity
    contracts: a sample is the same sample however it was computed, so a
    cache populated under ``REPRO_EXEC=dual`` serves ``replay`` runs,
    one populated under ``REPRO_HOTLOOP=object`` serves ``soa`` runs,
    and vice versa.  ``protection`` is constrained to ``full``-mode
    policies exactly so it stays inside that contract (its only degree
    of freedom is the replay bit); the result-affecting policy axis is
    :attr:`~repro.sim.config.SystemConfig.pair_policies`, which is
    hashed via :func:`~repro.exec.jobs.config_payload`.
    ``max_cycles`` and ``seed`` are not consumed by
    :func:`~repro.sim.sampling.run_sample` (windows and seed are
    explicit :class:`~repro.exec.jobs.SampleJob` fields).  The payload
    is therefore empty today; any future result-affecting option MUST
    be added here, with a key-change test.
    """
    return {}
