"""Sampling methodology: warmed measurements and matched-pair comparison.

The paper (Section 5, citing SimFlex [24]) launches many brief
measurements from checkpoints with warmed caches, runs 100K cycles of
pipeline warm-up and 50K cycles of measurement, and reports performance
changes with 95% confidence intervals using matched-pair comparison.

This module reproduces that methodology at configurable scale: each
*sample* builds a system, runs ``warmup`` cycles unmeasured, then
``measure`` cycles measured; matched pairs share the workload seed so the
base and test systems execute the same programs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.sim.cmp import CMPSystem
from repro.sim.config import SystemConfig
from repro.sim.options import SimOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.base import Workload

#: Generated programs/schedules per (workload, n_logical, seed), keyed by
#: workload *identity* (Workload defines no __eq__).  The contract on
#: :meth:`Workload.programs` — deterministic in ``seed`` — makes reuse
#: result-neutral, and a bench phase asks for the same generation three
#: times (once per redundancy mode), so this removes a third or more of
#: quick-scale wall time.  Programs are immutable to the simulator (the
#: per-``Program`` decode cache is additive and deterministic) and ITLB
#: schedules are pure functions of the retired-instruction index, so
#: sharing across systems cannot couple their results.
_generation_memo: dict = {}


def _generated(workload: "Workload", n_logical: int, seed: int):
    key = (workload, n_logical, seed)
    entry = _generation_memo.get(key)
    if entry is None:
        entry = (
            workload.programs(n_logical, seed),
            workload.itlb_schedules(n_logical, seed),
        )
        _generation_memo[key] = entry
    return entry


@dataclass(frozen=True)
class Sample:
    """Measurements from one warmed simulation window."""

    cycles: int
    user_instructions: int
    recoveries: int
    tlb_misses: int
    sync_requests: int
    serializing: int

    @property
    def ipc(self) -> float:
        return self.user_instructions / self.cycles if self.cycles else 0.0

    @property
    def incoherence_per_minstr(self) -> float:
        """Input-incoherence events per million retired user instructions."""
        if not self.user_instructions:
            return 0.0
        return 1e6 * self.recoveries / self.user_instructions

    @property
    def tlb_misses_per_minstr(self) -> float:
        if not self.user_instructions:
            return 0.0
        return 1e6 * self.tlb_misses / self.user_instructions


def run_sample(
    config: SystemConfig,
    workload: "Workload",
    warmup: int,
    measure: int,
    seed: int = 0,
    options: SimOptions | None = None,
) -> Sample:
    """Build a system for ``workload`` and measure one window."""
    sample, _system = run_sample_system(config, workload, warmup, measure, seed, options)
    return sample


def run_sample_system(
    config: SystemConfig,
    workload: "Workload",
    warmup: int,
    measure: int,
    seed: int = 0,
    options: SimOptions | None = None,
) -> tuple[Sample, CMPSystem]:
    """:func:`run_sample`, also returning the finished system.

    The system gives callers access to post-run diagnostics — notably
    armed telemetry (``system.obs``) for ``repro trace``.  The sample is
    bit-identical to :func:`run_sample`'s regardless of ``options``
    (kernel/execution/telemetry are all result-neutral by contract).
    """
    programs, schedules = _generated(workload, config.n_logical, seed)
    system = CMPSystem(config, programs, schedules, options=options)
    system.run(warmup)

    start_users = system.user_instructions()
    start_recoveries = system.recoveries()
    start_tlb = system.tlb_misses()
    start_sync = sum(p.sync_requests for p in system.pairs)
    start_ser = sum(c.serializing_retired for c in system.vocal_cores)

    system.run(measure)
    sample = Sample(
        cycles=measure,
        user_instructions=system.user_instructions() - start_users,
        recoveries=system.recoveries() - start_recoveries,
        tlb_misses=system.tlb_misses() - start_tlb,
        sync_requests=sum(p.sync_requests for p in system.pairs) - start_sync,
        serializing=sum(c.serializing_retired for c in system.vocal_cores) - start_ser,
    )
    return sample, system


@dataclass(frozen=True)
class MatchedPairResult:
    """Normalized performance with a confidence interval."""

    mean: float  # mean of per-seed IPC ratios (test / base)
    half_interval: float  # 95% CI half-width
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_interval:.3f} (n={self.n})"


#: Two-sided 97.5% Student-t quantiles for small sample counts; the
#: normal value (1.96) serves beyond the table.
_T_975 = {1: 12.71, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def matched_pair(base: Sequence[Sample], test: Sequence[Sample]) -> MatchedPairResult:
    """95% CI on the mean IPC ratio across matched (same-seed) samples."""
    if len(base) != len(test) or not base:
        raise ValueError("matched-pair comparison needs equal, nonzero sample counts")
    ratios = []
    for b, t in zip(base, test):
        if b.ipc == 0:
            raise ValueError("base sample has zero IPC; widen the window")
        ratios.append(t.ipc / b.ipc)
    n = len(ratios)
    mean = sum(ratios) / n
    if n == 1:
        return MatchedPairResult(mean, float("nan"), 1)
    variance = sum((r - mean) ** 2 for r in ratios) / (n - 1)
    t_quantile = _T_975.get(n - 1, 1.96)
    half = t_quantile * math.sqrt(variance / n)
    return MatchedPairResult(mean, half, n)


def normalized_ipc(
    base_config: SystemConfig,
    test_config: SystemConfig,
    workload: "Workload",
    warmup: int,
    measure: int,
    seeds: Sequence[int] = (0,),
) -> MatchedPairResult:
    """Matched-pair normalized IPC of ``test_config`` against ``base_config``."""
    base = [run_sample(base_config, workload, warmup, measure, seed) for seed in seeds]
    test = [run_sample(test_config, workload, warmup, measure, seed) for seed in seeds]
    return matched_pair(base, test)
