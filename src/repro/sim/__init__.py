"""Simulation kernel: configuration, statistics, engine, CMP assembly."""

from repro.sim.config import (
    BusConfig,
    CacheStyle,
    DEFAULT_CONFIG,
    PAPER_TABLE1,
    Consistency,
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    Mode,
    PhantomStrength,
    RedundancyConfig,
    SystemConfig,
    TLBConfig,
    TLBMode,
)
from repro.sim.stats import Stats

__all__ = [
    "BusConfig",
    "CacheStyle",
    "Consistency",
    "CoreConfig",
    "DEFAULT_CONFIG",
    "L1Config",
    "L2Config",
    "MemoryConfig",
    "Mode",
    "PAPER_TABLE1",
    "PhantomStrength",
    "RedundancyConfig",
    "Stats",
    "SystemConfig",
    "TLBConfig",
    "TLBMode",
]
