"""System configuration dataclasses (the reproduction's Table 1).

Two presets are provided:

* :data:`PAPER_TABLE1` — the paper's exact CMP parameters (Table 1).
  Faithful, but a pure-Python simulation of 16 MB caches and 150K-cycle
  samples is slow; use it when fidelity matters more than wall clock.
* :data:`DEFAULT_CONFIG` — a scaled-down system that preserves the
  *ratios* driving the paper's effects (L1 much smaller than commercial
  working sets, L2 hit latency much larger than L1, memory much larger
  than L2) so the reproduced figures keep their shape at laptop scale.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


class Mode(enum.Enum):
    """Redundancy execution model of a simulated system."""

    NONREDUNDANT = "nonredundant"
    STRICT = "strict"  # oracle strict input replication (Section 5.1)
    REUNION = "reunion"


class PhantomStrength(enum.Enum):
    """Phantom request strengths from Section 4.2 of the paper."""

    NULL = "null"  # arbitrary data on any mute L1 miss
    SHARED = "shared"  # check shared L2; arbitrary data on L2 miss
    GLOBAL = "global"  # check L2, vocal L1s, and main memory


class Consistency(enum.Enum):
    """Memory consistency model (Section 5.5)."""

    TSO = "tso"  # total store order: store buffer drains in order
    SC = "sc"  # sequential consistency: every store serializes retirement


class TLBMode(enum.Enum):
    """TLB-miss handling (Section 5.5, Figure 7(b))."""

    HARDWARE = "hardware"  # hardware walker: fill latency only
    SOFTWARE = "software"  # UltraSPARC-style handler: traps + MMU ops


class CacheStyle(enum.Enum):
    """On-chip memory organization (Section 4.1).

    The paper's primary design uses a Piranha-style shared cache with a
    directory at the shared controller; it notes the execution model
    "can also be implemented at a snoopy cache interface for
    microarchitectures with private caches, such as Montecito."
    """

    SHARED = "shared"  # shared L2 + directory (the paper's main design)
    SNOOPY = "snoopy"  # private caches on a snoopy bus (Montecito-style)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters."""

    width: int = 4  # dispatch/retire width
    rob_size: int = 256  # RUU entries
    store_buffer_size: int = 64
    frontend_latency: int = 6  # fetch-to-dispatch stages (mispredict penalty)
    load_ports: int = 2
    alu_latency: int = 1
    mul_latency: int = 3
    mmuop_latency: int = 15  # non-idempotent (uncached) MMU access
    fetch_queue_size: int = 32
    branch_predictor_entries: int = 1024

    def __post_init__(self) -> None:
        if self.width < 1 or self.rob_size < self.width:
            raise ValueError("need width >= 1 and rob_size >= width")
        if self.store_buffer_size < 1:
            raise ValueError("store buffer must hold at least one store")


@dataclass(frozen=True)
class L1Config:
    """Private write-back L1 data cache parameters."""

    size_bytes: int = 64 * 1024
    assoc: int = 2
    line_bytes: int = 64
    load_to_use: int = 2
    mshrs: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("L1 size must be a multiple of assoc * line size")


@dataclass(frozen=True)
class L2Config:
    """Shared L2 cache / controller parameters."""

    size_bytes: int = 16 * 1024 * 1024
    assoc: int = 8
    line_bytes: int = 64
    banks: int = 4
    hit_latency: int = 35
    bank_occupancy: int = 4  # cycles a bank stays busy per access
    mshrs: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("L2 size must be a multiple of assoc * line size")
        if self.banks < 1:
            raise ValueError("need at least one bank")


@dataclass(frozen=True)
class BusConfig:
    """Snoopy-bus parameters (used when ``cache_style`` is SNOOPY)."""

    snoop_latency: int = 15  # address phase + snoop response
    transfer_latency: int = 25  # cache-to-cache data transfer
    bus_occupancy: int = 4  # cycles the bus is held per transaction
    mshrs: int = 16

    def __post_init__(self) -> None:
        if self.snoop_latency < 1 or self.transfer_latency < 1:
            raise ValueError("bus latencies must be positive")


@dataclass(frozen=True)
class TLBConfig:
    """ITLB/DTLB parameters."""

    itlb_entries: int = 128
    dtlb_entries: int = 512
    assoc: int = 2
    page_bits: int = 13  # 8 KB pages
    mode: TLBMode = TLBMode.HARDWARE
    hw_fill_latency: int = 30


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory parameters."""

    latency: int = 240  # 60 ns at 4 GHz


@dataclass(frozen=True)
class RedundancyConfig:
    """Reunion / redundant-execution parameters (Sections 3-4)."""

    mode: Mode = Mode.NONREDUNDANT
    comparison_latency: int = 10  # one-way fingerprint latency between cores
    fingerprint_interval: int = 1  # instructions per fingerprint
    fingerprint_bits: int = 16  # CRC width
    two_stage_compression: bool = True
    phantom: PhantomStrength = PhantomStrength.GLOBAL
    arf_copy_latency: int = 64  # phase-2 vocal->mute register copy cost
    rollback_penalty: int = 8  # pipeline flush cost on recovery
    divergence_timeout: int = 10_000  # watchdog: max cycles of pair skew

    def __post_init__(self) -> None:
        if self.comparison_latency < 0:
            raise ValueError("comparison latency cannot be negative")
        if self.fingerprint_interval < 1:
            raise ValueError("fingerprint interval must be >= 1")
        if not 4 <= self.fingerprint_bits <= 64:
            raise ValueError("fingerprint width must be in [4, 64] bits")


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated CMP."""

    n_logical: int = 4  # logical processors (pairs in redundant modes)
    core: CoreConfig = CoreConfig()
    l1: L1Config = L1Config()
    l2: L2Config = L2Config()
    bus: BusConfig = BusConfig()
    tlb: TLBConfig = TLBConfig()
    memory: MemoryConfig = MemoryConfig()
    redundancy: RedundancyConfig = RedundancyConfig()
    consistency: Consistency = Consistency.TSO
    cache_style: CacheStyle = CacheStyle.SHARED

    @property
    def n_cores(self) -> int:
        """Physical cores: redundant modes pair a vocal and a mute."""
        if self.redundancy.mode is Mode.REUNION:
            return 2 * self.n_logical
        return self.n_logical

    def with_redundancy(self, **kwargs) -> "SystemConfig":
        """Return a copy with redundancy parameters replaced."""
        return dataclasses.replace(
            self, redundancy=dataclasses.replace(self.redundancy, **kwargs)
        )

    def with_tlb(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, tlb=dataclasses.replace(self.tlb, **kwargs))

    def replace(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, **kwargs)


#: The paper's Table 1 parameters, verbatim.
PAPER_TABLE1 = SystemConfig()

#: Laptop-scale system: same shape, two orders of magnitude less state.
#: L1 4 KB and L2 128 KB keep "commercial" working sets (hundreds of KB)
#: L1-resident-hostile and partially L2-resident, as in the paper; 1 KB
#: pages let modest footprints exercise the TLBs.
DEFAULT_CONFIG = SystemConfig(
    n_logical=4,
    core=CoreConfig(width=4, rob_size=64, store_buffer_size=16, frontend_latency=6),
    l1=L1Config(size_bytes=4 * 1024, assoc=2, load_to_use=2, mshrs=8),
    l2=L2Config(size_bytes=128 * 1024, assoc=8, banks=4, hit_latency=20, mshrs=16),
    tlb=TLBConfig(itlb_entries=16, dtlb_entries=32, page_bits=10, hw_fill_latency=20),
    memory=MemoryConfig(latency=100),
)
