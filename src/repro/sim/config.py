"""System configuration dataclasses (the reproduction's Table 1).

Two presets are provided:

* :data:`PAPER_TABLE1` — the paper's exact CMP parameters (Table 1).
  Faithful, but a pure-Python simulation of 16 MB caches and 150K-cycle
  samples is slow; use it when fidelity matters more than wall clock.
* :data:`DEFAULT_CONFIG` — a scaled-down system that preserves the
  *ratios* driving the paper's effects (L1 much smaller than commercial
  working sets, L2 hit latency much larger than L1, memory much larger
  than L2) so the reproduced figures keep their shape at laptop scale.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from dataclasses import dataclass
from typing import ClassVar


def _require_power_of_two(value: int, what: str) -> None:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")


class Mode(enum.Enum):
    """Redundancy execution model of a simulated system."""

    NONREDUNDANT = "nonredundant"
    STRICT = "strict"  # oracle strict input replication (Section 5.1)
    REUNION = "reunion"


class PhantomStrength(enum.Enum):
    """Phantom request strengths from Section 4.2 of the paper."""

    NULL = "null"  # arbitrary data on any mute L1 miss
    SHARED = "shared"  # check shared L2; arbitrary data on L2 miss
    GLOBAL = "global"  # check L2, vocal L1s, and main memory


class Consistency(enum.Enum):
    """Memory consistency model (Section 5.5)."""

    TSO = "tso"  # total store order: store buffer drains in order
    SC = "sc"  # sequential consistency: every store serializes retirement


class TLBMode(enum.Enum):
    """TLB-miss handling (Section 5.5, Figure 7(b))."""

    HARDWARE = "hardware"  # hardware walker: fill latency only
    SOFTWARE = "software"  # UltraSPARC-style handler: traps + MMU ops


class CacheStyle(enum.Enum):
    """On-chip memory organization (Section 4.1).

    The paper's primary design uses a Piranha-style shared cache with a
    directory at the shared controller; it notes the execution model
    "can also be implemented at a snoopy cache interface for
    microarchitectures with private caches, such as Montecito."
    """

    SHARED = "shared"  # shared L2 + directory (the paper's main design)
    SNOOPY = "snoopy"  # private caches on a snoopy bus (Montecito-style)


class CoherenceStyle(enum.Enum):
    """How private caches are kept coherent (``CacheStyle.SNOOPY`` only).

    A shared bus snoops every transaction and stops scaling at a handful
    of cores; per-bank home-node directories over a point-to-point
    interconnect carry the 8-32-core (4-16 pair) configurations where
    input incoherence and serialization under contention become visible.
    This knob is *result-affecting* — it lives on the hashed
    :class:`SystemConfig` (via :class:`BusConfig`), never on
    :class:`~repro.sim.options.SimOptions`.
    """

    SNOOPY = "snoopy"  # one shared bus, broadcast snooping
    DIRECTORY = "directory"  # banked home-node directories, point-to-point


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters."""

    width: int = 4  # dispatch/retire width
    rob_size: int = 256  # RUU entries
    store_buffer_size: int = 64
    frontend_latency: int = 6  # fetch-to-dispatch stages (mispredict penalty)
    load_ports: int = 2
    alu_latency: int = 1
    mul_latency: int = 3
    mmuop_latency: int = 15  # non-idempotent (uncached) MMU access
    fetch_queue_size: int = 32
    branch_predictor_entries: int = 1024

    def __post_init__(self) -> None:
        if self.width < 1 or self.rob_size < self.width:
            raise ValueError("need width >= 1 and rob_size >= width")
        if self.store_buffer_size < 1:
            raise ValueError("store buffer must hold at least one store")


@dataclass(frozen=True)
class L1Config:
    """Private write-back L1 data cache parameters."""

    size_bytes: int = 64 * 1024
    assoc: int = 2
    line_bytes: int = 64
    load_to_use: int = 2
    mshrs: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("L1 size must be a multiple of assoc * line size")
        _require_power_of_two(self.line_bytes, "L1 line size")
        _require_power_of_two(
            self.size_bytes // (self.assoc * self.line_bytes), "L1 set count"
        )


@dataclass(frozen=True)
class L2Config:
    """Shared L2 cache / controller parameters."""

    size_bytes: int = 16 * 1024 * 1024
    assoc: int = 8
    line_bytes: int = 64
    banks: int = 4
    hit_latency: int = 35
    bank_occupancy: int = 4  # cycles a bank stays busy per access
    mshrs: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("L2 size must be a multiple of assoc * line size")
        if self.banks < 1:
            raise ValueError("need at least one bank")
        _require_power_of_two(self.banks, "L2 bank count")
        _require_power_of_two(self.line_bytes, "L2 line size")
        _require_power_of_two(
            self.size_bytes // (self.assoc * self.line_bytes), "L2 set count"
        )


@dataclass(frozen=True)
class BusConfig:
    """Private-cache interconnect parameters (``cache_style`` SNOOPY).

    The first four fields describe any coherence fabric: with
    ``coherence=SNOOPY`` they are literally the shared bus
    (``snoop_latency`` is the address phase + snoop response,
    ``bus_occupancy`` the cycles the single bus is held); with
    ``coherence=DIRECTORY`` the same numbers parameterize each home
    bank (``snoop_latency`` becomes the directory access, occupancy the
    bank's service slot) so the two backends are comparable — and, at
    ``dir_banks=1, link_latency=0`` and zero arbiter weights, provably
    cycle-identical (see tests/sim/test_directory_differential.py).

    Directory-only fields:

    * ``dir_banks`` — home-node banks; a line's home is
      ``line_addr % dir_banks``.
    * ``link_latency`` — per-hop point-to-point latency
      (requester→home, home→requester; forwarded replies cross
      home→owner→requester).
    * ``wrr_vocal_weight`` / ``wrr_mute_weight`` — weighted-round-robin
      credits per arbitration round at each home bank.  Weight 0 means
      the class is exempt from credit accounting (plain FCFS); that is
      also the snoopy-equivalent degenerate setting.
    """

    snoop_latency: int = 15  # address phase + snoop response
    transfer_latency: int = 25  # cache-to-cache data transfer
    bus_occupancy: int = 4  # cycles the bus is held per transaction
    mshrs: int = 16
    coherence: CoherenceStyle = CoherenceStyle.SNOOPY
    dir_banks: int = 4
    link_latency: int = 2
    wrr_vocal_weight: int = 3
    wrr_mute_weight: int = 1

    def __post_init__(self) -> None:
        if self.snoop_latency < 1 or self.transfer_latency < 1:
            raise ValueError("bus latencies must be positive")
        _require_power_of_two(self.dir_banks, "directory bank count")
        if self.link_latency < 0:
            raise ValueError("link latency cannot be negative")
        if self.wrr_vocal_weight < 0 or self.wrr_mute_weight < 0:
            raise ValueError("arbiter weights cannot be negative")


@dataclass(frozen=True)
class TLBConfig:
    """ITLB/DTLB parameters."""

    itlb_entries: int = 128
    dtlb_entries: int = 512
    assoc: int = 2
    page_bits: int = 13  # 8 KB pages
    mode: TLBMode = TLBMode.HARDWARE
    hw_fill_latency: int = 30


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory parameters."""

    latency: int = 240  # 60 ns at 4 GHz

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(
                f"main-memory latency must be >= 1 cycle, got {self.latency}"
            )


@dataclass(frozen=True)
class RedundancyConfig:
    """Reunion / redundant-execution parameters (Sections 3-4)."""

    mode: Mode = Mode.NONREDUNDANT
    comparison_latency: int = 10  # one-way fingerprint latency between cores
    fingerprint_interval: int = 1  # instructions per fingerprint
    fingerprint_bits: int = 16  # CRC width
    two_stage_compression: bool = True
    phantom: PhantomStrength = PhantomStrength.GLOBAL
    arf_copy_latency: int = 64  # phase-2 vocal->mute register copy cost
    rollback_penalty: int = 8  # pipeline flush cost on recovery
    divergence_timeout: int = 10_000  # watchdog: max cycles of pair skew

    def __post_init__(self) -> None:
        if self.comparison_latency < 0:
            raise ValueError("comparison latency cannot be negative")
        if self.fingerprint_interval < 1:
            raise ValueError("fingerprint interval must be >= 1")
        if not 4 <= self.fingerprint_bits <= 64:
            raise ValueError("fingerprint width must be in [4, 64] bits")


#: Protection modes a pair can run under (see :class:`ProtectionPolicy`).
PROTECTION_MODES = (
    "full",  # the paper's symmetric vocal/mute pair, every interval checked
    "little-mute",  # reduced-issue mute checks a full vocal (MEEK-style)
    "interval-sampled",  # only a fraction of fingerprint intervals compared
    "unprotected",  # redundancy off: the mute core is parked
    "dynamic",  # redundancy toggled per pair under load (Döbel-style)
)

#: Modes that leave some intervals unchecked — a fault absorbed into one
#: of those intervals escapes detection by construction.
PARTIAL_PROTECTION_MODES = ("interval-sampled", "unprotected", "dynamic")


@dataclass(frozen=True)
class ProtectionPolicy:
    """How (and how much) one logical pair is protected.

    The paper's Reunion pairs are all-or-nothing: every retired
    instruction lands in a fingerprint interval and every interval is
    compared.  A policy generalizes that along the coverage-vs-throughput
    axis ROADMAP item 2 names:

    * ``full`` — the paper's design.  The only mode eligible for the
      replay/mirror fast path (``replay=True``, the default).
    * ``little-mute`` — a reduced checker core validates a full vocal
      (MEEK-style heterogeneous detection): the mute's *issue* stage is
      narrowed to ``mute_width`` while fetch/dispatch/retire keep the
      configured width, so fingerprints still cover every instruction.
      Full coverage, slower mute, vocal throttled by the check gate.
    * ``interval-sampled`` — only a ``checked_fraction`` of fingerprint
      intervals are hashed and exchanged; unchecked intervals retire
      without comparison latency.  Faults absorbed into unchecked
      intervals escape detection by construction.
    * ``unprotected`` — redundancy off: the mute core is parked
      (never stepped), no intervals are compared, no sync coupling.
    * ``dynamic`` — protection toggled per pair under load (Döbel-style
      resource-aware replication): when the vocal's open-interval
      backlog reaches ``off_threshold`` at a comparison point, the next
      ``off_intervals`` intervals go unchecked; checking resumes once
      the backlog drains to ``on_threshold``.

    Every field except ``replay`` is *result-affecting* and lives in the
    hashed config (:func:`repro.exec.jobs.config_payload`).  ``replay``
    only selects the execution strategy for ``full`` pairs — replay is
    bit-identical to dual by contract — so it is excluded from cache
    keys via ``_KEY_EXCLUDE``.
    """

    mode: str = "full"
    mute_width: int | None = None  # little-mute: mute issue width
    checked_fraction: float | None = None  # interval-sampled: in (0, 1)
    off_threshold: int | None = None  # dynamic: backlog that disables checking
    on_threshold: int | None = None  # dynamic: backlog that re-enables it
    off_intervals: int | None = None  # dynamic: intervals per off-window
    replay: bool = True  # full only: mirror fast path (result-neutral)

    #: Result-neutral fields, excluded from content-hash cache keys.
    _KEY_EXCLUDE: ClassVar[tuple[str, ...]] = ("replay",)

    def __post_init__(self) -> None:
        if self.mode not in PROTECTION_MODES:
            raise ValueError(
                f"protection mode must be one of {PROTECTION_MODES}, "
                f"got {self.mode!r}"
            )
        owners = {
            "mute_width": "little-mute",
            "checked_fraction": "interval-sampled",
            "off_threshold": "dynamic",
            "on_threshold": "dynamic",
            "off_intervals": "dynamic",
        }
        for name, owner in owners.items():
            if getattr(self, name) is not None and self.mode != owner:
                raise ValueError(
                    f"{name} only applies to mode {owner!r}, not {self.mode!r}"
                )
        if self.mode == "little-mute":
            if self.mute_width is None or self.mute_width < 1:
                raise ValueError(
                    f"little-mute needs mute_width >= 1, got {self.mute_width}"
                )
        elif self.mode == "interval-sampled":
            fraction = self.checked_fraction
            if fraction is None or not 0.0 < fraction < 1.0:
                raise ValueError(
                    "interval-sampled needs 0 < checked_fraction < 1 "
                    f"(use mode 'full' or 'unprotected' for the endpoints), "
                    f"got {fraction}"
                )
        elif self.mode == "dynamic":
            if self.off_threshold is None or self.off_threshold < 1:
                raise ValueError(
                    f"dynamic needs off_threshold >= 1, got {self.off_threshold}"
                )
            if self.on_threshold is None or self.on_threshold < 0:
                raise ValueError(
                    f"dynamic needs on_threshold >= 0, got {self.on_threshold}"
                )
            if self.on_threshold > self.off_threshold:
                raise ValueError(
                    "dynamic needs on_threshold <= off_threshold "
                    "(hysteresis, not oscillation), got "
                    f"{self.on_threshold} > {self.off_threshold}"
                )
            if self.off_intervals is None or self.off_intervals < 1:
                raise ValueError(
                    f"dynamic needs off_intervals >= 1, got {self.off_intervals}"
                )

    # -- factories ---------------------------------------------------

    @classmethod
    def full(cls, replay: bool = True) -> "ProtectionPolicy":
        return cls(mode="full", replay=replay)

    @classmethod
    def little_mute(cls, mute_width: int = 2) -> "ProtectionPolicy":
        return cls(mode="little-mute", mute_width=mute_width)

    @classmethod
    def interval_sampled(cls, checked_fraction: float = 0.5) -> "ProtectionPolicy":
        return cls(mode="interval-sampled", checked_fraction=checked_fraction)

    @classmethod
    def unprotected(cls) -> "ProtectionPolicy":
        return cls(mode="unprotected")

    @classmethod
    def dynamic(
        cls,
        off_threshold: int = 8,
        on_threshold: int = 2,
        off_intervals: int = 16,
    ) -> "ProtectionPolicy":
        return cls(
            mode="dynamic",
            off_threshold=off_threshold,
            on_threshold=on_threshold,
            off_intervals=off_intervals,
        )

    @property
    def checks_everything(self) -> bool:
        """True when every fingerprint interval is compared."""
        return self.mode not in PARTIAL_PROTECTION_MODES

    def describe(self) -> str:
        if self.mode == "little-mute":
            return f"little-mute:{self.mute_width}"
        if self.mode == "interval-sampled":
            return f"interval-sampled:{self.checked_fraction:g}"
        if self.mode == "dynamic":
            return (
                f"dynamic:{self.off_threshold},{self.on_threshold},"
                f"{self.off_intervals}"
            )
        return self.mode


def parse_policy(spec: str) -> ProtectionPolicy:
    """Parse a policy spec string (``REPRO_PROTECTION`` / ``--protection``).

    Grammar: ``mode[:params]`` —  ``full``, ``little-mute[:WIDTH]``,
    ``interval-sampled[:FRACTION]``, ``unprotected``, and
    ``dynamic[:OFF,ON,LEN]``.  Round-trips with
    :meth:`ProtectionPolicy.describe`.
    """
    text = spec.strip().lower()
    mode, _, params = text.partition(":")
    try:
        if mode == "little-mute":
            return ProtectionPolicy.little_mute(int(params) if params else 2)
        if mode == "interval-sampled":
            return ProtectionPolicy.interval_sampled(
                float(params) if params else 0.5
            )
        if mode == "dynamic":
            if params:
                off, on, length = (int(part) for part in params.split(","))
                return ProtectionPolicy.dynamic(off, on, length)
            return ProtectionPolicy.dynamic()
        if mode in ("full", "unprotected") and not params:
            return ProtectionPolicy(mode=mode)
    except ValueError as exc:
        raise ValueError(f"bad protection spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"bad protection spec {spec!r}; expected mode[:params] with mode in "
        f"{PROTECTION_MODES}"
    )


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated CMP."""

    n_logical: int = 4  # logical processors (pairs in redundant modes)
    core: CoreConfig = CoreConfig()
    l1: L1Config = L1Config()
    l2: L2Config = L2Config()
    bus: BusConfig = BusConfig()
    tlb: TLBConfig = TLBConfig()
    memory: MemoryConfig = MemoryConfig()
    redundancy: RedundancyConfig = RedundancyConfig()
    consistency: Consistency = Consistency.TSO
    cache_style: CacheStyle = CacheStyle.SHARED
    #: Per-pair protection policies, ``pair_policies[i]`` for logical
    #: pair ``i``.  ``None`` means every pair runs ``full`` (the paper's
    #: design).  REUNION-only: the other modes have no mute to police.
    pair_policies: tuple[ProtectionPolicy, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_logical < 1:
            raise ValueError(
                f"a system needs at least one logical processor, got "
                f"n_logical={self.n_logical}"
            )
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError(
                f"L1 and L2 line sizes must match, got "
                f"{self.l1.line_bytes} vs {self.l2.line_bytes}"
            )
        if self.pair_policies is not None:
            policies = tuple(self.pair_policies)
            object.__setattr__(self, "pair_policies", policies)
            if self.redundancy.mode is not Mode.REUNION:
                raise ValueError(
                    "pair_policies require redundancy mode REUNION "
                    f"(got {self.redundancy.mode.value!r}); the other modes "
                    "have no vocal/mute pairs to protect"
                )
            if len(policies) != self.n_logical:
                raise ValueError(
                    f"need one policy per logical pair: got "
                    f"{len(policies)} policies for n_logical={self.n_logical}"
                )
            for index, policy in enumerate(policies):
                if not isinstance(policy, ProtectionPolicy):
                    raise ValueError(
                        f"pair_policies[{index}] is not a ProtectionPolicy: "
                        f"{policy!r}"
                    )
                if (
                    policy.mode == "little-mute"
                    and policy.mute_width > self.core.width
                ):
                    raise ValueError(
                        f"pair_policies[{index}]: little-mute width "
                        f"{policy.mute_width} exceeds the core width "
                        f"{self.core.width} (the 'little' core must be "
                        "no wider than the full one)"
                    )

    @property
    def n_cores(self) -> int:
        """Physical cores: redundant modes pair a vocal and a mute."""
        if self.redundancy.mode is Mode.REUNION:
            return 2 * self.n_logical
        return self.n_logical

    def with_redundancy(self, **kwargs) -> "SystemConfig":
        """Return a copy with redundancy parameters replaced."""
        return dataclasses.replace(
            self, redundancy=dataclasses.replace(self.redundancy, **kwargs)
        )

    def with_tlb(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, tlb=dataclasses.replace(self.tlb, **kwargs))

    def with_protection(self, policy) -> "SystemConfig":
        """Copy with ``policy`` on every pair (or a per-pair sequence)."""
        if isinstance(policy, ProtectionPolicy):
            policies = (policy,) * self.n_logical
        else:
            policies = tuple(policy)
        return dataclasses.replace(self, pair_policies=policies)

    def replace(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, **kwargs)


#: The paper's Table 1 parameters, verbatim.  Never env-modified.
PAPER_TABLE1 = SystemConfig()


def apply_env_coherence(
    config: SystemConfig, env: dict[str, str] | None = None
) -> SystemConfig:
    """Re-aim ``config`` at the backend named by ``REPRO_COHERENCE``.

    ``shared`` / ``snoopy`` / ``directory``; unset leaves ``config``
    untouched.  Applied to :data:`DEFAULT_CONFIG` and the test helpers'
    small config at import so one environment variable retargets the
    whole suite at another memory backend (the CI matrix leg).  The
    chosen backend lands in the *hashed* config — result caches keyed on
    :func:`repro.exec.jobs.config_payload` stay correct — which is why
    this is a config transform and not a :class:`~repro.sim.options`
    knob: coherence style changes results.
    """
    value = (env if env is not None else os.environ).get("REPRO_COHERENCE", "")
    value = value.strip().lower()
    if not value:
        return config
    if value == "shared":
        return config.replace(cache_style=CacheStyle.SHARED)
    if value in ("snoopy", "directory"):
        return config.replace(
            cache_style=CacheStyle.SNOOPY,
            bus=dataclasses.replace(config.bus, coherence=CoherenceStyle(value)),
        )
    raise ValueError(
        f"REPRO_COHERENCE must be 'shared', 'snoopy' or 'directory', got {value!r}"
    )


def resolve_pair_policies(
    config: SystemConfig, execution: str = "dual"
) -> tuple[ProtectionPolicy, ...]:
    """The effective per-pair policies of ``config``.

    Explicit ``pair_policies`` win; otherwise every pair is ``full``
    with the replay bit mirroring the requested execution strategy
    (``execution="replay"`` ≡ ``ProtectionPolicy.full(replay=True)``,
    the legacy-knob equivalence the API redesign pivots on).
    """
    if config.pair_policies is not None:
        return config.pair_policies
    default = ProtectionPolicy(mode="full", replay=(execution == "replay"))
    return (default,) * config.n_logical


def partial_protection_modes(config: SystemConfig) -> tuple[str, ...]:
    """Partial modes present in ``config``'s policies (sorted, deduped).

    Empty means every interval of every pair is checked — the regime
    where a golden commit-stream signature is a sound oracle for
    ``repro campaign``.
    """
    if config.pair_policies is None:
        return ()
    return tuple(
        sorted(
            {
                policy.mode
                for policy in config.pair_policies
                if policy.mode in PARTIAL_PROTECTION_MODES
            }
        )
    )


def apply_env_protection(
    config: SystemConfig, env: dict[str, str] | None = None
) -> SystemConfig:
    """Apply the ``REPRO_PROTECTION`` policy spec to ``config``.

    Unset (or empty) leaves ``config`` untouched, as do non-REUNION
    configs (there is no pair to protect) and configs that already pin
    explicit ``pair_policies`` (an env sweep must not silently override
    a deliberate per-pair mix).  Like :func:`apply_env_coherence` this
    is a *config* transform — the policy is result-affecting, so it
    must land in the hashed config, never on
    :class:`~repro.sim.options.SimOptions`.  The CI little-mute leg
    retargets the whole test suite through this hook.
    """
    value = (env if env is not None else os.environ).get("REPRO_PROTECTION", "")
    value = value.strip()
    if not value:
        return config
    if config.redundancy.mode is not Mode.REUNION:
        return config
    if config.pair_policies is not None:
        return config
    policy = parse_policy(value)
    if (
        policy.mode == "little-mute"
        and policy.mute_width > config.core.width
    ):
        policy = ProtectionPolicy.little_mute(config.core.width)
    return config.with_protection(policy)


#: Laptop-scale system: same shape, two orders of magnitude less state.
#: L1 4 KB and L2 128 KB keep "commercial" working sets (hundreds of KB)
#: L1-resident-hostile and partially L2-resident, as in the paper; 1 KB
#: pages let modest footprints exercise the TLBs.
DEFAULT_CONFIG = apply_env_coherence(
    SystemConfig(
        n_logical=4,
        core=CoreConfig(width=4, rob_size=64, store_buffer_size=16, frontend_latency=6),
        l1=L1Config(size_bytes=4 * 1024, assoc=2, load_to_use=2, mshrs=8),
        l2=L2Config(size_bytes=128 * 1024, assoc=8, banks=4, hit_latency=20, mshrs=16),
        tlb=TLBConfig(itlb_entries=16, dtlb_entries=32, page_bits=10, hw_fill_latency=20),
        memory=MemoryConfig(latency=100),
    )
)


def manycore_config(n_logical: int) -> SystemConfig:
    """A many-pair Reunion CMP on the directory backend.

    ``n_logical`` vocal/mute pairs (``2 * n_logical`` cores) with
    private caches kept coherent by banked home-node directories — the
    regime the snoopy bus cannot reach.  Core and cache parameters
    follow :data:`DEFAULT_CONFIG`'s laptop scale; the interconnect uses
    realistic non-degenerate numbers (8 home banks, 6-cycle links,
    3:1 vocal:mute arbitration) so contention and arbitration actually
    happen.
    """
    return SystemConfig(
        n_logical=n_logical,
        core=CoreConfig(width=4, rob_size=64, store_buffer_size=16, frontend_latency=6),
        l1=L1Config(size_bytes=4 * 1024, assoc=2, load_to_use=2, mshrs=8),
        l2=L2Config(size_bytes=128 * 1024, assoc=8, banks=4, hit_latency=20, mshrs=16),
        tlb=TLBConfig(itlb_entries=16, dtlb_entries=32, page_bits=10, hw_fill_latency=20),
        memory=MemoryConfig(latency=100),
        cache_style=CacheStyle.SNOOPY,
        bus=BusConfig(
            coherence=CoherenceStyle.DIRECTORY,
            dir_banks=8,
            link_latency=6,
            wrr_vocal_weight=3,
            wrr_mute_weight=1,
        ),
        redundancy=RedundancyConfig(
            mode=Mode.REUNION,
            comparison_latency=10,
            fingerprint_interval=8,
        ),
    )


#: Stock many-pair systems: 8/16/32 physical cores as 4/8/16 pairs.
MANYCORE_8 = manycore_config(4)
MANYCORE_16 = manycore_config(8)
MANYCORE_32 = manycore_config(16)
