"""System configuration dataclasses (the reproduction's Table 1).

Two presets are provided:

* :data:`PAPER_TABLE1` — the paper's exact CMP parameters (Table 1).
  Faithful, but a pure-Python simulation of 16 MB caches and 150K-cycle
  samples is slow; use it when fidelity matters more than wall clock.
* :data:`DEFAULT_CONFIG` — a scaled-down system that preserves the
  *ratios* driving the paper's effects (L1 much smaller than commercial
  working sets, L2 hit latency much larger than L1, memory much larger
  than L2) so the reproduced figures keep their shape at laptop scale.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from dataclasses import dataclass


def _require_power_of_two(value: int, what: str) -> None:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")


class Mode(enum.Enum):
    """Redundancy execution model of a simulated system."""

    NONREDUNDANT = "nonredundant"
    STRICT = "strict"  # oracle strict input replication (Section 5.1)
    REUNION = "reunion"


class PhantomStrength(enum.Enum):
    """Phantom request strengths from Section 4.2 of the paper."""

    NULL = "null"  # arbitrary data on any mute L1 miss
    SHARED = "shared"  # check shared L2; arbitrary data on L2 miss
    GLOBAL = "global"  # check L2, vocal L1s, and main memory


class Consistency(enum.Enum):
    """Memory consistency model (Section 5.5)."""

    TSO = "tso"  # total store order: store buffer drains in order
    SC = "sc"  # sequential consistency: every store serializes retirement


class TLBMode(enum.Enum):
    """TLB-miss handling (Section 5.5, Figure 7(b))."""

    HARDWARE = "hardware"  # hardware walker: fill latency only
    SOFTWARE = "software"  # UltraSPARC-style handler: traps + MMU ops


class CacheStyle(enum.Enum):
    """On-chip memory organization (Section 4.1).

    The paper's primary design uses a Piranha-style shared cache with a
    directory at the shared controller; it notes the execution model
    "can also be implemented at a snoopy cache interface for
    microarchitectures with private caches, such as Montecito."
    """

    SHARED = "shared"  # shared L2 + directory (the paper's main design)
    SNOOPY = "snoopy"  # private caches on a snoopy bus (Montecito-style)


class CoherenceStyle(enum.Enum):
    """How private caches are kept coherent (``CacheStyle.SNOOPY`` only).

    A shared bus snoops every transaction and stops scaling at a handful
    of cores; per-bank home-node directories over a point-to-point
    interconnect carry the 8-32-core (4-16 pair) configurations where
    input incoherence and serialization under contention become visible.
    This knob is *result-affecting* — it lives on the hashed
    :class:`SystemConfig` (via :class:`BusConfig`), never on
    :class:`~repro.sim.options.SimOptions`.
    """

    SNOOPY = "snoopy"  # one shared bus, broadcast snooping
    DIRECTORY = "directory"  # banked home-node directories, point-to-point


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters."""

    width: int = 4  # dispatch/retire width
    rob_size: int = 256  # RUU entries
    store_buffer_size: int = 64
    frontend_latency: int = 6  # fetch-to-dispatch stages (mispredict penalty)
    load_ports: int = 2
    alu_latency: int = 1
    mul_latency: int = 3
    mmuop_latency: int = 15  # non-idempotent (uncached) MMU access
    fetch_queue_size: int = 32
    branch_predictor_entries: int = 1024

    def __post_init__(self) -> None:
        if self.width < 1 or self.rob_size < self.width:
            raise ValueError("need width >= 1 and rob_size >= width")
        if self.store_buffer_size < 1:
            raise ValueError("store buffer must hold at least one store")


@dataclass(frozen=True)
class L1Config:
    """Private write-back L1 data cache parameters."""

    size_bytes: int = 64 * 1024
    assoc: int = 2
    line_bytes: int = 64
    load_to_use: int = 2
    mshrs: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("L1 size must be a multiple of assoc * line size")
        _require_power_of_two(self.line_bytes, "L1 line size")
        _require_power_of_two(
            self.size_bytes // (self.assoc * self.line_bytes), "L1 set count"
        )


@dataclass(frozen=True)
class L2Config:
    """Shared L2 cache / controller parameters."""

    size_bytes: int = 16 * 1024 * 1024
    assoc: int = 8
    line_bytes: int = 64
    banks: int = 4
    hit_latency: int = 35
    bank_occupancy: int = 4  # cycles a bank stays busy per access
    mshrs: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("L2 size must be a multiple of assoc * line size")
        if self.banks < 1:
            raise ValueError("need at least one bank")
        _require_power_of_two(self.banks, "L2 bank count")
        _require_power_of_two(self.line_bytes, "L2 line size")
        _require_power_of_two(
            self.size_bytes // (self.assoc * self.line_bytes), "L2 set count"
        )


@dataclass(frozen=True)
class BusConfig:
    """Private-cache interconnect parameters (``cache_style`` SNOOPY).

    The first four fields describe any coherence fabric: with
    ``coherence=SNOOPY`` they are literally the shared bus
    (``snoop_latency`` is the address phase + snoop response,
    ``bus_occupancy`` the cycles the single bus is held); with
    ``coherence=DIRECTORY`` the same numbers parameterize each home
    bank (``snoop_latency`` becomes the directory access, occupancy the
    bank's service slot) so the two backends are comparable — and, at
    ``dir_banks=1, link_latency=0`` and zero arbiter weights, provably
    cycle-identical (see tests/sim/test_directory_differential.py).

    Directory-only fields:

    * ``dir_banks`` — home-node banks; a line's home is
      ``line_addr % dir_banks``.
    * ``link_latency`` — per-hop point-to-point latency
      (requester→home, home→requester; forwarded replies cross
      home→owner→requester).
    * ``wrr_vocal_weight`` / ``wrr_mute_weight`` — weighted-round-robin
      credits per arbitration round at each home bank.  Weight 0 means
      the class is exempt from credit accounting (plain FCFS); that is
      also the snoopy-equivalent degenerate setting.
    """

    snoop_latency: int = 15  # address phase + snoop response
    transfer_latency: int = 25  # cache-to-cache data transfer
    bus_occupancy: int = 4  # cycles the bus is held per transaction
    mshrs: int = 16
    coherence: CoherenceStyle = CoherenceStyle.SNOOPY
    dir_banks: int = 4
    link_latency: int = 2
    wrr_vocal_weight: int = 3
    wrr_mute_weight: int = 1

    def __post_init__(self) -> None:
        if self.snoop_latency < 1 or self.transfer_latency < 1:
            raise ValueError("bus latencies must be positive")
        _require_power_of_two(self.dir_banks, "directory bank count")
        if self.link_latency < 0:
            raise ValueError("link latency cannot be negative")
        if self.wrr_vocal_weight < 0 or self.wrr_mute_weight < 0:
            raise ValueError("arbiter weights cannot be negative")


@dataclass(frozen=True)
class TLBConfig:
    """ITLB/DTLB parameters."""

    itlb_entries: int = 128
    dtlb_entries: int = 512
    assoc: int = 2
    page_bits: int = 13  # 8 KB pages
    mode: TLBMode = TLBMode.HARDWARE
    hw_fill_latency: int = 30


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory parameters."""

    latency: int = 240  # 60 ns at 4 GHz

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(
                f"main-memory latency must be >= 1 cycle, got {self.latency}"
            )


@dataclass(frozen=True)
class RedundancyConfig:
    """Reunion / redundant-execution parameters (Sections 3-4)."""

    mode: Mode = Mode.NONREDUNDANT
    comparison_latency: int = 10  # one-way fingerprint latency between cores
    fingerprint_interval: int = 1  # instructions per fingerprint
    fingerprint_bits: int = 16  # CRC width
    two_stage_compression: bool = True
    phantom: PhantomStrength = PhantomStrength.GLOBAL
    arf_copy_latency: int = 64  # phase-2 vocal->mute register copy cost
    rollback_penalty: int = 8  # pipeline flush cost on recovery
    divergence_timeout: int = 10_000  # watchdog: max cycles of pair skew

    def __post_init__(self) -> None:
        if self.comparison_latency < 0:
            raise ValueError("comparison latency cannot be negative")
        if self.fingerprint_interval < 1:
            raise ValueError("fingerprint interval must be >= 1")
        if not 4 <= self.fingerprint_bits <= 64:
            raise ValueError("fingerprint width must be in [4, 64] bits")


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated CMP."""

    n_logical: int = 4  # logical processors (pairs in redundant modes)
    core: CoreConfig = CoreConfig()
    l1: L1Config = L1Config()
    l2: L2Config = L2Config()
    bus: BusConfig = BusConfig()
    tlb: TLBConfig = TLBConfig()
    memory: MemoryConfig = MemoryConfig()
    redundancy: RedundancyConfig = RedundancyConfig()
    consistency: Consistency = Consistency.TSO
    cache_style: CacheStyle = CacheStyle.SHARED

    def __post_init__(self) -> None:
        if self.n_logical < 1:
            raise ValueError(
                f"a system needs at least one logical processor, got "
                f"n_logical={self.n_logical}"
            )
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError(
                f"L1 and L2 line sizes must match, got "
                f"{self.l1.line_bytes} vs {self.l2.line_bytes}"
            )

    @property
    def n_cores(self) -> int:
        """Physical cores: redundant modes pair a vocal and a mute."""
        if self.redundancy.mode is Mode.REUNION:
            return 2 * self.n_logical
        return self.n_logical

    def with_redundancy(self, **kwargs) -> "SystemConfig":
        """Return a copy with redundancy parameters replaced."""
        return dataclasses.replace(
            self, redundancy=dataclasses.replace(self.redundancy, **kwargs)
        )

    def with_tlb(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, tlb=dataclasses.replace(self.tlb, **kwargs))

    def replace(self, **kwargs) -> "SystemConfig":
        return dataclasses.replace(self, **kwargs)


#: The paper's Table 1 parameters, verbatim.  Never env-modified.
PAPER_TABLE1 = SystemConfig()


def apply_env_coherence(
    config: SystemConfig, env: dict[str, str] | None = None
) -> SystemConfig:
    """Re-aim ``config`` at the backend named by ``REPRO_COHERENCE``.

    ``shared`` / ``snoopy`` / ``directory``; unset leaves ``config``
    untouched.  Applied to :data:`DEFAULT_CONFIG` and the test helpers'
    small config at import so one environment variable retargets the
    whole suite at another memory backend (the CI matrix leg).  The
    chosen backend lands in the *hashed* config — result caches keyed on
    :func:`repro.exec.jobs.config_payload` stay correct — which is why
    this is a config transform and not a :class:`~repro.sim.options`
    knob: coherence style changes results.
    """
    value = (env if env is not None else os.environ).get("REPRO_COHERENCE", "")
    value = value.strip().lower()
    if not value:
        return config
    if value == "shared":
        return config.replace(cache_style=CacheStyle.SHARED)
    if value in ("snoopy", "directory"):
        return config.replace(
            cache_style=CacheStyle.SNOOPY,
            bus=dataclasses.replace(config.bus, coherence=CoherenceStyle(value)),
        )
    raise ValueError(
        f"REPRO_COHERENCE must be 'shared', 'snoopy' or 'directory', got {value!r}"
    )


#: Laptop-scale system: same shape, two orders of magnitude less state.
#: L1 4 KB and L2 128 KB keep "commercial" working sets (hundreds of KB)
#: L1-resident-hostile and partially L2-resident, as in the paper; 1 KB
#: pages let modest footprints exercise the TLBs.
DEFAULT_CONFIG = apply_env_coherence(
    SystemConfig(
        n_logical=4,
        core=CoreConfig(width=4, rob_size=64, store_buffer_size=16, frontend_latency=6),
        l1=L1Config(size_bytes=4 * 1024, assoc=2, load_to_use=2, mshrs=8),
        l2=L2Config(size_bytes=128 * 1024, assoc=8, banks=4, hit_latency=20, mshrs=16),
        tlb=TLBConfig(itlb_entries=16, dtlb_entries=32, page_bits=10, hw_fill_latency=20),
        memory=MemoryConfig(latency=100),
    )
)


def manycore_config(n_logical: int) -> SystemConfig:
    """A many-pair Reunion CMP on the directory backend.

    ``n_logical`` vocal/mute pairs (``2 * n_logical`` cores) with
    private caches kept coherent by banked home-node directories — the
    regime the snoopy bus cannot reach.  Core and cache parameters
    follow :data:`DEFAULT_CONFIG`'s laptop scale; the interconnect uses
    realistic non-degenerate numbers (8 home banks, 6-cycle links,
    3:1 vocal:mute arbitration) so contention and arbitration actually
    happen.
    """
    return SystemConfig(
        n_logical=n_logical,
        core=CoreConfig(width=4, rob_size=64, store_buffer_size=16, frontend_latency=6),
        l1=L1Config(size_bytes=4 * 1024, assoc=2, load_to_use=2, mshrs=8),
        l2=L2Config(size_bytes=128 * 1024, assoc=8, banks=4, hit_latency=20, mshrs=16),
        tlb=TLBConfig(itlb_entries=16, dtlb_entries=32, page_bits=10, hw_fill_latency=20),
        memory=MemoryConfig(latency=100),
        cache_style=CacheStyle.SNOOPY,
        bus=BusConfig(
            coherence=CoherenceStyle.DIRECTORY,
            dir_banks=8,
            link_latency=6,
            wrr_vocal_weight=3,
            wrr_mute_weight=1,
        ),
        redundancy=RedundancyConfig(
            mode=Mode.REUNION,
            comparison_latency=10,
            fingerprint_interval=8,
        ),
    )


#: Stock many-pair systems: 8/16/32 physical cores as 4/8/16 pairs.
MANYCORE_8 = manycore_config(4)
MANYCORE_16 = manycore_config(8)
MANYCORE_32 = manycore_config(16)
