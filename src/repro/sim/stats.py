"""Statistics collection.

A single :class:`Stats` object is shared by every component of a simulated
system.  Counters are flat, dot-namespaced strings (``"l2.phantom.global"``,
``"core0.retired_user"``), which keeps hot-path increments cheap (one dict
operation) and makes reports trivial to assemble.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class Stats:
    """A flat bag of named integer/float counters."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def items(self, prefix: str = "") -> Iterator[tuple[str, float]]:
        """Iterate counters, optionally restricted to a dot-prefix."""
        for name in sorted(self._counters):
            if name.startswith(prefix):
                yield name, self._counters[name]

    def total(self, prefix: str) -> float:
        """Sum of all counters under a prefix (e.g. every core's retires)."""
        return sum(v for _, v in self.items(prefix))

    def snapshot(self) -> dict[str, float]:
        return dict(self._counters)

    def delta_since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Counter changes since ``snapshot`` (used to discard warm-up)."""
        out: dict[str, float] = {}
        for name, value in self._counters.items():
            change = value - snapshot.get(name, 0)
            if change:
                out[name] = change
        return out

    def reset(self) -> None:
        self._counters.clear()

    def report(self, prefix: str = "") -> str:
        """Human-readable dump, for examples and debugging."""
        width = max((len(n) for n, _ in self.items(prefix)), default=0)
        lines = [f"{name:<{width}}  {value:,.10g}" for name, value in self.items(prefix)]
        return "\n".join(lines)
