"""Command-line interface: run workloads, assemble programs, reproduce figures.

Installed as the ``repro`` console script::

    repro list                          # the workload suite
    repro run "DB2 OLTP" --mode reunion --latency 10
    repro asm program.s --mode reunion  # assemble, run to halt, dump state
    repro reproduce --only fig5 table3  # regenerate paper artifacts
    repro trace mem-chase --level events  # telemetry-armed replay of a sample
"""

from __future__ import annotations

import argparse
import sys

from repro.isa import assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import (
    DEFAULT_CONFIG,
    Consistency,
    Mode,
    PhantomStrength,
    TLBMode,
    apply_env_coherence,
    apply_env_protection,
)
from repro.sim.options import TRACE_LEVELS, SimOptions
from repro.sim.sampling import run_sample
from repro.workloads import by_name, suite
from repro.workloads.micro import micro_suite


def _config_from_args(args, n_logical: int | None = None) -> "SystemConfig":
    config = DEFAULT_CONFIG.replace(
        n_logical=n_logical if n_logical is not None else args.cpus,
        consistency=Consistency(args.consistency),
    ).with_redundancy(
        mode=Mode(args.mode),
        comparison_latency=args.latency,
        phantom=PhantomStrength(args.phantom),
        fingerprint_interval=args.interval,
    )
    if args.software_tlb:
        config = config.with_tlb(mode=TLBMode.SOFTWARE)
    if getattr(args, "coherence", None):
        # Same transform the REPRO_COHERENCE env var applies at import.
        config = apply_env_coherence(config, {"REPRO_COHERENCE": args.coherence})
    if getattr(args, "protection", None):
        config = apply_env_protection(config, {"REPRO_PROTECTION": args.protection})
    else:
        # REPRO_PROTECTION cannot act at import the way REPRO_COHERENCE
        # does (DEFAULT_CONFIG is not yet REUNION there), so the CLI
        # applies it after with_redundancy; no-op when unset.
        config = apply_env_protection(config)
    return config


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mode", choices=[m.value for m in Mode], default="reunion")
    parser.add_argument("--latency", type=int, default=10, help="comparison latency")
    parser.add_argument(
        "--phantom", choices=[p.value for p in PhantomStrength], default="global"
    )
    parser.add_argument("--interval", type=int, default=1, help="fingerprint interval")
    parser.add_argument(
        "--consistency", choices=[c.value for c in Consistency], default="tso"
    )
    parser.add_argument("--software-tlb", action="store_true")
    parser.add_argument("--cpus", type=int, default=4, help="logical processors")
    parser.add_argument(
        "--coherence",
        choices=["shared", "snoopy", "directory"],
        default=None,
        help="memory backend (default: REPRO_COHERENCE or the config's own)",
    )
    parser.add_argument(
        "--protection",
        default=None,
        metavar="POLICY",
        help="uniform per-pair protection policy, e.g. full, little-mute:2, "
        "interval-sampled:0.5, dynamic:8,2,16, unprotected "
        "(default: REPRO_PROTECTION or full; reunion mode only)",
    )


def _add_options_args(parser: argparse.ArgumentParser) -> None:
    """Simulation-strategy flags; unset values fall through to REPRO_* env."""
    parser.add_argument(
        "--kernel",
        choices=["event", "naive"],
        default=None,
        help="simulation kernel (default: REPRO_KERNEL or event)",
    )
    parser.add_argument(
        "--execution",
        choices=["replay", "dual"],
        default=None,
        help="mute-core execution strategy (default: REPRO_EXEC or replay)",
    )


def _options_from_args(args, **overrides) -> SimOptions:
    return SimOptions.from_env(
        kernel=getattr(args, "kernel", None),
        execution=getattr(args, "execution", None),
        **overrides,
    )


def cmd_list(_args) -> int:
    print(f"{'workload':<16}{'class':<12}")
    print("-" * 28)
    for workload in suite():
        print(f"{workload.name:<16}{workload.category:<12}")
    for workload in micro_suite():
        print(f"{workload.name:<16}{workload.category:<12}")
    return 0


def cmd_run(args) -> int:
    all_workloads = {w.name.lower(): w for w in [*suite(), *micro_suite()]}
    workload = all_workloads.get(args.workload.lower())
    if workload is None:
        try:
            workload = by_name(args.workload)
        except KeyError:
            print(f"unknown workload {args.workload!r}; try `repro list`", file=sys.stderr)
            return 2
    config = _config_from_args(args)
    options = _options_from_args(args, seed=args.seed)
    sample = run_sample(
        config, workload, args.warmup, args.measure, args.seed, options=options
    )
    print(f"workload            : {workload.name} ({workload.category})")
    print(f"mode                : {args.mode} @ {args.latency}-cycle comparison")
    print(f"cycles measured     : {sample.cycles}")
    print(f"user instructions   : {sample.user_instructions}")
    print(f"aggregate IPC       : {sample.ipc:.3f}")
    print(f"TLB misses / Minstr : {sample.tlb_misses_per_minstr:,.0f}")
    print(f"serializing instrs  : {sample.serializing}")
    if args.mode == "reunion":
        print(f"incoherence / Minstr: {sample.incoherence_per_minstr:,.1f}")
        print(f"sync requests       : {sample.sync_requests}")
    return 0


def cmd_asm(args) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source, name=args.file)
    # Pin the pair count before env protection applies, so a uniform
    # REPRO_PROTECTION policy tuple is sized for one pair, not --cpus.
    config = _config_from_args(args, n_logical=1)
    options = _options_from_args(args, max_cycles=args.max_cycles)
    system = CMPSystem(config, [program], options=options)
    tracer = None
    if args.trace:
        from repro.pipeline.trace import PipelineTracer

        tracer = PipelineTracer()
        system.vocal_cores[0].tracer = tracer
    cycles = system.run_until_idle()
    core = system.vocal_cores[0]
    print(f"halted after {cycles} cycles; {core.user_retired} instructions, "
          f"IPC {core.user_retired / cycles:.3f}")
    nonzero = {f"r{i}": core.arf.read(i) for i in range(32) if core.arf.read(i)}
    for name, value in nonzero.items():
        print(f"  {name:<4} = {value:#x} ({value})")
    if system.pairs:
        pair = system.pairs[0]
        print(f"  recoveries={pair.recoveries} sync_requests={pair.sync_requests}")
    if tracer is not None:
        print()
        print(tracer.render())
        print(f"mean dispatch-to-retire: {tracer.mean_lifetime():.1f} cycles")
    return 0


def cmd_reproduce(args) -> int:
    from repro.exec.cache import default_cache
    from repro.exec.pool import ExecutionError
    from repro.harness import (
        Runner,
        current_scale,
        plan_fig5,
        plan_fig6,
        plan_fig7a,
        plan_fig7b,
        plan_sc_comparison,
        plan_table3,
        run_fig5,
        run_fig6,
        run_fig7a,
        run_fig7b,
        run_sc_comparison,
        run_table3,
        scale_by_name,
    )

    scale = scale_by_name(args.scale) if args.scale else current_scale()
    cache = None if args.no_cache else default_cache()
    runner = Runner(scale, cache=cache, options=_options_from_args(args))
    experiments = {
        "fig5": (lambda: plan_fig5(scale), lambda: run_fig5(runner=runner)),
        "fig6a": (
            lambda: plan_fig6(Mode.STRICT, scale),
            lambda: run_fig6(Mode.STRICT, runner=runner),
        ),
        "fig6b": (
            lambda: plan_fig6(Mode.REUNION, scale),
            lambda: run_fig6(Mode.REUNION, runner=runner),
        ),
        "table3": (lambda: plan_table3(scale), lambda: run_table3(runner=runner)),
        "fig7a": (lambda: plan_fig7a(scale), lambda: run_fig7a(runner=runner)),
        "fig7b": (lambda: plan_fig7b(scale), lambda: run_fig7b(runner=runner)),
        "sc": (
            lambda: plan_sc_comparison(scale),
            lambda: run_sc_comparison(runner=runner),
        ),
    }
    selected = args.only or list(experiments)
    for name in selected:
        if name not in experiments:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2

    # Enumerate the full artifact set up front and fan it out across the
    # pool; the drivers then render from warm memoized samples.
    requests = []
    for name in selected:
        requests.extend(experiments[name][0]())
    try:
        manifest = runner.prefetch(
            requests, jobs=args.jobs, show_progress=sys.stderr.isatty()
        )
    except ExecutionError as exc:
        print(exc, file=sys.stderr)
        print(exc.manifest.render(), file=sys.stderr)
        return 1

    for name in selected:
        print(experiments[name][1]().render())
        print()
    print(manifest.render(), file=sys.stderr)
    return 0


def cmd_trace(args) -> int:
    """Replay one sample with telemetry armed; write JSONL + Chrome traces.

    The sample itself is the cache's business: if the equivalent
    telemetry-off job is already cached, the armed re-run must reproduce
    it bit-identically (the telemetry contract) — a mismatch is reported
    as an error.  An uncached run populates the cache as a side effect.
    """
    from repro.exec.cache import default_cache
    from repro.exec.jobs import SampleJob, resolve_workload
    from repro.obs.export import summarize, write_chrome_trace, write_jsonl
    from repro.sim.sampling import run_sample_system

    try:
        workload = resolve_workload(args.workload)
    except KeyError:
        print(f"unknown workload {args.workload!r}; try `repro list`", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    options = _options_from_args(
        args, trace=args.level, trace_capacity=args.capacity, seed=args.seed
    )
    job = SampleJob(
        config=config,
        workload_name=workload.name,
        seed=args.seed,
        warmup=args.warmup,
        measure=args.measure,
        options=options,
    )
    cache = None if args.no_cache else default_cache()
    cached = cache.get(job) if cache is not None else None

    sample, system = run_sample_system(
        config, workload, args.warmup, args.measure, args.seed, options
    )
    telemetry = system.obs
    if telemetry is None:  # pragma: no cover - level choices exclude "off"
        print("telemetry did not arm (level 'off'?)", file=sys.stderr)
        return 2

    if cached is not None and cached != sample:
        print(
            "ERROR: telemetry-armed replay diverged from the cached sample "
            f"for job {job.key[:12]} — the telemetry bit-identity contract "
            "is broken",
            file=sys.stderr,
        )
        return 1
    if cache is not None and cached is None:
        cache.put(job, sample)

    stem = args.out or f"TRACE_{workload.name.replace(' ', '_')}"
    jsonl_path = f"{stem}.jsonl"
    chrome_path = f"{stem}.trace.json"
    with open(jsonl_path, "w") as handle:
        jsonl_lines = write_jsonl(telemetry, handle)
    with open(chrome_path, "w") as handle:
        chrome_events = write_chrome_trace(
            telemetry, handle, process_name=f"reunion-sim {workload.name}"
        )

    source = "cache-verified" if cached is not None else "fresh run"
    print(f"sample              : {job.describe()} ({source})")
    print(f"aggregate IPC       : {sample.ipc:.3f}")
    print(summarize(telemetry))
    print(f"wrote {jsonl_path} ({jsonl_lines} lines)")
    print(f"wrote {chrome_path} ({chrome_events} trace events)")
    return 0


def cmd_campaign(args) -> int:
    """Run a statistical fault-injection campaign (see repro.campaign).

    The coverage report (text to stdout, JSON via --report) is a pure
    function of the campaign inputs — a ``--resume`` re-run of a
    completed campaign serves every outcome from the cache and emits
    byte-identical reports.  Execution diagnostics (cache hits, workers,
    wall time) go to stderr.
    """
    from repro.campaign import plan_campaign, run_campaign
    from repro.campaign.plan import campaign_config
    from repro.campaign.report import render_report, report_payload, write_report
    from repro.exec.jobs import resolve_workload
    from repro.exec.pool import ExecutionError
    from repro.exec.progress import Progress
    from repro.sim.config import parse_policy

    try:
        workload = resolve_workload(args.workload)
    except KeyError:
        print(f"unknown workload {args.workload!r}; try `repro list`", file=sys.stderr)
        return 2
    try:
        policy = parse_policy(args.policy) if args.policy else None
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    config = campaign_config(
        fingerprint_bits=args.bits,
        fingerprint_interval=args.interval,
        comparison_latency=args.latency,
        coherence=args.coherence,
        n_logical=args.pairs,
        policy=policy,
    )
    progress = None
    if sys.stderr.isatty():  # pragma: no cover - interactive nicety
        total = len(plan_campaign(args.workload, args.injections, seed=args.seed, config=config))
        progress = Progress(total=total, stream=sys.stderr)
    try:
        result = run_campaign(
            workload.name,
            args.injections,
            seed=args.seed,
            config=config,
            commit_target=args.commits,
            max_cycles=args.max_cycles,
            workers=args.jobs,
            resume=args.resume,
            progress=progress,
            allow_partial=args.allow_partial,
        )
    except ValueError as exc:
        # Partial-policy configs are refused with directions (the plain
        # campaign report would misstate their coverage); surface the
        # message instead of a traceback.
        print(exc, file=sys.stderr)
        return 2
    except ExecutionError as exc:
        print(exc, file=sys.stderr)
        print(exc.manifest.render(), file=sys.stderr)
        return 1
    print(render_report(workload.name, args.bits, result.stats, result.crosscheck))
    if args.report:
        payload = report_payload(
            workload.name,
            args.bits,
            args.seed,
            result.stats,
            result.crosscheck,
            result.outcomes,
        )
        write_report(args.report, payload)
        print(f"wrote {args.report}", file=sys.stderr)
    print(result.manifest.render(), file=sys.stderr)
    return 0


def cmd_frontier(args) -> int:
    """Sweep protection policies for the coverage-vs-throughput frontier.

    Each (policy, workload) point pairs an IPC sample at the chosen
    scale with a fault-injection campaign under the same policy (see
    :mod:`repro.harness.frontier`).  Both sides ride their persistent
    caches, so re-runs and ``--resume`` sweeps are cheap.
    """
    from repro.exec.cache import default_cache
    from repro.exec.pool import ExecutionError
    from repro.harness import Runner, current_scale, scale_by_name
    from repro.harness.frontier import (
        DEFAULT_POLICIES,
        DEFAULT_WORKLOADS,
        run_frontier,
    )
    from repro.sim.config import parse_policy

    policies = args.policies or list(DEFAULT_POLICIES)
    try:
        for spec in policies:
            parse_policy(spec)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    scale = scale_by_name(args.scale) if args.scale else current_scale()
    cache = None if args.no_cache else default_cache()
    runner = Runner(scale, cache=cache, options=_options_from_args(args))
    try:
        result = run_frontier(
            scale=scale,
            policies=policies,
            workload_names=args.workloads or list(DEFAULT_WORKLOADS),
            injections=args.injections,
            seed=args.seed,
            jobs=args.jobs,
            runner=runner,
            resume=args.resume,
            progress_stream=sys.stderr if sys.stderr.isatty() else None,
        )
    except ExecutionError as exc:
        print(exc, file=sys.stderr)
        print(exc.manifest.render(), file=sys.stderr)
        return 1
    print(result.render())
    problems = result.check_ordering()
    for problem in problems:
        print(f"ORDERING VIOLATION: {problem}", file=sys.stderr)
    if args.report:
        result.write(args.report)
        print(f"wrote {args.report}", file=sys.stderr)
    return 1 if problems else 0


def cmd_serve(args) -> int:
    """Run the experiment-service daemon (see repro.serve)."""
    from repro.serve.server import main as serve_main

    argv: list[str] = []
    if args.socket:
        argv += ["--socket", args.socket]
    if args.host:
        argv += ["--host", args.host]
    if args.port is not None:
        argv += ["--port", str(args.port)]
    argv += ["--workers", str(args.serve_workers)]
    if args.cache_root:
        argv += ["--cache-root", args.cache_root]
    if args.backend:
        argv += ["--backend", args.backend]
    if args.telemetry:
        argv += ["--telemetry"]
    if args.event_log:
        argv += ["--event-log", args.event_log]
    return serve_main(argv)


def cmd_submit(args) -> int:
    """Submit a reproduce sweep, preferring a running daemon.

    Identical plans, identical output: the reproduce path already routes
    its batch through :func:`repro.serve.client.service_pool` when a
    daemon is reachable, so `submit` is `reproduce` plus an explicit
    statement (on stderr) of which way the batch went — and a graceful
    in-process fallback when no daemon is running.
    """
    from repro.serve.client import service_address, service_pool

    address = service_address()
    pool = service_pool(client_id="submit") if address else None
    if pool is not None:
        print(f"submitting via experiment service at {address}", file=sys.stderr)
    else:
        print(
            "no experiment service running; executing in-process "
            "(start one with `repro serve`)",
            file=sys.stderr,
        )
    return cmd_reproduce(args)


def cmd_cache(args) -> int:
    """Cache maintenance: stats, age-based gc, verify/quarantine."""
    from repro.exec.cache import (
        cache_gc,
        cache_stats,
        cache_verify,
        maintenance_stores,
    )

    try:
        stores = maintenance_stores(root=args.root, backend=args.backend)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.store != "all":
        stores = [(label, cache) for label, cache in stores if label == args.store]

    if args.cache_command == "stats":
        for label, cache in stores:
            print(cache_stats(cache, label).render())
        return 0
    if args.cache_command == "gc":
        try:
            older_than = _parse_age(args.older_than)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        for label, cache in stores:
            removed, removed_bytes = cache_gc(cache, older_than)
            print(
                f"{label}: removed {removed} record(s), {removed_bytes:,} bytes "
                f"(older than {args.older_than})"
            )
        return 0
    if args.cache_command == "verify":
        quarantined_total = 0
        for label, cache in stores:
            ok, quarantined = cache_verify(cache)
            quarantined_total += len(quarantined)
            line = f"{label}: {ok} record(s) OK"
            if quarantined:
                line += f", {len(quarantined)} quarantined:"
            print(line)
            for key in quarantined:
                print(f"  {key}")
        return 1 if quarantined_total else 0
    print(f"unknown cache command {args.cache_command!r}", file=sys.stderr)
    return 2


def _parse_age(text: str) -> float:
    """Parse `--older-than` values: seconds, or 30m / 12h / 7d / 2w."""
    text = text.strip().lower()
    units = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 7 * 86400}
    scale = 1.0
    if text and text[-1] in units:
        scale = units[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"--older-than wants a duration like 3600, 30m, 12h, 7d; got {text!r}"
        ) from None
    if value < 0:
        raise ValueError("--older-than must be non-negative")
    return value * scale


def cmd_bench(args) -> int:
    from repro.exec.benchreport import (
        BenchReport,
        check_regression,
        compare_reports,
        run_bench,
    )

    if args.compare:
        old_path, new_path = args.compare
        print(compare_reports(BenchReport.load(old_path), BenchReport.load(new_path)))
        return 0

    try:
        report = run_bench(
            scale_name=args.scale or "quick",
            jobs=args.jobs,
            only=args.only,
            compare_kernels=not args.no_kernel_comparison,
            compare_exec=not args.no_exec_comparison,
            compare_telemetry=not args.no_telemetry_comparison,
            directory_scenario=not args.no_directory_scenario,
            protection_scenario=not args.no_protection_scenario,
            quick=args.quick,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(report.render())
    path = report.write(args.out)
    print(f"wrote {path}", file=sys.stderr)
    if args.baseline:
        baseline = BenchReport.load(args.baseline)
        problems = check_regression(report, baseline)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reunion multicore-redundancy reproduction (MICRO-39, 2006)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available workloads").set_defaults(
        func=cmd_list
    )

    run_parser = subparsers.add_parser("run", help="measure one workload")
    run_parser.add_argument("workload")
    run_parser.add_argument("--warmup", type=int, default=1500)
    run_parser.add_argument("--measure", type=int, default=3000)
    run_parser.add_argument("--seed", type=int, default=0)
    _add_system_args(run_parser)
    _add_options_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    asm_parser = subparsers.add_parser("asm", help="assemble and run a .s file")
    asm_parser.add_argument("file")
    asm_parser.add_argument("--max-cycles", type=int, default=1_000_000)
    asm_parser.add_argument("--trace", action="store_true", help="print a pipeline waterfall")
    _add_system_args(asm_parser)
    _add_options_args(asm_parser)
    asm_parser.set_defaults(func=cmd_asm)

    trace_parser = subparsers.add_parser(
        "trace",
        help="replay one sample with telemetry armed; write JSONL and "
        "Chrome trace_event files",
    )
    trace_parser.add_argument("workload")
    trace_parser.add_argument("--warmup", type=int, default=1500)
    trace_parser.add_argument("--measure", type=int, default=3000)
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--level",
        choices=[level for level in TRACE_LEVELS if level != "off"],
        default="events",
        help="telemetry level (default events)",
    )
    trace_parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="event ring-buffer capacity (default 65536)",
    )
    trace_parser.add_argument(
        "--out",
        help="output stem; writes <stem>.jsonl and <stem>.trace.json "
        "(default TRACE_<workload>)",
    )
    trace_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result cache (.repro-cache/)",
    )
    _add_system_args(trace_parser)
    _add_options_args(trace_parser)
    trace_parser.set_defaults(func=cmd_trace)

    repro_parser = subparsers.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    repro_parser.add_argument(
        "--only", nargs="*", help="fig5 fig6a fig6b table3 fig7a fig7b sc"
    )
    repro_parser.add_argument(
        "--scale",
        choices=["quick", "standard", "paper"],
        help="experiment scale (overrides REPRO_SCALE; default quick)",
    )
    repro_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the sample batch"
    )
    repro_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result cache (.repro-cache/)",
    )
    _add_options_args(repro_parser)
    repro_parser.set_defaults(func=cmd_reproduce)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="statistical fault-injection campaign with coverage report",
    )
    campaign_parser.add_argument("workload", help="workload name (see `repro list`)")
    campaign_parser.add_argument(
        "--injections", type=int, default=200, help="planned injection count"
    )
    campaign_parser.add_argument(
        "--seed", type=int, default=0, help="campaign sampling seed"
    )
    campaign_parser.add_argument(
        "--bits", type=int, default=16, help="fingerprint CRC width"
    )
    campaign_parser.add_argument(
        "--interval", type=int, default=8, help="fingerprint comparison interval"
    )
    campaign_parser.add_argument(
        "--latency", type=int, default=10, help="fingerprint comparison latency"
    )
    campaign_parser.add_argument(
        "--commits",
        type=int,
        default=None,
        help="golden commit target per run (default 400)",
    )
    campaign_parser.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        help="per-run cycle budget before the timeout bucket",
    )
    campaign_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the injection batch"
    )
    campaign_parser.add_argument(
        "--coherence",
        choices=["shared", "snoopy", "directory"],
        default="shared",
        help="memory backend for the injected systems (default shared)",
    )
    campaign_parser.add_argument(
        "--pairs",
        type=int,
        default=1,
        help="vocal/mute pairs per injected system (default 1)",
    )
    campaign_parser.add_argument(
        "--resume",
        action="store_true",
        help="serve already-completed injections from the campaign checkpoint",
    )
    campaign_parser.add_argument(
        "--report", default=None, help="also write the JSON report to this path"
    )
    campaign_parser.add_argument(
        "--policy",
        default=None,
        metavar="POLICY",
        help="uniform per-pair protection policy (e.g. little-mute:2); "
        "partial policies are refused unless --allow-partial is given",
    )
    campaign_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="permit partial protection policies (interval-sampled / "
        "unprotected / dynamic) whose coverage gaps the plain report "
        "would misattribute; prefer `repro frontier`",
    )
    campaign_parser.set_defaults(func=cmd_campaign)

    frontier_parser = subparsers.add_parser(
        "frontier",
        help="sweep protection policies: IPC vs detection coverage frontier",
    )
    frontier_parser.add_argument(
        "--scale",
        choices=["quick", "standard", "paper"],
        help="IPC sample scale (overrides REPRO_SCALE; default quick)",
    )
    frontier_parser.add_argument(
        "--policies",
        nargs="*",
        metavar="POLICY",
        help="policy specs to sweep (default: full little-mute:2 "
        "interval-sampled:0.5 dynamic:8,2,16 unprotected)",
    )
    frontier_parser.add_argument(
        "--workloads",
        nargs="*",
        help="workload names (default: compute-kernel pointer-chase)",
    )
    frontier_parser.add_argument(
        "--injections",
        type=int,
        default=48,
        help="injections per coverage point (default 48)",
    )
    frontier_parser.add_argument(
        "--seed", type=int, default=0, help="campaign sampling seed"
    )
    frontier_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes"
    )
    frontier_parser.add_argument(
        "--resume",
        action="store_true",
        help="serve completed injections from the campaign checkpoint",
    )
    frontier_parser.add_argument(
        "--report", default=None, help="also write the frontier JSON to this path"
    )
    frontier_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent sample cache (.repro-cache/)",
    )
    _add_options_args(frontier_parser)
    frontier_parser.set_defaults(func=cmd_frontier)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the local experiment service (sweep daemon over the "
        "exec pool; see docs/ARCHITECTURE.md)",
    )
    serve_parser.add_argument(
        "--socket", default=None,
        help="Unix socket to bind (default <cache root>/serve.sock)",
    )
    serve_parser.add_argument("--host", default=None, help="bind TCP instead")
    serve_parser.add_argument("--port", type=int, default=None, help="TCP port")
    serve_parser.add_argument(
        "--workers", dest="serve_workers", type=int, default=2,
        help="fork worker processes (default 2)",
    )
    serve_parser.add_argument(
        "--cache-root", default=None,
        help="cache root to serve (default REPRO_CACHE_DIR or .repro-cache)",
    )
    serve_parser.add_argument(
        "--backend", choices=["json", "sqlite"], default=None,
        help="cache backend (default REPRO_CACHE_BACKEND or json)",
    )
    serve_parser.add_argument(
        "--telemetry", action="store_true",
        help="arm metrics-level telemetry on sample jobs; stream digests "
        "into the event feed",
    )
    serve_parser.add_argument(
        "--event-log", default=None,
        help="append every scheduler event as JSONL to this file",
    )
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a reproduce sweep to a running `repro serve` daemon "
        "(falls back to in-process execution)",
    )
    submit_parser.add_argument(
        "--only", nargs="*", help="fig5 fig6a fig6b table3 fig7a fig7b sc"
    )
    submit_parser.add_argument(
        "--scale",
        choices=["quick", "standard", "paper"],
        help="experiment scale (overrides REPRO_SCALE; default quick)",
    )
    submit_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the in-process fallback",
    )
    submit_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result cache (.repro-cache/)",
    )
    _add_options_args(submit_parser)
    submit_parser.set_defaults(func=cmd_submit)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect and maintain the persistent result cache"
    )
    cache_parser.add_argument(
        "--root", default=None,
        help="cache root (default REPRO_CACHE_DIR or .repro-cache)",
    )
    cache_parser.add_argument(
        "--backend", choices=["json", "sqlite"], default=None,
        help="cache backend (default REPRO_CACHE_BACKEND or json)",
    )
    cache_parser.add_argument(
        "--store", choices=["samples", "campaign", "all"], default="all",
        help="which store to operate on (default all)",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats", help="entry counts, bytes, schema-version mix per store"
    )
    gc_parser = cache_sub.add_parser(
        "gc", help="delete records older than a cutoff"
    )
    gc_parser.add_argument(
        "--older-than", required=True, metavar="AGE",
        help="age cutoff: seconds, or 30m / 12h / 7d / 2w",
    )
    cache_sub.add_parser(
        "verify",
        help="decode every record; quarantine corrupt ones under "
        "<root>/quarantine/ (exit 1 if any)",
    )
    cache_parser.set_defaults(func=cmd_cache)

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the artifact sweeps and the simulation kernels; "
        "write BENCH_<date>.json",
    )
    bench_parser.add_argument(
        "--scale",
        choices=["quick", "standard", "paper"],
        help="bench scale (default quick)",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for each sweep"
    )
    bench_parser.add_argument(
        "--only", nargs="*", help="fig5 fig6a fig6b table3 fig7a fig7b sc"
    )
    bench_parser.add_argument(
        "--out", default=".", help="directory for the BENCH_<date>.json report"
    )
    bench_parser.add_argument(
        "--baseline",
        help="a prior BENCH json; exit 1 if any phase regresses >3x "
        "or the kernels disagree",
    )
    bench_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD.json", "NEW.json"),
        help="diff two BENCH_*.json reports (per-phase cycles/s ratio, "
        "speedup drift) instead of running the bench",
    )
    bench_parser.add_argument(
        "--no-kernel-comparison",
        action="store_true",
        help="skip the naive-vs-event kernel timing",
    )
    bench_parser.add_argument(
        "--no-exec-comparison",
        action="store_true",
        help="skip the dual-vs-replay execution timing",
    )
    bench_parser.add_argument(
        "--no-telemetry-comparison",
        action="store_true",
        help="skip the telemetry-off-vs-armed timing and bit-identity check",
    )
    bench_parser.add_argument(
        "--no-directory-scenario",
        action="store_true",
        help="skip the many-pair directory-backend scenario",
    )
    bench_parser.add_argument(
        "--no-protection-scenario",
        action="store_true",
        help="skip the per-policy protection throughput scenario",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke run: one phase at reduced windows, single memory-bound "
        "kernel artifact, compute-bound execution comparison only "
        "(finishes in seconds)",
    )
    bench_parser.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
