#!/usr/bin/env python3
"""The paper's Figure 1, live: a data race causes input incoherence.

Two logical processors share a flag and a payload.  The reader spins on
the flag; the writer publishes the payload and then sets the flag.  On
the reader's Reunion pair, the vocal core observes the new flag value
(its stale L1 line is invalidated by coherence), but the *mute* core's
private cache still holds the old line — the phantom request that filled
it is invisible to the coherence protocol.  The two cores take different
branches, their fingerprints diverge, and the re-execution protocol
rolls both back and re-reads the flag with a synchronizing request.

Watch the recovery counters: correctness is preserved with zero special
handling in the coherence protocol — exactly the paper's claim.

Usage::

    python examples/input_incoherence.py
"""

from repro import CMPSystem, DEFAULT_CONFIG, Mode, PhantomStrength, assemble

READER = """
    ; spin on M[0x100], then read the payload at M[0x108]
    movi r1, 0x100
wait:
    load r2, [r1]
    beq r2, r0, wait
    load r3, [r1+8]
    movi r4, 0xded      ; sentinel: we got here
    halt
"""

WRITER = """
    ; publish payload, then raise the flag (release-style with membar)
    movi r1, 0x100
    movi r2, 777
    store r2, [r1+8]
    membar
    movi r3, 1
    store r3, [r1]
    halt
"""


def run(phantom: PhantomStrength) -> None:
    config = DEFAULT_CONFIG.replace(n_logical=2).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10, phantom=phantom
    )
    system = CMPSystem(config, [assemble(READER), assemble(WRITER)])
    cycles = system.run_until_idle(max_cycles=500_000)

    reader_pair = system.pairs[0]
    reader_vocal = system.vocal_cores[0]
    reader_mute = system.cores[2]

    print(f"\n=== phantom strength: {phantom.value} ===")
    print(f"cycles                  : {cycles}")
    print(f"flag observed           : {reader_vocal.arf.read(2)}")
    print(f"payload observed        : {reader_vocal.arf.read(3)} (expected 777)")
    print(f"reader reached end      : {reader_vocal.arf.read(4) == 0xDED}")
    print(f"vocal == mute ARF       : {reader_vocal.arf == reader_mute.arf}")
    print(f"recoveries (reader pair): {reader_pair.recoveries}")
    print(f"  - fingerprint mismatch: {reader_pair.mismatch_recoveries}")
    print(f"  - divergence watchdog : {reader_pair.timeout_recoveries}")
    print(f"synchronizing requests  : {reader_pair.sync_requests}")
    assert reader_vocal.arf.read(3) == 777, "payload must be the published value"


def main() -> None:
    print("Reproducing Figure 1: input incoherence from an intervening store.")
    for phantom in (PhantomStrength.GLOBAL, PhantomStrength.SHARED, PhantomStrength.NULL):
        run(phantom)
    print(
        "\nIn all three cases the race resolves correctly; weaker phantom"
        "\nstrengths simply recover more often (Table 3's story)."
    )


if __name__ == "__main__":
    main()
