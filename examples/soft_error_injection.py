#!/usr/bin/env python3
"""Inject soft errors and watch Reunion detect and recover from them.

A single-bit upset is flipped into the datapath of the vocal core, then
the mute core, then periodically into both at once.  Every upset is
caught by fingerprint comparison before it reaches architectural state,
and the re-execution protocol restores agreement.  A non-redundant
control run shows the alternative: silent data corruption.

Usage::

    python examples/soft_error_injection.py
"""

from repro import CMPSystem, DEFAULT_CONFIG, FaultInjector, Mode, assemble
from repro.isa.interpreter import run as golden_run

PROGRAM = """
    movi r1, 80
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    xor r5, r4, r1
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def build(mode: Mode) -> CMPSystem:
    config = DEFAULT_CONFIG.replace(n_logical=1).with_redundancy(
        mode=mode, comparison_latency=10
    )
    return CMPSystem(config, [assemble(PROGRAM)])


def check_against_golden(system: CMPSystem) -> bool:
    golden = golden_run(assemble(PROGRAM)).registers
    vocal = system.vocal_cores[0]
    return all(vocal.arf.read(reg) == golden.read(reg) for reg in range(8))


def scenario(label: str, victim_index: int | None, interval: int) -> None:
    system = build(Mode.REUNION)
    injectors = []
    victims = (
        [system.cores[victim_index]]
        if victim_index is not None
        else [system.vocal_cores[0], system.cores[1]]
    )
    for i, core in enumerate(victims):
        injector = FaultInjector(interval=interval, seed=17 + i)
        injector.attach(core)
        injectors.append(injector)
    system.run_until_idle(max_cycles=1_000_000)
    upsets = sum(len(i.records) for i in injectors)
    print(f"\n--- {label} ---")
    print(f"upsets injected    : {upsets}")
    print(f"recoveries         : {system.recoveries()}")
    print(f"unrecoverable      : {system.failed}")
    print(f"final state correct: {check_against_golden(system)}")


def scenario_both(label: str, intervals: tuple[int, int], two_stage: bool) -> None:
    """Upsets on both cores, with configurable fingerprint compression.

    When both cores are corrupted on the *same dynamic instruction* and
    the flipped bit positions are congruent modulo the fingerprint
    width, two-stage parity folding maps both corruptions to the same
    folded value and the mismatch aliases away — the coverage the paper
    trades for hash bandwidth (Section 4.3: aliasing doubles to
    2^-(N-1)).  Single-stage compression catches the same pattern.
    Truly simultaneous dual-core upsets are vanishingly rare in reality;
    this scenario manufactures them by running both injectors at the
    same count.
    """
    config = DEFAULT_CONFIG.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10, two_stage_compression=two_stage
    )
    system = CMPSystem(config, [assemble(PROGRAM)])
    injectors = []
    for core, (interval, seed) in zip(
        (system.vocal_cores[0], system.cores[1]), zip(intervals, (17, 18))
    ):
        injector = FaultInjector(interval=interval, seed=seed)
        injector.attach(core)
        injectors.append(injector)
    system.run_until_idle(max_cycles=1_000_000)
    upsets = sum(len(i.records) for i in injectors)
    print(f"\n--- {label} ---")
    print(f"upsets injected    : {upsets}")
    print(f"recoveries         : {system.recoveries()}")
    print(f"final state correct: {check_against_golden(system)}")


def main() -> None:
    print("Soft-error injection under the Reunion execution model")

    scenario("single upsets on the VOCAL core", victim_index=0, interval=120)
    scenario("single upsets on the MUTE core", victim_index=1, interval=120)
    # Staggered intervals: upsets land on different instructions, as
    # independent particle strikes would.
    scenario_both(
        "upsets on BOTH cores (independent strikes)", (90, 131), two_stage=True
    )
    # Adversarial common-mode: both cores corrupted on the same dynamic
    # instruction.  With two-stage compression, congruent bit flips can
    # alias (silent corruption ~1 time in 16); single-stage catches them.
    scenario_both(
        "simultaneous upsets, two-stage compression (aliasing possible)",
        (90, 90),
        two_stage=True,
    )
    scenario_both(
        "simultaneous upsets, one-stage compression", (90, 90), two_stage=False
    )

    # Negative control: the same storm with no redundancy.
    print("\n--- control: NON-REDUNDANT core, same upsets ---")
    system = build(Mode.NONREDUNDANT)
    injector = FaultInjector(interval=90, seed=17)
    injector.attach(system.vocal_cores[0])
    system.run_until_idle(max_cycles=1_000_000)
    print(f"upsets injected    : {len(injector.records)}")
    print(f"final state correct: {check_against_golden(system)}  <- silent corruption")


if __name__ == "__main__":
    main()
