#!/usr/bin/env python3
"""Dual-use reconfiguration: trade redundancy for throughput, live.

The paper's introduction argues a multicore redundant design should be
dual-use: "a single design can provide a dual-use capability by
supporting both redundant and non-redundant execution."  This example
runs a Reunion pair, then — mid-execution — splits it so the mute core
becomes an independent logical processor running its own program, and
finally re-forms the pair and proves the redundancy works again by
injecting a soft error.

Usage::

    python examples/dual_use.py
"""

from repro import CMPSystem, DEFAULT_CONFIG, FaultInjector, Mode, assemble
from repro.isa.interpreter import run as golden_run

PRIMARY = """
    ; long-running accumulation
    movi r1, 2000
    movi r2, 0
loop:
    add r2, r2, r1
    xor r3, r3, r2
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

SIDE_JOB = """
    ; independent batch job for the freed core
    .word 0x7000 21
    movi r1, 0x7000
    load r2, [r1]
    mul r3, r2, r2
    store r3, [r1+8]
    halt
"""


def main() -> None:
    config = DEFAULT_CONFIG.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10
    )
    system = CMPSystem(config, [assemble(PRIMARY)])
    vocal = system.vocal_cores[0]
    partner = system.cores[1]

    print("Phase 1: redundant execution (vocal + mute)")
    system.run(300)
    print(f"  checked instructions so far: {vocal.gate.fingerprints_compared}")

    print("\nPhase 2: decouple — the mute becomes an independent core")
    promoted = system.decouple(0, assemble(SIDE_JOB))
    assert promoted is partner
    while not promoted.idle and system.now < 100_000:
        system.step()
    print(f"  side job result: 21^2 = {promoted.arf.read(3)}")
    print(f"  pairs active: {len(system.pairs)} (primary runs unchecked)")

    print("\nPhase 3: re-couple — redundancy resumes from the vocal's state")
    pair = system.couple(0, promoted)
    injector = FaultInjector(seed=9)
    injector.attach(promoted)  # the mute again
    injector.inject_once(after=50)
    system.run_until_idle(max_cycles=1_000_000)

    golden = golden_run(assemble(PRIMARY)).registers
    print(f"  upset injected into re-coupled mute: {len(injector.records)}")
    print(f"  recoveries: {pair.recoveries} (detection works again)")
    print(f"  final r2 correct: {vocal.arf.read(2) == golden.read(2)}")
    print(f"  vocal == mute ARF: {vocal.arf == promoted.arf}")


if __name__ == "__main__":
    main()
