#!/usr/bin/env python3
"""Quickstart: run one program redundantly and watch Reunion at work.

Assembles a small program, runs it on a non-redundant core and on a
Reunion logical pair (vocal + mute), and shows that both produce the
same architectural result — with the redundant run's checking machinery
visible in the statistics.

Usage::

    python examples/quickstart.py
"""

from repro import CMPSystem, DEFAULT_CONFIG, Mode, assemble

PROGRAM = """
    ; sum of squares 1..20, plus a memory round trip
    movi r1, 20
    movi r2, 0
    movi r3, 0x1000
loop:
    mul r4, r1, r1
    add r2, r2, r4
    store r2, [r3]
    load r5, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def run(mode: Mode) -> CMPSystem:
    config = DEFAULT_CONFIG.replace(n_logical=1).with_redundancy(
        mode=mode, comparison_latency=10
    )
    system = CMPSystem(config, [assemble(PROGRAM)])
    cycles = system.run_until_idle()
    print(f"\n=== {mode.value} ===")
    print(f"cycles            : {cycles}")
    print(f"user instructions : {system.user_instructions()}")
    print(f"IPC               : {system.ipc():.3f}")
    vocal = system.vocal_cores[0]
    print(f"sum of squares    : {vocal.arf.read(2)}  (expected {sum(i * i for i in range(1, 21))})")
    if system.pairs:
        pair = system.pairs[0]
        mute = system.cores[1]
        print(f"mute ARF matches  : {vocal.arf == mute.arf}")
        print(f"fingerprints compared : {vocal.gate.fingerprints_compared}")
        print(f"synchronizing requests: {pair.sync_requests} (atomics + recovery)")
        print(f"recoveries        : {pair.recoveries}")
    return system


def main() -> None:
    baseline = run(Mode.NONREDUNDANT)
    reunion = run(Mode.REUNION)
    slowdown = reunion.now / baseline.now
    print(f"\nRedundant execution cost: {slowdown:.2f}x cycles for this toy kernel")
    print("Same answer, every instruction checked against a redundant core.")


if __name__ == "__main__":
    main()
