#!/usr/bin/env python3
"""Regenerate every table and figure from the paper's evaluation.

One command, all results: Figure 5, Figure 6(a) and 6(b), Table 3,
Figure 7(a) and 7(b), and the Section 5.5 SC-vs-TSO experiment.

Usage::

    python examples/reproduce_paper.py                # quick scale
    REPRO_SCALE=standard python examples/reproduce_paper.py
    python examples/reproduce_paper.py --only fig5 table3
"""

import argparse
import time

from repro.harness import (
    Runner,
    current_scale,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig7b,
    run_sc_comparison,
    run_table3,
)
from repro.sim.config import Mode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        nargs="*",
        choices=["fig5", "fig6a", "fig6b", "table3", "fig7a", "fig7b", "sc"],
        help="run a subset of the experiments",
    )
    args = parser.parse_args()

    scale = current_scale()
    runner = Runner(scale)
    print(
        f"Scale: {scale.name} (warmup {scale.warmup}, measure {scale.measure}, "
        f"{len(scale.seeds)} seed(s)).  Set REPRO_SCALE to change."
    )

    experiments = {
        "fig5": lambda: run_fig5(runner=runner),
        "fig6a": lambda: run_fig6(Mode.STRICT, runner=runner),
        "fig6b": lambda: run_fig6(Mode.REUNION, runner=runner),
        "table3": lambda: run_table3(runner=runner),
        "fig7a": lambda: run_fig7a(runner=runner),
        "fig7b": lambda: run_fig7b(runner=runner),
        "sc": lambda: run_sc_comparison(runner=runner),
    }
    selected = args.only or list(experiments)

    for name in selected:
        start = time.time()
        result = experiments[name]()
        print()
        print(result.render())
        print(f"[{name} took {time.time() - start:.0f}s]")


if __name__ == "__main__":
    main()
