#!/usr/bin/env python3
"""Survey the Table 2 workload suite on the scaled CMP.

Runs every workload in the suite on the non-redundant baseline and on
Reunion, printing the characteristics the paper's evaluation leans on:
IPC, TLB miss rate, serializing-instruction rate, and (for Reunion)
input-incoherence recoveries and synchronizing requests.

Usage::

    python examples/workload_character.py [--measure CYCLES]
"""

import argparse

from repro import DEFAULT_CONFIG, Mode, run_sample
from repro.workloads import suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--warmup", type=int, default=1500)
    parser.add_argument("--measure", type=int, default=3000)
    args = parser.parse_args()

    base_config = DEFAULT_CONFIG.with_redundancy(mode=Mode.NONREDUNDANT)
    reunion_config = DEFAULT_CONFIG.with_redundancy(
        mode=Mode.REUNION, comparison_latency=10
    )

    header = (
        f"{'workload':<14}{'class':<11}{'IPC':>6}{'tlb/M':>9}{'ser/k':>7}"
        f"{'R-IPC':>7}{'norm':>6}{'inco/M':>9}{'sync':>6}"
    )
    print(header)
    print("-" * len(header))
    for workload in suite():
        base = run_sample(base_config, workload, args.warmup, args.measure)
        reunion = run_sample(reunion_config, workload, args.warmup, args.measure)
        ser_per_k = 1000 * base.serializing / max(1, base.user_instructions)
        norm = reunion.ipc / base.ipc if base.ipc else 0.0
        print(
            f"{workload.name:<14}{workload.category:<11}"
            f"{base.ipc:>6.2f}{base.tlb_misses_per_minstr:>9.0f}{ser_per_k:>7.2f}"
            f"{reunion.ipc:>7.2f}{norm:>6.2f}"
            f"{reunion.incoherence_per_minstr:>9.1f}{reunion.sync_requests:>6}"
        )
    print(
        "\nColumns: baseline IPC (4 logical CPUs), TLB misses and serializing"
        "\ninstructions per retired user instruction, Reunion IPC, normalized"
        "\nIPC, input-incoherence recoveries per 1M instructions, and"
        "\nsynchronizing requests in the window."
    )


if __name__ == "__main__":
    main()
