"""Wire codec: jobs and results must round-trip with identical keys.

The service's dedup hinges on one invariant: a job reconstructed from
its wire rendering recomputes the submitter's content-hash key exactly.
These tests pin that for every job kind, across the awkward corners of
the config space (enums, nested dataclasses, ``pair_policies`` tuples,
``_KEY_EXCLUDE``'d fields).
"""

import dataclasses

import pytest

from repro.campaign.outcome import GoldenReference, Outcome
from repro.campaign.plan import plan_campaign
from repro.exec.jobs import SampleJob
from repro.serve.wire import (
    WireError,
    decode_dataclass,
    golden_from_wire,
    golden_to_wire,
    job_from_wire,
    job_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.sim.config import DEFAULT_CONFIG, Mode, ProtectionPolicy, SystemConfig
from repro.sim.sampling import Sample

CONFIG = DEFAULT_CONFIG.replace(n_logical=2)
REUNION = CONFIG.with_redundancy(mode=Mode.REUNION)

#: Configs spanning the corners the decoder has to get right.
CONFIGS = [
    CONFIG,
    REUNION,
    CONFIG.with_redundancy(mode=Mode.STRICT),
    # Per-pair policy mix: nested dataclasses inside an Optional tuple.
    REUNION.with_protection(
        (
            ProtectionPolicy(mode="full"),
            ProtectionPolicy(mode="little-mute", mute_width=2),
        )
    ),
    REUNION.with_protection(
        ProtectionPolicy(mode="interval-sampled", checked_fraction=0.25)
    ),
    REUNION.with_protection(
        ProtectionPolicy(
            mode="dynamic", off_threshold=48, on_threshold=16, off_intervals=4
        )
    ),
]


def _sample_job(config: SystemConfig, seed: int = 0) -> SampleJob:
    return SampleJob(config, "ocean", seed, warmup=80, measure=160)


class TestSampleJobs:
    @pytest.mark.parametrize("config", CONFIGS, ids=range(len(CONFIGS)))
    def test_round_trip_preserves_key(self, config):
        job = _sample_job(config)
        decoded = job_from_wire(job_to_wire(job))
        assert decoded.key == job.key
        assert decoded.config == job.config
        assert (decoded.workload_name, decoded.seed) == ("ocean", 0)

    def test_wire_is_the_canonical_payload(self):
        job = _sample_job(CONFIG)
        wire = job_to_wire(job)
        assert wire == {"kind": "sample", "job": job.payload()}

    def test_key_excluded_field_decodes_to_default(self):
        """``replay`` never travels — it is result-neutral by contract."""
        config = REUNION.with_protection(ProtectionPolicy(mode="full", replay=False))
        job = _sample_job(config)
        decoded = job_from_wire(job_to_wire(job))
        # Same key (replay is excluded from the hash on both sides)...
        assert decoded.key == job.key
        # ...but the reconstructed policy carries the default.
        assert decoded.config.pair_policies[0].replay is True

    def test_schema_mismatch_rejected(self):
        wire = job_to_wire(_sample_job(CONFIG))
        wire["job"]["schema"] = 9999
        with pytest.raises(WireError, match="schema"):
            job_from_wire(wire)


class TestInjectionJobs:
    def test_round_trip_preserves_key(self):
        jobs = plan_campaign("ocean", 6, seed=1, commit_target=200, max_cycles=4000)
        for job in jobs:
            decoded = job_from_wire(job_to_wire(job))
            assert decoded.key == job.key
            assert decoded.spec == job.spec
            assert decoded.config == job.config

    def test_schema_mismatch_rejected(self):
        job = plan_campaign("ocean", 1, commit_target=200, max_cycles=4000)[0]
        wire = job_to_wire(job)
        wire["job"]["schema"] = 9999
        with pytest.raises(WireError, match="schema"):
            job_from_wire(wire)


class TestMalformedWire:
    def test_unknown_kind(self):
        with pytest.raises(WireError, match="unknown job kind"):
            job_from_wire({"kind": "mystery", "job": {}})

    def test_missing_payload(self):
        with pytest.raises(WireError, match="payload"):
            job_from_wire({"kind": "sample"})

    def test_type_confusion_rejected(self):
        wire = job_to_wire(_sample_job(CONFIG))
        wire["job"]["config"]["n_logical"] = "two"
        with pytest.raises(WireError):
            job_from_wire(wire)

    def test_missing_required_field_rejected(self):
        with pytest.raises(WireError, match="missing required"):
            decode_dataclass(Outcome, {"classification": "masked"})


class TestResults:
    SAMPLE = Sample(
        cycles=160,
        user_instructions=300,
        recoveries=1,
        tlb_misses=2,
        sync_requests=3,
        serializing=4,
    )
    OUTCOME = Outcome(
        classification="masked",
        victim="vocal",
        target="dest_value",
        bit=3,
        inject_index=10,
        fired=True,
        absorbed=True,
        detected=False,
        cause=None,
        latency=None,
        aliased=False,
        flushed=False,
        unchecked=False,
        commits=500,
        cycles=2100,
        recoveries=0,
        signature_matched=True,
    )

    def test_sample_round_trip(self):
        wire = result_to_wire("sample", self.SAMPLE)
        assert result_from_wire("sample", wire) == self.SAMPLE

    def test_outcome_round_trip(self):
        wire = result_to_wire("injection", self.OUTCOME)
        assert result_from_wire("injection", wire) == self.OUTCOME

    def test_outcome_field_mismatch_rejected(self):
        wire = result_to_wire("injection", self.OUTCOME)
        del wire["latency"]
        with pytest.raises(WireError, match="field mismatch"):
            result_from_wire("injection", wire)

    def test_bad_classification_rejected(self):
        wire = result_to_wire("injection", self.OUTCOME)
        wire["classification"] = "melted"
        with pytest.raises(WireError, match="classification"):
            result_from_wire("injection", wire)

    def test_golden_round_trip(self):
        golden = GoldenReference(signature="ab" * 32, commits=500, cycles=2100)
        assert golden_from_wire(golden_to_wire(golden)) == golden
        assert dataclasses.asdict(golden) == golden_to_wire(golden)

    def test_golden_field_mismatch_rejected(self):
        with pytest.raises(WireError, match="golden"):
            golden_from_wire({"signature": "x"})
