"""End-to-end service tests: a real daemon subprocess, real clients.

One daemon serves the whole module (startup costs a process spawn); the
tests drive it the way production callers do — through
:class:`~repro.serve.client.ServicePool` — and audit the daemon's event
log for the dedup guarantee: overlapping submissions from concurrent
clients execute each unique job exactly once.
"""

import collections
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.campaign.plan import plan_campaign
from repro.exec.cache import ResultCache
from repro.exec.jobs import SampleJob, run_job
from repro.exec.pool import ExecutionError
from repro.serve.client import (
    ServeClient,
    ServicePool,
    ServiceUnavailable,
    service_address,
    service_pool,
)
from repro.sim.config import DEFAULT_CONFIG

CONFIG = DEFAULT_CONFIG.replace(n_logical=2)

JOBS = [
    SampleJob(CONFIG, "ocean", seed, warmup=80, measure=160) for seed in range(4)
]


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """A live daemon on a Unix socket; yields (address, event_log_path)."""
    root = tmp_path_factory.mktemp("serve")
    socket_path = root / "serve.sock"
    event_log = root / "events.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    env.pop("REPRO_NO_CACHE", None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve.server",
            "--socket", str(socket_path),
            "--cache-root", str(root / "cache"),
            "--workers", "2",
            "--event-log", str(event_log),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServeClient(str(socket_path), timeout=5)
    deadline = time.monotonic() + 30
    while True:
        try:
            if client.health().get("status") == "ok":
                break
        except (ServiceUnavailable, RuntimeError):
            pass
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("daemon failed to come up")
        time.sleep(0.1)
    yield str(socket_path), event_log
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()


def started_counts(event_log: Path) -> collections.Counter:
    counter: collections.Counter = collections.Counter()
    if event_log.exists():
        for line in event_log.read_text().splitlines():
            event = json.loads(line)
            if event["event"] == "job.started":
                counter[event["key"]] += 1
    return counter


class TestEndToEnd:
    def test_concurrent_clients_dedup_and_match_local(self, daemon, tmp_path):
        """Two clients with overlapping sweeps: every unique job runs
        exactly once, and both clients read the same samples a local
        run produces."""
        address, event_log = daemon
        batches = {"alice": JOBS[:3], "bob": JOBS[1:]}  # overlap: seeds 1, 2
        outputs: dict[str, dict] = {}
        errors: list[BaseException] = []

        def drive(name: str) -> None:
            try:
                pool = ServicePool(address, client_id=name)
                cache = ResultCache(tmp_path / name)
                results, manifest = pool.run(batches[name], cache=cache)
                outputs[name] = results
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(name,)) for name in batches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        # Both clients decoded the overlapping jobs to identical samples,
        # and those match an in-process run bit for bit.
        for job in JOBS[1:3]:
            assert outputs["alice"][job.key] == outputs["bob"][job.key]
        for name, batch in batches.items():
            for job in batch:
                assert outputs[name][job.key] == run_job(job)
        # The dedup guarantee, from the daemon's own event log: each of
        # the 4 unique keys started exactly once.
        counts = started_counts(event_log)
        assert set(counts) == {job.key for job in JOBS}
        assert all(count == 1 for count in counts.values()), counts
        # Each client's local cache holds its own batch (write-through).
        for name, batch in batches.items():
            cache = ResultCache(tmp_path / name)
            assert all(cache.get(job) is not None for job in batch)

    def test_resubmission_is_served_without_rerunning(self, daemon):
        """Runs after the concurrent test: every job is now daemon-side
        state, so a fresh client gets pure hits — zero new starts."""
        address, event_log = daemon
        before = started_counts(event_log)
        pool = ServicePool(address, client_id="latecomer")
        results, manifest = pool.run(JOBS)  # no local cache at all
        assert set(results) == {job.key for job in JOBS}
        assert results[JOBS[0].key] == run_job(JOBS[0])
        assert started_counts(event_log) == before  # nothing re-ran

    def test_injection_without_golden_fails_cleanly(self, daemon):
        address, _ = daemon
        jobs = plan_campaign("ocean", 2, commit_target=200, max_cycles=4000)
        pool = ServicePool(address, client_id="forgetful", golden=None)
        with pytest.raises(ExecutionError, match="golden"):
            pool.run(jobs)

    def test_health_and_errors_over_http(self, daemon):
        address, _ = daemon
        client = ServeClient(address, timeout=5)
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["backend"] == "json"
        with pytest.raises(RuntimeError, match="unknown sweep"):
            client.sweep("no-such-sweep")
        with pytest.raises(RuntimeError, match="no route"):
            client.request("GET", "/nope")
        with pytest.raises(RuntimeError, match="jobs"):
            client.submit([], client_id="empty")


class TestDetection:
    def test_no_serve_wins(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        socket_path.touch()
        env = {"REPRO_NO_SERVE": "1", "REPRO_SERVE": str(socket_path)}
        assert service_address(env) is None
        assert service_pool(env=env) is None

    def test_explicit_address(self):
        assert service_address({"REPRO_SERVE": "/run/repro.sock"}) == "/run/repro.sock"
        assert service_address({"REPRO_SERVE": "localhost:8123"}) == "localhost:8123"

    def test_default_socket_only_when_present(self, tmp_path):
        env = {"REPRO_CACHE_DIR": str(tmp_path)}
        assert service_address(env) is None
        (tmp_path / "serve.sock").touch()
        assert service_address(env) == str(tmp_path / "serve.sock")

    def test_dead_socket_falls_back_to_local(self, tmp_path):
        """A socket file with no listener (killed daemon) must not trap
        clients: the health check fails and callers run locally."""
        stale = tmp_path / "serve.sock"
        stale.touch()
        assert service_pool(env={"REPRO_SERVE": str(stale)}) is None

    def test_live_daemon_detected(self, daemon):
        address, _ = daemon
        pool = service_pool(env={"REPRO_SERVE": address})
        assert pool is not None
        assert isinstance(pool, ServicePool)

    def test_unreachable_daemon_raises_service_unavailable(self, tmp_path):
        pool = ServicePool(str(tmp_path / "gone.sock"), client_id="x")
        with pytest.raises(ServiceUnavailable):
            pool.run(JOBS[:1])
