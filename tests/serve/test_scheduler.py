"""Fair-share scheduler: small clients never starve behind big ones."""

from repro.serve.scheduler import FairShareScheduler


def drain(scheduler: FairShareScheduler) -> list[tuple[str, str]]:
    order = []
    while True:
        picked = scheduler.pop()
        if picked is None:
            return order
        order.append(picked)


class TestFairShare:
    def test_single_client_is_fifo(self):
        scheduler = FairShareScheduler()
        for n in range(4):
            scheduler.push("solo", f"k{n}")
        assert drain(scheduler) == [("solo", f"k{n}") for n in range(4)]

    def test_small_client_drains_ahead_of_big_one(self):
        """A 3-job sweep submitted *after* a 100-job campaign finishes
        within the first handful of dispatches, not after job 100."""
        scheduler = FairShareScheduler()
        for n in range(100):
            scheduler.push("campaign", f"big{n}")
        for n in range(3):
            scheduler.push("smoke", f"small{n}")
        order = drain(scheduler)
        smoke_positions = [
            index for index, (client, _) in enumerate(order) if client == "smoke"
        ]
        assert max(smoke_positions) <= 6  # strict alternation: 1, 3, 5
        assert len(order) == 103

    def test_round_robin_between_equal_clients(self):
        scheduler = FairShareScheduler()
        for n in range(3):
            scheduler.push("a", f"a{n}")
            scheduler.push("b", f"b{n}")
        clients = [client for client, _ in drain(scheduler)]
        assert clients == ["a", "b", "a", "b", "a", "b"]

    def test_served_counts_persist_across_sweeps(self):
        """A client that already consumed service yields to a newcomer."""
        scheduler = FairShareScheduler()
        for n in range(5):
            scheduler.push("old", f"first{n}")
        drain(scheduler)
        assert scheduler.served("old") == 5
        scheduler.push("old", "later")
        scheduler.push("new", "n0")
        scheduler.push("new", "n1")
        order = drain(scheduler)
        assert [client for client, _ in order] == ["new", "new", "old"]

    def test_priority_orders_within_a_client(self):
        scheduler = FairShareScheduler()
        scheduler.push("c", "low", priority=0)
        scheduler.push("c", "high", priority=5)
        assert [key for _, key in drain(scheduler)] == ["high", "low"]

    def test_priority_breaks_served_ties_across_clients(self):
        scheduler = FairShareScheduler()
        scheduler.push("a", "a0", priority=0)
        scheduler.push("b", "b0", priority=9)
        client, key = scheduler.pop()
        assert (client, key) == ("b", "b0")

    def test_discard_removes_every_queued_instance(self):
        scheduler = FairShareScheduler()
        scheduler.push("a", "dup")
        scheduler.push("b", "dup")
        scheduler.push("b", "keep")
        scheduler.discard("dup")
        assert len(scheduler) == 1
        assert drain(scheduler) == [("b", "keep")]

    def test_empty_pop_returns_none(self):
        scheduler = FairShareScheduler()
        assert scheduler.pop() is None
        assert len(scheduler) == 0

    def test_deterministic_dispatch(self):
        def build():
            scheduler = FairShareScheduler()
            for n in range(10):
                scheduler.push("x" if n % 3 else "y", f"k{n}", priority=n % 2)
            return drain(scheduler)

        assert build() == build()
