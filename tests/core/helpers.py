"""Helpers for Reunion integration tests: small systems, quick builds."""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.sim.cmp import CMPSystem
from repro.sim.config import (
    CacheStyle,
    Consistency,
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    Mode,
    PhantomStrength,
    RedundancyConfig,
    SystemConfig,
    TLBConfig,
    apply_env_coherence,
    apply_env_protection,
)

# REPRO_COHERENCE retargets the whole integration suite at another
# memory backend (the CI matrix leg); unset leaves the shared-L2 default.
SMALL = apply_env_coherence(
    SystemConfig(
        n_logical=1,
        core=CoreConfig(width=4, rob_size=32, store_buffer_size=8, frontend_latency=3),
        l1=L1Config(size_bytes=1024, assoc=2, load_to_use=2, mshrs=4),
        l2=L2Config(size_bytes=16 * 1024, assoc=8, banks=2, hit_latency=8, mshrs=8),
        tlb=TLBConfig(itlb_entries=8, dtlb_entries=16, page_bits=10, hw_fill_latency=10),
        memory=MemoryConfig(latency=40),
        redundancy=RedundancyConfig(divergence_timeout=2000),
    )
)

# For tests that probe shared-L2 controller *internals* (its directory
# bookkeeping, bank scaling): pinned regardless of REPRO_COHERENCE, the
# way test_snoopy pins SNOOPY_SMALL.  The directory backend's equivalent
# invariants live in tests/memory/test_directory_backend.py.
SHARED_SMALL = SMALL.replace(cache_style=CacheStyle.SHARED)


def build(
    sources: list[str] | list[Program],
    mode: Mode = Mode.REUNION,
    n_logical: int | None = None,
    comparison_latency: int = 10,
    phantom: PhantomStrength = PhantomStrength.GLOBAL,
    fingerprint_interval: int = 1,
    consistency: Consistency = Consistency.TSO,
    config: SystemConfig = SMALL,
) -> CMPSystem:
    programs = [
        source if isinstance(source, Program) else assemble(source)
        for source in sources
    ]
    system_config = config.replace(
        n_logical=n_logical or len(programs),
        consistency=consistency,
    ).with_redundancy(
        mode=mode,
        comparison_latency=comparison_latency,
        phantom=phantom,
        fingerprint_interval=fingerprint_interval,
    )
    # REPRO_PROTECTION retargets the suite at a uniform per-pair
    # protection policy (the CI little-mute leg).  Applied after the
    # redundancy mode is final — it is a no-op for non-REUNION modes and
    # for tests that pin explicit pair_policies.
    system_config = apply_env_protection(system_config)
    return CMPSystem(system_config, programs)
