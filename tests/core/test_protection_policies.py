"""Behavioral contracts of the per-pair protection policies.

One system per policy mode, each checked against the golden interpreter:
``full`` stays bit-identical to the policy-free path, ``little-mute``
narrows only the mute's issue stage, ``interval-sampled`` skips the
Bresenham share of interval comparisons, ``unprotected`` parks the mute
entirely, and ``dynamic`` toggles under check-stage backlog.  A mixed
many-pair system on the directory backend exercises all of them side by
side (the API's reason to exist: heterogeneous protection in one CMP).
"""

import pytest

from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.cmp import CMPSystem
from repro.sim.config import (
    Mode,
    ProtectionPolicy,
    apply_env_coherence,
    parse_policy,
)
from repro.sim.options import SimOptions
from tests.core.helpers import SMALL

LOOPY = """
    movi r1, 40
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

COMPUTE = """
    movi r1, 60
    movi r2, 1
loop:
    mul r2, r2, r1
    addi r2, r2, 3
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def _build(sources, policy=None, fingerprint_interval=4, **options_kwargs):
    programs = [assemble(source) for source in sources]
    config = SMALL.replace(n_logical=len(programs)).with_redundancy(
        mode=Mode.REUNION, fingerprint_interval=fingerprint_interval
    )
    if policy is not None:
        config = config.with_protection(policy)
    options = SimOptions(**options_kwargs) if options_kwargs else None
    return CMPSystem(config, programs, options=options)


def assert_golden(system, source, logical=0):
    golden = golden_run(assemble(source))
    vocal = system.vocal_cores[logical]
    for reg in range(8):
        assert vocal.arf.read(reg) == golden.registers.read(reg), f"r{reg}"
    assert vocal.user_retired == golden.retired


class TestFullPolicyBitIdentity:
    """An explicit ``full`` policy is the absent-policy path, bit for bit."""

    @pytest.mark.parametrize("execution", ["replay", "dual"])
    def test_identical_to_policy_free_run(self, execution):
        bare = _build([LOOPY], execution=execution)
        bare_cycles = bare.run_until_idle()
        explicit = _build(
            [LOOPY],
            policy=ProtectionPolicy.full(replay=(execution == "replay")),
            execution=execution,
        )
        explicit_cycles = explicit.run_until_idle()
        assert explicit_cycles == bare_cycles
        assert explicit.vocal_cores[0].arf == bare.vocal_cores[0].arf
        assert (
            explicit.vocal_cores[0].user_retired
            == bare.vocal_cores[0].user_retired
        )
        assert explicit.recoveries() == bare.recoveries() == 0

    def test_full_pair_still_checks_every_interval(self):
        system = _build([LOOPY], policy=ProtectionPolicy.full())
        system.run_until_idle()
        gate = system.vocal_cores[0].gate
        assert gate.intervals_closed > 0
        assert gate.intervals_unchecked == 0


class TestLittleMute:
    def test_narrows_only_the_mute_issue_stage(self):
        system = _build([COMPUTE], policy=ProtectionPolicy.little_mute(1))
        vocal, mute = system.vocal_cores[0], system.cores[1]
        assert mute.issue_width == 1
        assert vocal.issue_width == SMALL.core.width
        system.run_until_idle()
        assert not system.failed
        assert_golden(system, COMPUTE)
        # Fetch/dispatch/retire keep full width: fingerprints cover the
        # whole stream, so nothing goes unchecked and the mute retires
        # every user instruction the vocal does.
        assert mute.user_retired == vocal.user_retired
        assert vocal.gate.intervals_unchecked == 0

    def test_costs_throughput_against_full(self):
        full_cycles = _build([COMPUTE], policy=ProtectionPolicy.full()).run_until_idle()
        little_cycles = _build(
            [COMPUTE], policy=ProtectionPolicy.little_mute(1)
        ).run_until_idle()
        assert little_cycles >= full_cycles

    def test_no_spurious_recoveries(self):
        system = _build([COMPUTE], policy=ProtectionPolicy.little_mute(1))
        system.run_until_idle()
        assert system.recoveries() == 0


class TestIntervalSampled:
    def test_skips_the_bresenham_share(self):
        system = _build(
            [LOOPY], policy=ProtectionPolicy.interval_sampled(0.5)
        )
        system.run_until_idle()
        assert not system.failed
        assert_golden(system, LOOPY)
        gate = system.vocal_cores[0].gate
        assert gate.intervals_closed > 4
        # f=0.5 checks every other interval; the Bresenham schedule can
        # be off by one at the tail.
        assert abs(gate.intervals_unchecked - gate.intervals_closed / 2) <= 1

    def test_both_gates_agree_on_the_schedule(self):
        system = _build(
            [LOOPY], policy=ProtectionPolicy.interval_sampled(0.25)
        )
        system.run_until_idle()
        vocal, mute = system.vocal_cores[0], system.cores[1]
        assert vocal.gate.intervals_unchecked == mute.gate.intervals_unchecked
        assert system.recoveries() == 0


class TestUnprotected:
    def test_mute_is_parked(self):
        system = _build([LOOPY], policy=ProtectionPolicy.unprotected())
        system.run_until_idle()
        assert not system.failed
        assert_golden(system, LOOPY)
        mute = system.cores[1]
        assert mute.mirror_passive
        assert mute.user_retired == 0
        assert mute.total_retired == 0

    def test_no_interval_is_compared(self):
        system = _build([LOOPY], policy=ProtectionPolicy.unprotected())
        system.run_until_idle()
        gate = system.vocal_cores[0].gate
        assert gate.intervals_closed > 0
        assert gate.intervals_unchecked == gate.intervals_closed
        assert gate.fingerprints_compared == 0

    def test_buys_back_the_comparison_latency(self):
        full_cycles = _build([LOOPY], policy=ProtectionPolicy.full()).run_until_idle()
        bare_cycles = _build(
            [LOOPY], policy=ProtectionPolicy.unprotected()
        ).run_until_idle()
        assert bare_cycles <= full_cycles


class TestDynamic:
    def test_toggles_under_backlog(self):
        # off_threshold=1: any check-stage backlog at a comparison point
        # pauses protection for the next two intervals.
        system = _build(
            [LOOPY],
            policy=ProtectionPolicy.dynamic(1, 0, 2),
            fingerprint_interval=2,
        )
        system.run_until_idle()
        assert not system.failed
        assert_golden(system, LOOPY)
        pair = system.pairs[0]
        assert pair.protection_toggles >= 1
        gate = system.vocal_cores[0].gate
        assert 0 < gate.intervals_unchecked < gate.intervals_closed

    def test_stats_expose_the_policy_counters(self):
        system = _build(
            [LOOPY],
            policy=ProtectionPolicy.dynamic(1, 0, 2),
            fingerprint_interval=2,
        )
        system.run_until_idle()
        snapshot = system.collect_stats().snapshot()
        assert snapshot["pair0.unchecked_intervals"] > 0
        assert snapshot["pair0.protection_toggles"] >= 1


# Disjoint store regions per pair: cross-pair sharing would inject
# genuine input incoherence (and its recoveries), which is not what
# this class is probing.
MIXED_SOURCES = [COMPUTE, LOOPY.replace("0x400", "0x800"), COMPUTE, LOOPY]
MIXED_POLICIES = tuple(
    parse_policy(spec)
    for spec in ("full", "little-mute:2", "interval-sampled:0.5", "unprotected")
)


class TestMixedManycore:
    """Heterogeneous protection across pairs of one directory-backend CMP."""

    @pytest.fixture(scope="class")
    def system(self):
        config = apply_env_coherence(
            SMALL.replace(n_logical=len(MIXED_SOURCES)),
            {"REPRO_COHERENCE": "directory"},
        ).with_redundancy(mode=Mode.REUNION, fingerprint_interval=4)
        config = config.with_protection(MIXED_POLICIES)
        system = CMPSystem(
            config, [assemble(source) for source in MIXED_SOURCES]
        )
        system.run_until_idle()
        return system

    def test_every_vocal_matches_golden(self, system):
        assert not system.failed
        for logical, source in enumerate(MIXED_SOURCES):
            assert_golden(system, source, logical=logical)

    def test_each_pair_keeps_its_own_policy(self, system):
        assert [pair.policy.describe() for pair in system.pairs] == [
            "full",
            "little-mute:2",
            "interval-sampled:0.5",
            "unprotected",
        ]
        # full: everything checked
        assert system.pairs[0].vocal.gate.intervals_unchecked == 0
        # little-mute: narrowed mute, still full coverage
        assert system.pairs[1].mute.issue_width == 2
        assert system.pairs[1].vocal.gate.intervals_unchecked == 0
        # sampled: roughly half skipped
        sampled_gate = system.pairs[2].vocal.gate
        assert 0 < sampled_gate.intervals_unchecked < sampled_gate.intervals_closed
        # unprotected: parked mute, nothing compared
        assert system.pairs[3].mute.user_retired == 0
        assert system.pairs[3].vocal.gate.fingerprints_compared == 0

    def test_no_cross_pair_interference(self, system):
        assert system.recoveries() == 0
