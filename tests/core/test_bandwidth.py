"""Unit tests for comparison-bandwidth accounting (Section 2.4)."""

from repro.core.bandwidth import BandwidthMeter, ends_dependence_chain, update_bits
from repro.isa import Instruction, Op, assemble
from repro.pipeline.rob import DynInstr
from tests.pipeline.helpers import build_core, run_to_halt


def entry_for(inst, **fields):
    entry = DynInstr(0, 0, inst)
    for name, value in fields.items():
        setattr(entry, name, value)
    return entry


class TestUpdateBits:
    def test_alu_result(self):
        entry = entry_for(Instruction(Op.ADD, rd=1, rs1=2, rs2=3), result=5)
        assert update_bits(entry) == 64

    def test_store_addr_and_value(self):
        entry = entry_for(
            Instruction(Op.STORE, rs1=1, rs2=2), addr=0x100, store_value=9
        )
        assert update_bits(entry) == 128

    def test_branch_target(self):
        entry = entry_for(Instruction(Op.BEQ, rs1=1, rs2=2, target=0), actual_next=3)
        assert update_bits(entry) == 64

    def test_load_counts_register_only(self):
        entry = entry_for(Instruction(Op.LOAD, rd=1, rs1=2), result=7, addr=0x100)
        assert update_bits(entry) == 64

    def test_nop_zero(self):
        assert update_bits(entry_for(Instruction(Op.NOP))) == 0


class TestChainEnds:
    def test_store_always_ends(self):
        assert ends_dependence_chain(entry_for(Instruction(Op.STORE, rs1=1, rs2=2)))

    def test_consumed_result_does_not_end(self):
        entry = entry_for(Instruction(Op.ADD, rd=1, rs1=2, rs2=3), consumed=True)
        assert not ends_dependence_chain(entry)

    def test_unconsumed_result_ends(self):
        entry = entry_for(Instruction(Op.ADD, rd=1, rs1=2, rs2=3), consumed=False)
        assert ends_dependence_chain(entry)


class TestMeterOnRealRun:
    def test_chain_comparison_saves_bandwidth(self):
        program = assemble(
            """
            movi r1, 50
            movi r2, 0
            loop:
                add r3, r1, r1      ; consumed by r4
                add r4, r3, r3      ; consumed by r2
                add r2, r2, r4      ; chain continues into next iteration
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        core, _, _ = build_core(program)
        meter = BandwidthMeter()
        meter.attach(core)
        run_to_halt(core)
        assert meter.instructions == core.user_retired
        assert 0 < meter.chain_bits_per_instr < meter.direct_bits_per_instr
        summary = meter.summary()
        assert summary["fingerprint"] == 16.0

    def test_fingerprint_interval_scales(self):
        meter = BandwidthMeter(fingerprint_bits=16, fingerprint_interval=50)
        assert meter.fingerprint_bits_per_instr == 16 / 50
