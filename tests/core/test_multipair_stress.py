"""Multi-pair stress: random racing programs on a full Reunion CMP.

Two logical processors run hypothesis-generated programs over the SAME
data region, so stores race freely across pairs.  There is no golden
interleaving to compare against; the properties that must survive any
interleaving are:

* no pair ever reaches the unrecoverable-failure state;
* both logical processors halt (forward progress through every race);
* within each pair, the mute's architectural registers equal the
  vocal's at the end (output comparison kept them locked together).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cmp import CMPSystem
from repro.sim.config import Mode, PhantomStrength
from tests.core.helpers import SMALL
from tests.pipeline.test_differential_random import random_program


@given(
    program_a=random_program(),
    program_b=random_program(),
    phantom=st.sampled_from([PhantomStrength.GLOBAL, PhantomStrength.NULL]),
)
@settings(max_examples=12, deadline=None)
def test_racing_pairs_stay_locked_and_finish(program_a, program_b, phantom):
    config = SMALL.replace(n_logical=2).with_redundancy(
        mode=Mode.REUNION, comparison_latency=10, phantom=phantom
    )
    system = CMPSystem(config, [program_a, program_b])
    system.run_until_idle(max_cycles=3_000_000)

    assert not system.failed
    for logical in range(2):
        vocal = system.vocal_cores[logical]
        mute = system.cores[2 + logical]
        assert vocal.halted, f"logical {logical} did not finish"
        assert vocal.arf == mute.arf, f"pair {logical} diverged silently"
