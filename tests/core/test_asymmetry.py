"""Vocal/mute asymmetry robustness.

After recoveries (or artificial perturbation) the two cores of a pair
can diverge *microarchitecturally* — different TLB contents, different
branch-predictor state, different cache contents.  The execution model
requires none of that to be architecturally visible: results stay
golden and no spurious unrecoverable conditions arise.  This is the
motivation for keeping TLB handlers out of the fingerprint stream
(DESIGN.md §6.3).
"""

from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.config import Mode, TLBMode
from tests.core.helpers import SMALL, build

WORKLOAD = """
    movi r1, 0x2000
    movi r2, 0
    movi r3, 20
loop:
    load r4, [r1]
    add r2, r2, r4
    addi r1, r1, 1024     ; new page every iteration
    addi r3, r3, -1
    bne r3, r0, loop
    halt
"""

#: Six pages visited repeatedly: small enough to stay TLB-resident.
SMALL_PAGES = """
    movi r5, 5
outer:
    movi r1, 0x2000
    movi r3, 6
loop:
    load r4, [r1]
    add r2, r2, r4
    addi r1, r1, 1024
    addi r3, r3, -1
    bne r3, r0, loop
    addi r5, r5, -1
    bne r5, r0, outer
    halt
"""


class TestTLBAsymmetry:
    def test_one_sided_dtlb_warmup_is_timing_only(self):
        """Pre-fill the vocal's DTLB so only the mute takes misses.

        With a software-managed TLB the mute injects handlers the vocal
        does not; because handlers are not fingerprinted, the pair skews
        in time but never mismatches.
        """
        config = SMALL.with_tlb(mode=TLBMode.SOFTWARE)
        system = build([SMALL_PAGES], mode=Mode.REUNION, config=config)
        vocal = system.vocal_cores[0]
        for page in range(6):
            vocal.port.dtlb_fill(0x2000 + page * 1024)
        system.run_until_idle(max_cycles=1_000_000)
        assert not system.failed
        golden = golden_run(assemble(SMALL_PAGES)).registers
        assert vocal.arf.read(2) == golden.read(2)
        assert vocal.arf == system.cores[1].arf
        # The mute really did take the one-sided handler path.
        assert system.cores[1].injected_retired > vocal.injected_retired
        assert system.recoveries() == 0

    def test_one_sided_branch_predictor_noise(self):
        """Pre-train the mute's predictor wrongly: timing-only divergence."""
        system = build([WORKLOAD], mode=Mode.REUNION)
        mute = system.cores[1]
        for _ in range(64):
            mute.predictor.update(4, taken=False)  # poison the loop branch
        system.run_until_idle(max_cycles=1_000_000)
        assert not system.failed
        golden = golden_run(assemble(WORKLOAD)).registers
        assert system.vocal_cores[0].arf.read(2) == golden.read(2)
        assert system.recoveries() == 0

    def test_one_sided_cache_pollution(self):
        """Wipe the mute's L1 mid-run: refills are phantom, results golden."""
        system = build([WORKLOAD], mode=Mode.REUNION)
        system.run(150)
        system.cores[1].port.l1.clear()
        system.run_until_idle(max_cycles=1_000_000)
        assert not system.failed
        golden = golden_run(assemble(WORKLOAD)).registers
        assert system.vocal_cores[0].arf.read(2) == golden.read(2)
