"""Tests for fingerprint generation and the two-stage compression."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import FingerprintAccumulator, fingerprint_words
from repro.isa import Instruction, Op
from repro.pipeline.rob import DynInstr

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestBasics:
    def test_deterministic(self):
        assert fingerprint_words([1, 2, 3]) == fingerprint_words([1, 2, 3])

    def test_sensitive_to_value(self):
        assert fingerprint_words([1, 2, 3]) != fingerprint_words([1, 2, 4])

    def test_sensitive_to_order(self):
        assert fingerprint_words([1, 2]) != fingerprint_words([2, 1])

    def test_width_respected(self):
        for bits in (8, 12, 16, 24, 32):
            digest = fingerprint_words([0xDEADBEEF, 42], bits=bits)
            assert 0 <= digest < (1 << bits)

    def test_empty_is_zero(self):
        acc = FingerprintAccumulator()
        assert acc.digest() == 0

    def test_reset(self):
        acc = FingerprintAccumulator()
        acc.add_word(7)
        acc.reset()
        assert acc.digest() == 0

    @given(a=words, b=words)
    @settings(max_examples=100)
    def test_single_bit_flips_always_detected(self, a, b):
        """CRCs detect any single-bit error regardless of compression."""
        if a == b:
            return
        diff = a ^ b
        if diff & (diff - 1):  # not a single-bit difference
            return
        assert fingerprint_words([a]) != fingerprint_words([b])

    @given(values=st.lists(words, min_size=1, max_size=8), bit=st.integers(0, 63))
    @settings(max_examples=100)
    def test_single_bit_flip_in_stream_detected(self, values, bit):
        corrupted = list(values)
        corrupted[0] ^= 1 << bit
        assert fingerprint_words(values) != fingerprint_words(corrupted)


class TestTwoStage:
    def test_two_stage_differs_from_single_stage(self):
        values = [0x0123456789ABCDEF, 0xFEDCBA9876543210]
        assert fingerprint_words(values, two_stage=True) != fingerprint_words(
            values, two_stage=False
        )

    def test_two_stage_aliasing_bounded(self):
        """Empirical aliasing of the folded 16-bit CRC stays near 2^-15.

        The paper proves two-stage compression at most doubles the
        aliasing probability: <= 2^-(N-1).  With 40k random pairs we
        expect ~1 collision; assert a loose upper bound.
        """
        import random

        rng = random.Random(42)
        collisions = 0
        trials = 40_000
        for _ in range(trials):
            a = rng.getrandbits(64)
            b = rng.getrandbits(64)
            if a != b and fingerprint_words([a]) == fingerprint_words([b]):
                collisions += 1
        assert collisions / trials <= 4 * 2**-15  # generous 4x margin

    def test_parity_fold_is_xor_of_chunks(self):
        # Folding 64 bits to 16: four 16-bit chunks XORed.
        value = 0x1111_2222_3333_4444
        folded = 0x1111 ^ 0x2222 ^ 0x3333 ^ 0x4444
        assert fingerprint_words([value], two_stage=True) == fingerprint_words(
            [folded], two_stage=True
        )


class TestInstructionUpdates:
    def _entry(self, inst, result=None, addr=None, store_value=None, actual_next=None):
        entry = DynInstr(0, 0, inst)
        entry.result = result
        entry.addr = addr
        entry.store_value = store_value
        entry.actual_next = actual_next
        return entry

    def _digest(self, entry):
        acc = FingerprintAccumulator()
        acc.add_instruction(entry)
        return acc.digest()

    def test_register_update_captured(self):
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        a = self._digest(self._entry(inst, result=5))
        b = self._digest(self._entry(inst, result=6))
        assert a != b

    def test_store_address_and_value_captured(self):
        inst = Instruction(Op.STORE, rs1=1, rs2=2)
        base = self._entry(inst, addr=0x100, store_value=7)
        other_addr = self._entry(inst, addr=0x108, store_value=7)
        other_value = self._entry(inst, addr=0x100, store_value=8)
        assert self._digest(base) != self._digest(other_addr)
        assert self._digest(base) != self._digest(other_value)

    def test_branch_target_captured(self):
        inst = Instruction(Op.BEQ, rs1=1, rs2=2, target=5)
        taken = self._entry(inst, actual_next=5)
        not_taken = self._entry(inst, actual_next=1)
        assert self._digest(taken) != self._digest(not_taken)

    def test_nop_contributes_nothing(self):
        assert self._digest(self._entry(Instruction(Op.NOP))) == 0


class TestNarrowWidths:
    """CRC-4: the bit-serial path the aliasing experiments run on."""

    def test_width_respected(self):
        for two_stage in (False, True):
            digest = fingerprint_words([0xDEADBEEF, 42], bits=4, two_stage=two_stage)
            assert 0 <= digest < 16

    def test_deterministic_and_sensitive(self):
        assert fingerprint_words([1, 2, 3], bits=4) == fingerprint_words(
            [1, 2, 3], bits=4
        )
        assert fingerprint_words([1, 2], bits=4) != fingerprint_words([2, 1], bits=4)

    @given(values=st.lists(words, min_size=1, max_size=4), bit=st.integers(0, 63))
    @settings(max_examples=100)
    def test_single_bit_flip_detected_single_stage(self, values, bit):
        # Without folding, a CRC detects any single-bit error outright.
        corrupted = list(values)
        corrupted[0] ^= 1 << bit
        assert fingerprint_words(values, bits=4, two_stage=False) != fingerprint_words(
            corrupted, bits=4, two_stage=False
        )

    @given(values=st.lists(words, min_size=1, max_size=4), bit=st.integers(0, 63))
    @settings(max_examples=100)
    def test_single_bit_flip_detected_two_stage(self, values, bit):
        # Parity folding maps a single-bit delta to a single-bit folded
        # delta, which the CRC still always detects.
        corrupted = list(values)
        corrupted[0] ^= 1 << bit
        assert fingerprint_words(values, bits=4, two_stage=True) != fingerprint_words(
            corrupted, bits=4, two_stage=True
        )

    @given(values=st.lists(words, min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_serial_path_matches_byte_table_at_8_bits(self, values):
        # Both paths are defined at 8 bits; forcing the bit-serial route
        # must reproduce the table digests exactly (same convention:
        # non-reflected, zero init, low byte lane first).
        for two_stage in (False, True):
            table_acc = FingerprintAccumulator(bits=8, two_stage=two_stage)
            serial_acc = FingerprintAccumulator(bits=8, two_stage=two_stage)
            serial_acc._table = None
            table_acc.add_words(values)
            serial_acc.add_words(values)
            assert table_acc.digest() == serial_acc.digest()

    def test_reset_and_empty(self):
        acc = FingerprintAccumulator(bits=4)
        assert acc.digest() == 0
        acc.add_word(7)
        acc.reset()
        assert acc.digest() == 0

    def test_unknown_width_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FingerprintAccumulator(bits=5)
