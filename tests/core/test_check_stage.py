"""Unit tests for the check gate and strict oracle gate."""

from repro.core.check_stage import CheckGate
from repro.core.strict import StrictCheckGate
from repro.isa import Instruction, Op
from repro.pipeline.rob import DynInstr
from repro.sim.config import RedundancyConfig


def make_entry(seq, op=Op.ADD, injected=False, result=1, serializing=False):
    if op is Op.ADD:
        inst = Instruction(op, rd=1, rs1=2, rs2=3)
    else:
        inst = Instruction(op)
    entry = DynInstr(seq, seq, inst, injected=injected)
    entry.result = result
    entry.serializing = serializing or inst.is_serializing
    return entry


class TestCheckGate:
    def test_interval_closes_at_interval_length(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=2))
        gate.offer(make_entry(0), now=0)
        assert gate.peek_closed() is None
        gate.offer(make_entry(1), now=1)
        record = gate.peek_closed()
        assert record is not None and record.count == 2

    def test_serializing_closes_interval_early(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=50))
        gate.offer(make_entry(0), now=0)
        gate.offer(make_entry(1, op=Op.MEMBAR, result=None), now=1)
        record = gate.peek_closed()
        assert record is not None and record.count == 2

    def test_halt_closes_interval(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=50))
        gate.offer(make_entry(0, op=Op.HALT, result=None), now=0)
        record = gate.peek_closed()
        assert record is not None and record.has_halt

    def test_entries_wait_for_clear(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=1))
        gate.offer(make_entry(0), now=0)
        assert gate.pop_retirable(now=100, limit=4) == []
        record = gate.pop_closed()
        gate.clear_interval(record.index, retire_time=10)
        assert gate.pop_retirable(now=9, limit=4) == []
        popped = gate.pop_retirable(now=10, limit=4)
        assert len(popped) == 1 and popped[0].seq == 0

    def test_injected_entries_transparent(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=1, comparison_latency=10))
        user = make_entry(0)
        handler_load = make_entry(1, op=Op.NOP, injected=True, result=None)
        gate.offer(user, now=0)
        gate.offer(handler_load, now=0)
        # The injected instruction cannot retire past the unchecked user entry.
        assert gate.pop_retirable(now=100, limit=4) == []
        record = gate.pop_closed()
        assert record.count == 1  # handler not fingerprinted
        gate.clear_interval(record.index, retire_time=5)
        popped = gate.pop_retirable(now=5, limit=4)
        assert [e.seq for e in popped] == [0, 1]

    def test_injected_serializing_pays_comparison_latency(self):
        """Handler traps/MMU ops stall a full comparison latency (Sec 4.4)."""
        gate = CheckGate(RedundancyConfig(fingerprint_interval=1, comparison_latency=10))
        handler_trap = make_entry(0, op=Op.TRAP, injected=True, result=None)
        gate.offer(handler_trap, now=20)
        assert gate.pop_retirable(now=29, limit=4) == []
        assert len(gate.pop_retirable(now=30, limit=4)) == 1

    def test_single_step_closes_every_instruction(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=50))
        gate.single_step = True
        gate.offer(make_entry(0), now=0)
        assert gate.peek_closed() is not None

    def test_timeout_close(self):
        config = RedundancyConfig(fingerprint_interval=10)
        gate = CheckGate(config)
        gate.offer(make_entry(0), now=0)
        gate.maybe_timeout_close(now=5)
        assert gate.peek_closed() is None
        gate.maybe_timeout_close(now=100)
        record = gate.peek_closed()
        assert record is not None and record.count == 1

    def test_flush_resets_everything(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=1))
        gate.offer(make_entry(0), now=0)
        gate.flush()
        assert gate.peek_closed() is None
        assert gate.pop_retirable(now=100, limit=4) == []
        # Interval numbering restarts from zero after recovery.
        gate.offer(make_entry(1), now=5)
        assert gate.peek_closed().index == 0

    def test_squashed_entries_skipped(self):
        gate = CheckGate(RedundancyConfig(fingerprint_interval=1))
        entry = make_entry(0)
        gate.offer(entry, now=0)
        record = gate.pop_closed()
        gate.clear_interval(record.index, retire_time=0)
        entry.squashed = True
        assert gate.pop_retirable(now=10, limit=4) == []

    def test_identical_streams_produce_identical_records(self):
        config = RedundancyConfig(fingerprint_interval=3)
        gate_a, gate_b = CheckGate(config), CheckGate(config)
        for gate in (gate_a, gate_b):
            for seq in range(6):
                gate.offer(make_entry(seq, result=seq * 7), now=seq)
        while True:
            a, b = gate_a.peek_closed(), gate_b.peek_closed()
            if a is None:
                assert b is None
                break
            assert (a.fingerprint, a.count, a.index) == (b.fingerprint, b.count, b.index)
            gate_a.pop_closed()
            gate_b.pop_closed()

    def test_different_values_produce_different_fingerprints(self):
        config = RedundancyConfig(fingerprint_interval=1)
        gate_a, gate_b = CheckGate(config), CheckGate(config)
        gate_a.offer(make_entry(0, result=1), now=0)
        gate_b.offer(make_entry(0, result=2), now=0)
        assert gate_a.peek_closed().fingerprint != gate_b.peek_closed().fingerprint


class TestStrictGate:
    def test_self_clears_after_latency(self):
        gate = StrictCheckGate(RedundancyConfig(fingerprint_interval=1, comparison_latency=10))
        gate.offer(make_entry(0), now=5)
        assert gate.pop_retirable(now=14, limit=4) == []
        assert len(gate.pop_retirable(now=15, limit=4)) == 1

    def test_zero_latency_clears_immediately(self):
        gate = StrictCheckGate(RedundancyConfig(fingerprint_interval=1, comparison_latency=0))
        gate.offer(make_entry(0), now=5)
        assert len(gate.pop_retirable(now=5, limit=4)) == 1

    def test_interval_batching(self):
        gate = StrictCheckGate(RedundancyConfig(fingerprint_interval=4, comparison_latency=10))
        for seq in range(3):
            gate.offer(make_entry(seq), now=seq)
        assert gate.pop_retirable(now=50, limit=8) == []  # interval still open
        gate.offer(make_entry(3), now=3)
        assert len(gate.pop_retirable(now=13, limit=8)) == 4
