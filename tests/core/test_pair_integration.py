"""End-to-end tests of the Reunion execution model on full systems.

These are the paper's scenarios run in miniature: redundant pairs with
relaxed input replication, racing writers causing input incoherence, weak
phantom strengths forcing constant recovery, and the forward-progress
guarantee of the re-execution protocol (Lemma 2).
"""

import pytest

from repro.isa import assemble
from repro.isa.interpreter import run as golden_run
from repro.sim.config import Consistency, Mode, PhantomStrength
from tests.core.helpers import build

SIMPLE = """
    .word 0x100 5
    movi r1, 0x100
    load r2, [r1]
    addi r3, r2, 10
    store r3, [r1+8]
    load r4, [r1+8]
    mul r5, r4, r2
    halt
"""

LOOPY = """
    movi r1, 25
    movi r2, 0
    movi r3, 0x400
loop:
    add r2, r2, r1
    store r2, [r3]
    load r4, [r3]
    addi r3, r3, 8
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def assert_golden(system, source, logical=0):
    golden = golden_run(assemble(source))
    vocal = system.vocal_cores[logical]
    for reg in range(8):
        assert vocal.arf.read(reg) == golden.registers.read(reg), f"r{reg}"
    assert vocal.user_retired == golden.retired


class TestModesProduceIdenticalResults:
    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
    def test_simple_program(self, mode):
        system = build([SIMPLE], mode=mode)
        system.run_until_idle()
        assert not system.failed
        assert_golden(system, SIMPLE)

    @pytest.mark.parametrize("mode", [Mode.NONREDUNDANT, Mode.STRICT, Mode.REUNION])
    def test_loop_with_memory(self, mode):
        system = build([LOOPY], mode=mode)
        system.run_until_idle()
        assert_golden(system, LOOPY)

    def test_reunion_no_sharing_no_recoveries(self):
        system = build([LOOPY], mode=Mode.REUNION)
        system.run_until_idle()
        assert system.recoveries() == 0

    def test_mute_arf_matches_vocal(self):
        system = build([LOOPY], mode=Mode.REUNION)
        system.run_until_idle()
        vocal, mute = system.vocal_cores[0], system.cores[1]
        assert vocal.arf == mute.arf


class TestCheckingCost:
    def test_strict_zero_latency_matches_nonredundant(self):
        base = build([LOOPY], mode=Mode.NONREDUNDANT)
        base_cycles = base.run_until_idle()
        strict = build([LOOPY], mode=Mode.STRICT, comparison_latency=0)
        strict_cycles = strict.run_until_idle()
        assert abs(strict_cycles - base_cycles) <= 2

    def test_latency_monotonically_slows_strict(self):
        serial_heavy = """
            movi r1, 12
        loop:
            membar
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """
        cycles = []
        for latency in (0, 10, 40):
            system = build([serial_heavy], mode=Mode.STRICT, comparison_latency=latency)
            cycles.append(system.run_until_idle())
        assert cycles[0] < cycles[1] < cycles[2]

    def test_serializing_stall_scales_with_latency(self):
        # 12 membars * latency delta of 30 cycles should appear directly.
        serial_heavy = """
            movi r1, 12
        loop:
            membar
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """
        fast = build([serial_heavy], mode=Mode.STRICT, comparison_latency=0).run_until_idle()
        slow = build([serial_heavy], mode=Mode.STRICT, comparison_latency=30).run_until_idle()
        assert slow - fast >= 12 * 30


class TestAtomicsViaSyncRequest:
    def test_atomic_executes_exactly_once(self):
        source = """
            .word 0x200 100
            movi r1, 0x200
            movi r2, 7
            atomic r3, [r1], r2
            load r4, [r1]
            halt
        """
        system = build([source], mode=Mode.REUNION)
        system.run_until_idle()
        assert_golden(system, source)
        vocal = system.vocal_cores[0]
        assert vocal.arf.read(3) == 100  # old value
        assert vocal.arf.read(4) == 107  # written exactly once
        assert system.pairs[0].sync_requests >= 1

    def test_cas_spinlock_under_reunion(self):
        source = """
            movi r1, 0x200
            spin:
                cas r2, [r1], r0, 1
                bne r2, r0, spin
            movi r3, 99
            halt
        """
        system = build([source], mode=Mode.REUNION)
        system.run_until_idle()
        assert system.vocal_cores[0].arf.read(3) == 99


class TestInputIncoherence:
    """The Figure 1 race: a competing writer makes the mute stale."""

    #: Logical processor 0 spins until M[0x100] becomes nonzero, then
    #: reads a payload the writer published before the flag.
    READER = """
        movi r1, 0x100
        wait:
            load r2, [r1]
            beq r2, r0, wait
        load r3, [r1+8]
        movi r4, 1
        halt
    """

    #: Logical processor 1 publishes a payload, then sets the flag.
    WRITER = """
        movi r1, 0x100
        movi r2, 77
        store r2, [r1+8]
        membar
        movi r3, 1
        store r3, [r1]
        halt
    """

    def test_race_resolves_correctly(self):
        system = build([self.READER, self.WRITER], mode=Mode.REUNION)
        system.run_until_idle(max_cycles=100_000)
        assert not system.failed
        reader = system.vocal_cores[0]
        assert reader.arf.read(2) == 1  # saw the flag
        assert reader.arf.read(3) == 77  # and the payload
        assert reader.arf.read(4) == 1  # reached the end

    def test_reader_mute_matches_vocal_after_race(self):
        system = build([self.READER, self.WRITER], mode=Mode.REUNION)
        system.run_until_idle(max_cycles=100_000)
        vocal, mute = system.vocal_cores[0], system.cores[2]
        assert vocal.arf == mute.arf

    #: Sums eight cold cache lines: every load is an L1 miss the first
    #: time, so weak phantom strengths return garbage to the mute.
    COLD_READER = """
        .word 0x800 1
        .word 0x840 2
        .word 0x880 3
        .word 0x8c0 4
        .word 0x900 5
        .word 0x940 6
        .word 0x980 7
        .word 0x9c0 8
        movi r1, 0x800
        movi r2, 0
        movi r3, 8
    loop:
        load r4, [r1]
        add r2, r2, r4
        addi r1, r1, 64
        addi r3, r3, -1
        bne r3, r0, loop
        halt
    """

    def test_forward_progress_with_null_phantom(self):
        """Lemma 2: even arbitrary-data phantom replies cannot livelock."""
        system = build(
            [self.COLD_READER], mode=Mode.REUNION, phantom=PhantomStrength.NULL
        )
        system.run_until_idle(max_cycles=500_000)
        assert not system.failed
        assert_golden(system, self.COLD_READER)
        assert system.vocal_cores[0].arf.read(2) == 36
        assert system.recoveries() >= 8  # every cold line forced a recovery

    def test_forward_progress_with_shared_phantom(self):
        system = build(
            [self.COLD_READER], mode=Mode.REUNION, phantom=PhantomStrength.SHARED
        )
        system.run_until_idle(max_cycles=500_000)
        assert_golden(system, self.COLD_READER)

    def test_null_phantom_recovers_more_than_global(self):
        recoveries = {}
        for phantom in (PhantomStrength.GLOBAL, PhantomStrength.NULL):
            system = build([self.COLD_READER], mode=Mode.REUNION, phantom=phantom)
            system.run_until_idle(max_cycles=500_000)
            recoveries[phantom] = system.recoveries()
        assert recoveries[PhantomStrength.GLOBAL] == 0
        assert recoveries[PhantomStrength.NULL] >= 8


class TestConsistencyModels:
    def test_sc_mode_correct(self):
        system = build([LOOPY], mode=Mode.REUNION, consistency=Consistency.SC)
        system.run_until_idle(max_cycles=500_000)
        assert_golden(system, LOOPY)

    def test_sc_slower_than_tso_under_redundancy(self):
        tso = build([LOOPY], mode=Mode.REUNION, comparison_latency=20)
        tso_cycles = tso.run_until_idle(max_cycles=500_000)
        sc = build(
            [LOOPY],
            mode=Mode.REUNION,
            comparison_latency=20,
            consistency=Consistency.SC,
        )
        sc_cycles = sc.run_until_idle(max_cycles=500_000)
        assert sc_cycles > tso_cycles


class TestFingerprintIntervals:
    @pytest.mark.parametrize("interval", [1, 4, 16])
    def test_intervals_preserve_correctness(self, interval):
        system = build([LOOPY], mode=Mode.REUNION, fingerprint_interval=interval)
        system.run_until_idle(max_cycles=500_000)
        assert_golden(system, LOOPY)
