"""Property-based end-to-end testing of the Reunion execution model.

Random terminating programs (the same generator the pipeline's
differential test uses) run on a full vocal/mute pair under every
phantom strength.  Whatever races, recoveries, garbage phantom data or
re-executions occur along the way, the vocal's final architectural state
must match the golden interpreter and the mute must agree with the vocal
— Lemma 1 and Lemma 2 of the paper, exercised mechanically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.interpreter import run as golden_run
from repro.sim.cmp import CMPSystem
from repro.sim.config import PhantomStrength
from tests.core.helpers import SMALL
from tests.pipeline.test_differential_random import DATA_REGS, random_program
from repro.sim.config import Mode


@given(
    program=random_program(),
    phantom=st.sampled_from(list(PhantomStrength)),
    latency=st.sampled_from([0, 10, 30]),
)
@settings(max_examples=25, deadline=None)
def test_reunion_random_programs_match_golden(program, phantom, latency):
    golden = golden_run(program, max_instructions=50_000)
    assert golden.halted

    config = SMALL.replace(n_logical=1).with_redundancy(
        mode=Mode.REUNION, phantom=phantom, comparison_latency=latency
    )
    system = CMPSystem(config, [program])
    system.run_until_idle(max_cycles=2_000_000)
    assert not system.failed

    vocal, mute = system.vocal_cores[0], system.cores[1]
    for reg in [1, 2, *DATA_REGS]:
        assert vocal.arf.read(reg) == golden.registers.read(reg), (
            f"r{reg} differs under {phantom.value}/{latency}"
        )
    assert vocal.arf == mute.arf
    assert vocal.user_retired == golden.retired
