"""Tests for the analytic soft-error coverage model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coverage import (
    DetectionBound,
    aliasing_probability,
    meets_budget,
    minimum_crc_bits,
    undetected_fit,
)


class TestAliasing:
    def test_single_stage_16_bit(self):
        assert aliasing_probability(16, two_stage=False) == pytest.approx(2**-16)

    def test_two_stage_doubles(self):
        assert aliasing_probability(16, two_stage=True) == pytest.approx(
            2 * aliasing_probability(16, two_stage=False)
        )

    @given(bits=st.integers(min_value=2, max_value=64))
    def test_monotone_in_width(self, bits):
        assert aliasing_probability(bits) <= aliasing_probability(bits - 1)

    def test_width_validated(self):
        with pytest.raises(ValueError):
            aliasing_probability(0)


class TestBudget:
    def test_undetected_fit(self):
        # 1000 FIT of raw upsets through a 16-bit two-stage fingerprint.
        residual = undetected_fit(1000, bits=16)
        assert residual == pytest.approx(1000 * 2**-15)

    def test_sixteen_bits_exceeds_typical_budget(self):
        """The paper (via [21]): 16-bit CRC beats industry goals 10x over.

        Take a datapath upset rate of 10^4 FIT and a budget of 10 FIT of
        silent corruption: 16 bits leaves ~0.3 FIT, an order of
        magnitude under budget.
        """
        assert meets_budget(upset_fit=1e4, budget_fit=10, bits=16)
        assert undetected_fit(1e4, bits=16) < 1.0

    def test_tiny_crc_fails_budget(self):
        assert not meets_budget(upset_fit=1e4, budget_fit=10, bits=4)

    def test_minimum_width_sizing(self):
        bits = minimum_crc_bits(upset_fit=1e4, budget_fit=10)
        assert 4 <= bits <= 16
        assert meets_budget(1e4, 10, bits)
        assert not meets_budget(1e4, 10, bits - 1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            undetected_fit(-1)

    def test_impossible_budget_rejected(self):
        with pytest.raises(ValueError):
            minimum_crc_bits(1e4, 0)

    @given(
        upset=st.floats(min_value=1, max_value=1e9),
        bits=st.integers(min_value=4, max_value=32),
    )
    def test_residual_below_raw_rate(self, upset, bits):
        assert undetected_fit(upset, bits) < upset


class TestDetectionBound:
    def test_interval_one(self):
        bound = DetectionBound(fingerprint_interval=1, comparison_latency=10)
        assert bound.cycles == 1 + 1 + 10

    def test_grows_with_interval(self):
        short = DetectionBound(1, 10).cycles
        long = DetectionBound(50, 10).cycles
        assert long > short

    def test_bounds_check(self):
        bound = DetectionBound(1, 10)
        assert bound.bounds([5, 40, 80])
        assert not bound.bounds([10_000])
